"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds("  \t\n\r\n ") == [TokenKind.EOF]

    def test_identifier(self):
        token = tokenize("foo_bar9")[0]
        assert token.kind is TokenKind.NAME
        assert token.value == "foo_bar9"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_x")[0].value == "_x"

    def test_keywords_are_not_names(self):
        for word in ("class", "var", "def", "if", "else", "while", "for",
                     "return", "break", "continue", "new", "this", "super",
                     "true", "false", "nil", "inline"):
            token = tokenize(word)[0]
            assert token.kind is not TokenKind.NAME, word
            assert token.text == word

    def test_keyword_prefix_is_a_name(self):
        assert tokenize("classy")[0].kind is TokenKind.NAME
        assert tokenize("iffy")[0].kind is TokenKind.NAME


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT
        assert token.value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("7E+2")[0].value == 700.0

    def test_int_then_dot_is_not_float(self):
        # `1.x` must lex as INT DOT NAME (field access on a literal).
        toks = tokenize("1.x")
        assert [t.kind for t in toks[:3]] == [TokenKind.INT, TokenKind.DOT, TokenKind.NAME]

    def test_adjacent_number_and_name(self):
        toks = tokenize("12abc")
        assert toks[0].value == 12
        assert toks[1].value == "abc"


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\\d\"e"')[0].value == 'a\nb\tc\\d"e'

    def test_empty_string(self):
        assert tokenize('""')[0].value == ""

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||")[:-1] == [
            TokenKind.EQ, TokenKind.NE, TokenKind.LE,
            TokenKind.GE, TokenKind.AND, TokenKind.OR,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * / % < > ! =")[:-1] == [
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR, TokenKind.SLASH,
            TokenKind.PERCENT, TokenKind.LT, TokenKind.GT, TokenKind.NOT,
            TokenKind.ASSIGN,
        ]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] , ; . :")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACE,
            TokenKind.RBRACE, TokenKind.LBRACKET, TokenKind.RBRACKET,
            TokenKind.COMMA, TokenKind.SEMICOLON, TokenKind.DOT, TokenKind.COLON,
        ]

    def test_stray_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_single_ampersand_rejected(self):
        with pytest.raises(LexError):
            tokenize("a & b")

    def test_single_pipe_rejected(self):
        with pytest.raises(LexError):
            tokenize("a | b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_block_comment_with_stars(self):
        assert texts("a /* ** * */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_slash_is_division_not_comment(self):
        assert kinds("a / b")[1] is TokenKind.SLASH


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
        assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)

    def test_filename_in_location(self):
        token = tokenize("x", filename="prog.icc")[0]
        assert token.location.filename == "prog.icc"
        assert "prog.icc" in str(token.location)

    def test_error_carries_location(self):
        with pytest.raises(LexError) as info:
            tokenize("\n\n  $")
        assert info.value.location.line == 3
