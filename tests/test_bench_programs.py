"""Structural checks on the benchmark sources and their metadata."""

import pytest

from repro.bench.harness import BENCHMARKS, PERFORMANCE_PROGRAMS
from repro.bench.programs import polyover
from repro.ir import compile_source, validate_program
from repro.ir import model as ir


class TestSourcesCompile:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_benchmark_compiles_and_validates(self, name):
        program = compile_source(BENCHMARKS[name][0], f"{name}.icc")
        validate_program(program)

    @pytest.mark.parametrize("name", list(PERFORMANCE_PROGRAMS))
    def test_performance_program_compiles(self, name):
        validate_program(compile_source(PERFORMANCE_PROGRAMS[name]))

    def test_polyover_variants_share_common_code(self):
        for variant in ("both", "array", "list"):
            assert "class Polygon" in polyover.source(variant)
        assert "class MCell" not in polyover.source("array")
        assert "class GCell" not in polyover.source("list")

    def test_polyover_unknown_variant(self):
        with pytest.raises(ValueError):
            polyover.source("bogus")


class TestMetadata:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_info_fields(self, name):
        info = BENCHMARKS[name][1]
        assert info.name == name
        assert info.description
        assert info.ideal_inlinable > 0
        assert info.expected_accepted  # every benchmark demonstrates a win

    def test_limit_benchmarks_name_rejections(self):
        for name in ("richards", "silo", "polyover"):
            assert BENCHMARKS[name][1].expected_rejected, name


class TestManualAnnotations:
    def test_richards_packet_array_declared_inline(self):
        program = compile_source(BENCHMARKS["richards"][0])
        assert "a2" in program.classes["Packet"].inline_fields
        # Task.priv is the void* field: NOT declarable in C++.
        assert "priv" not in program.classes["Task"].inline_fields

    def test_silo_wrappers_declared_inline(self):
        program = compile_source(BENCHMARKS["silo"][0])
        assert {"waiting", "stats"} <= program.classes["Facility"].inline_fields
        # The cons cells cannot be declared inline in C++.
        assert not program.classes["QCell"].inline_fields
        assert not program.classes["EvCell"].inline_fields

    def test_oopack_arrays_annotated(self):
        program = compile_source(BENCHMARKS["oopack"][0])
        annotated = [
            i for c in program.callables() for i in c.instructions()
            if isinstance(i, ir.NewArray) and i.declared_inline
        ]
        assert len(annotated) >= 2

    def test_polyover_pool_annotated(self):
        program = compile_source(polyover.SOURCE_ARRAY)
        annotated = [
            i for c in program.callables() for i in c.instructions()
            if isinstance(i, ir.NewArray) and i.declared_inline
        ]
        plain = [
            i for c in program.callables() for i in c.instructions()
            if isinstance(i, ir.NewArray) and not i.declared_inline
        ]
        assert annotated  # maps + cell pool
        assert plain      # the bucket-heads array stays a plain array
