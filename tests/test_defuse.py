"""Def/use index and ordering tests."""

from repro.analysis.defuse import DefUse, DefUseCache, operand_roles
from repro.ir import compile_source
from repro.ir import model as ir


def defuse_of(source, name="main"):
    program = compile_source(source)
    return DefUse(program.lookup_callable(name)), program


class TestOperandRoles:
    def test_call_roles_are_indexed(self):
        _, program = defuse_of(
            "class A { def m(x, y) { return x; } }\n"
            "def main() { var a = new A(); a.m(1, 2); }"
        )
        main = program.functions["main"]
        call = next(i for i in main.instructions() if isinstance(i, ir.CallMethod))
        roles = dict(operand_roles(call))
        assert "recv" in roles
        assert "arg0" in roles and "arg1" in roles

    def test_duplicate_register_yields_two_occurrences(self):
        du, program = defuse_of("def f(a, b) { } def main() { var x = 1; f(x, x); }")
        main_du = DefUse(program.functions["main"])
        call = next(
            i for i in program.functions["main"].instructions()
            if isinstance(i, ir.CallFunction)
        )
        occurrences = [
            occ for occ in main_du.uses.get(call.args[0], [])
            if occ.instr.uid == call.uid
        ]
        assert len(occurrences) == 2
        assert {occ.role for occ in occurrences} == {"arg0", "arg1"}

    def test_setfield_roles(self):
        _, program = defuse_of(
            "class A { var f; def init(v) { this.f = v; } } def main() { new A(1); }"
        )
        init = program.classes["A"].methods["init"]
        store = next(i for i in init.instructions() if isinstance(i, ir.SetField))
        assert dict(operand_roles(store)) == {"obj": store.obj, "src": store.src}


class TestOrdering:
    STRAIGHT = "def main() { var a = 1; var b = 2; print(a + b); }"

    def test_straight_line_order(self):
        du, program = defuse_of(self.STRAIGHT)
        instrs = list(program.functions["main"].instructions())
        first = du.by_uid[instrs[0].uid]
        last = du.by_uid[instrs[-1].uid]
        assert du.possibly_after(first, last)
        assert not du.possibly_after(last, first)

    def test_loop_makes_order_reflexive(self):
        du, program = defuse_of(
            "def main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }"
        )
        main = program.functions["main"]
        # Find the loop-body increment's position.
        adds = [
            du.by_uid[i.uid] for i in main.instructions()
            if isinstance(i, ir.BinOp) and i.op == "+"
        ]
        position = adds[0]
        assert du.possibly_after(position, position)

    def test_branch_arms_unordered(self):
        du, program = defuse_of(
            "def main() { var x = 1; if (x) { print(1); } else { print(2); } }"
        )
        main = program.functions["main"]
        prints = [
            du.by_uid[i.uid] for i in main.instructions()
            if isinstance(i, ir.CallBuiltin)
        ]
        assert not du.possibly_after(prints[0], prints[1])
        assert not du.possibly_after(prints[1], prints[0])

    def test_is_formal(self):
        _, program = defuse_of(
            "class A { def m(p) { return p; } } def main() { new A().m(1); }"
        )
        method_du = DefUse(program.classes["A"].methods["m"])
        assert method_du.is_formal(0)  # this
        assert method_du.is_formal(1)  # p
        assert not method_du.is_formal(2)

    def test_cache(self):
        program = compile_source("def main() { }")
        cache = DefUseCache(program)
        assert cache.get("main") is cache.get("main")
        assert cache.get("missing") is None
