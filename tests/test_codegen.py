"""Code generator tests: reachability, folding, size accounting."""

from repro.codegen import code_size, generate
from repro.inlining.pipeline import optimize
from repro.ir import compile_source

from conftest import RECTANGLE_SOURCE


class TestReachability:
    def test_dead_function_not_emitted(self):
        program = compile_source(
            "def dead() { return 1; } def main() { print(2); }"
        )
        result = generate(program)
        assert "dead" not in result.text
        assert "main" in result.text

    def test_dead_class_not_emitted(self):
        program = compile_source(
            "class Unused { var f; } class Used { }\n"
            "def main() { print(new Used()); }"
        )
        result = generate(program)
        assert "struct Used" in result.text
        assert "struct Unused" not in result.text

    def test_superclasses_reached(self):
        program = compile_source(
            "class Base { var f; } class Derived : Base { }\n"
            "def main() { print(new Derived()); }"
        )
        result = generate(program)
        assert "struct Base" in result.text

    def test_dynamic_send_reaches_all_overrides(self):
        program = compile_source(
            "class A { def m() { return 1; } }\n"
            "class B : A { def m() { return 2; } }\n"
            "def pick(i) { if (i == 0) { return new A(); } return new B(); }\n"
            "def main() { print(pick(0).m() + pick(1).m()); }"
        )
        result = generate(program)
        assert "A_m" in result.text and "B_m" in result.text

    def test_constructor_reached_via_new(self):
        program = compile_source(
            "class A { var f; def init(v) { this.f = v; } }\n"
            "def main() { print(new A(1).f); }"
        )
        assert "A_init" in generate(program).text


class TestFolding:
    def test_identical_clone_bodies_folded(self):
        # Disable method inlining so the duplicate per-variant clones
        # survive to codegen and get folded into aliases.
        report = optimize(
            compile_source(RECTANGLE_SOURCE), inline_methods_pass=False
        )
        result = generate(report.program)
        assert "alias " in result.text

    def test_method_inliner_removes_small_clones(self):
        with_inliner = optimize(compile_source(RECTANGLE_SOURCE))
        without = optimize(
            compile_source(RECTANGLE_SOURCE), inline_methods_pass=False
        )
        assert (
            generate(with_inliner.program).reachable_callables
            < generate(without.program).reachable_callables
        )

    def test_size_positive_and_stable(self):
        program = compile_source("def main() { print(1); }")
        assert code_size(program) == code_size(program) > 0


class TestSizeComparison:
    def test_original_classes_pruned_after_optimization(self):
        """The uniform-model originals stay in the program for reference
        but must not count toward generated code size."""
        report = optimize(compile_source(RECTANGLE_SOURCE))
        result = generate(report.program)
        # The original Rectangle (never allocated post-transform) is gone;
        # its variants are present.
        assert "struct Rectangle$" in result.text
        assert "struct Rectangle {" not in result.text

    def test_counts_reported(self):
        result = generate(compile_source(RECTANGLE_SOURCE))
        assert result.reachable_callables > 5
        assert result.reachable_classes == 4
