"""Interpreter (VM) semantics tests."""

import pytest

from repro.runtime import ReproRuntimeError, StepLimitExceeded
from repro.ir import compile_source
from repro.runtime.interp import Interpreter

from conftest import output_of, run_source


class TestArithmetic:
    def test_integer_ops(self):
        assert output_of("def main() { print(7 + 3, 7 - 3, 7 * 3); }") == ["10 4 21"]

    def test_integer_division_truncates_toward_zero(self):
        assert output_of("def main() { print(7 / 2, -7 / 2, 7 / -2); }") == ["3 -3 -3"]

    def test_integer_modulo_c_style(self):
        assert output_of("def main() { print(7 % 3, -7 % 3, 7 % -3); }") == ["1 -1 1"]

    def test_float_division(self):
        assert output_of("def main() { print(7.0 / 2.0); }") == ["3.5"]

    def test_mixed_int_float_promotes(self):
        assert output_of("def main() { print(1 + 0.5, 3 * 2.0); }") == ["1.5 6"]

    def test_division_by_zero(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { print(1 / 0); }")

    def test_modulo_by_zero(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { print(1 % 0); }")

    def test_unary_minus(self):
        assert output_of("def main() { var x = 5; print(-x, -(-x)); }") == ["-5 5"]

    def test_unary_minus_on_string_fails(self):
        with pytest.raises(ReproRuntimeError):
            run_source('def main() { print(-"x"); }')

    def test_string_concatenation(self):
        assert output_of('def main() { print("ab" + "cd"); }') == ["abcd"]

    def test_string_plus_number_fails(self):
        with pytest.raises(ReproRuntimeError):
            run_source('def main() { print("a" + 1); }')

    def test_string_comparison(self):
        assert output_of('def main() { print("a" < "b", "b" <= "a"); }') == ["true false"]


class TestEqualityAndTruthiness:
    def test_numeric_equality_across_kinds(self):
        assert output_of("def main() { print(1 == 1.0, 1 != 2); }") == ["true true"]

    def test_bool_not_equal_to_int(self):
        assert output_of("def main() { print(true == 1, false == 0); }") == ["false false"]

    def test_nil_equality(self):
        assert output_of("def main() { print(nil == nil, nil == 0); }") == ["true false"]

    def test_reference_identity(self):
        out = output_of(
            "class A { }\n"
            "def main() { var a = new A(); var b = new A(); var c = a;\n"
            "  print(a == b, a == c, a != b); }"
        )
        assert out == ["false true true"]

    def test_truthiness(self):
        out = output_of(
            'def main() { print(!0, !1, !0.0, !nil, !false, !"", !"x"); }'
        )
        assert out == ["true false true true true true false"]

    def test_object_is_truthy(self):
        out = output_of(
            "class A { } def main() { var a = new A(); if (a) print(1); else print(2); }"
        )
        assert out == ["1"]


class TestObjects:
    def test_constructor_and_field_access(self):
        out = output_of(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() { var p = new P(9); print(p.x); }"
        )
        assert out == ["9"]

    def test_uninitialized_field_is_nil(self):
        out = output_of(
            "class P { var x; } def main() { print(new P().x); }"
        )
        assert out == ["nil"]

    def test_class_without_init_rejects_args(self):
        with pytest.raises(ReproRuntimeError):
            run_source("class P { } def main() { new P(1); }")

    def test_inherited_fields_and_methods(self):
        out = output_of(
            "class A { var x; def init(v) { this.x = v; } def get() { return this.x; } }\n"
            "class B : A { def double() { return this.get() * 2; } }\n"
            "def main() { print(new B(21).double()); }"
        )
        assert out == ["42"]

    def test_method_override(self):
        out = output_of(
            "class A { def who() { return 1; } }\n"
            "class B : A { def who() { return 2; } }\n"
            "def main() { var objs = array(2); objs[0] = new A(); objs[1] = new B();\n"
            "  print(objs[0].who(), objs[1].who()); }"
        )
        assert out == ["1 2"]

    def test_super_call(self):
        out = output_of(
            "class A { def m() { return 10; } }\n"
            "class B : A { def m() { return super.m() + 1; } }\n"
            "def main() { print(new B().m()); }"
        )
        assert out == ["11"]

    def test_missing_method(self):
        with pytest.raises(ReproRuntimeError):
            run_source("class A { } def main() { new A().nope(); }")

    def test_missing_field(self):
        with pytest.raises(ReproRuntimeError):
            run_source("class A { } def main() { print(new A().nope); }")

    def test_field_access_on_nil(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var x = nil; print(x.f); }")

    def test_send_to_int(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var x = 1; x.m(); }")

    def test_recursion(self):
        out = output_of(
            "def fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
            "def main() { print(fib(15)); }"
        )
        assert out == ["610"]


class TestArrays:
    def test_create_read_write(self):
        out = output_of(
            "def main() { var a = array(3); a[1] = 5; print(a[0], a[1], len(a)); }"
        )
        assert out == ["nil 5 3"]

    def test_index_out_of_range(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var a = array(2); print(a[2]); }")

    def test_negative_index(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var a = array(2); print(a[-1]); }")

    def test_non_integer_index(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var a = array(2); print(a[1.5]); }")

    def test_negative_size(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { array(-1); }")

    def test_len_of_non_array(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { print(len(5)); }")

    def test_indexing_non_array(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { var x = 3; print(x[0]); }")

    def test_arrays_hold_objects(self):
        out = output_of(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "def main() {\n"
            "  var a = array(3);\n"
            "  for (var i = 0; i < 3; i = i + 1) { a[i] = new P(i * i); }\n"
            "  var total = 0;\n"
            "  for (var j = 0; j < 3; j = j + 1) { total = total + a[j].v; }\n"
            "  print(total);\n"
            "}"
        )
        assert out == ["5"]


class TestBuiltins:
    def test_math_builtins(self):
        out = output_of(
            "def main() { print(sqrt(16.0), abs(-3), floor(2.7), ceil(2.1)); }"
        )
        assert out == ["4 3 2 3"]

    def test_min_max_pow(self):
        assert output_of("def main() { print(min(2, 5), max(2, 5), pow(2, 10)); }") == [
            "2 5 1024"
        ]

    def test_int_float_conversions(self):
        assert output_of("def main() { print(int(3.9), float(2)); }") == ["3 2"]

    def test_sqrt_negative(self):
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { sqrt(-1.0); }")

    def test_assert_true_passes_and_fails(self):
        assert output_of("def main() { assert_true(1); print(1); }") == ["1"]
        with pytest.raises(ReproRuntimeError):
            run_source("def main() { assert_true(0); }")

    def test_print_formats(self):
        out = output_of(
            'def main() { print(1, 2.5, true, nil, "s"); print(); }'
        )
        assert out == ["1 2.5 true nil s", ""]

    def test_print_object_is_opaque(self):
        out = output_of("class A { } def main() { print(new A()); }")
        assert out == ["<object>"]


class TestVMLimits:
    def test_step_limit(self):
        program = compile_source("def main() { while (true) { } }")
        with pytest.raises(StepLimitExceeded):
            Interpreter(program, max_steps=10_000).run()

    def test_step_limit_is_a_resource_limit_error(self):
        # Callers (the fuzz oracle, the daemon) catch the common base to
        # distinguish budget exhaustion from genuine crashes.
        from repro.runtime import ResourceLimitError

        assert issubclass(StepLimitExceeded, ResourceLimitError)
        assert issubclass(ResourceLimitError, ReproRuntimeError)

    def test_heap_cell_budget_on_objects(self):
        from repro.runtime import HeapLimitExceeded

        source = (
            "class A { var f; def init(v) { this.f = v; } }\n"
            "def main() { var i = 0; while (i < 1000) "
            "{ var a = new A(i); i = i + 1; } }"
        )
        with pytest.raises(HeapLimitExceeded):
            run_source(source, max_heap_cells=50)
        # A generous budget lets the same program finish.
        run_source(source, max_heap_cells=100_000)

    def test_heap_cell_budget_on_arrays(self):
        from repro.runtime import HeapLimitExceeded

        source = "def main() { var a = array(5000); print(len(a)); }"
        with pytest.raises(HeapLimitExceeded):
            run_source(source, max_heap_cells=100)

    def test_step_budget_via_run_kwargs(self):
        with pytest.raises(StepLimitExceeded):
            run_source("def main() { while (true) { } }", max_steps=5_000)

    def test_missing_main(self):
        program = compile_source("def helper() { }")
        with pytest.raises(ReproRuntimeError):
            Interpreter(program).run()

    def test_stats_are_collected(self):
        result = run_source(
            "class A { var f; def init(v) { this.f = v; } }\n"
            "def main() { var a = new A(1); print(a.f); a.m2(); }"
            .replace("a.m2();", "")
        )
        stats = result.stats
        assert stats.instructions > 0
        assert stats.allocations == 1
        assert stats.heap_reads >= 1
        assert stats.heap_writes >= 1
        assert stats.cycles() > stats.instructions

    def test_call_depth_tracked(self):
        result = run_source(
            "def rec(n) { if (n == 0) return 0; return rec(n - 1); }\n"
            "def main() { rec(50); }"
        )
        assert result.stats.max_call_depth >= 50
