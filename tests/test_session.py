"""The :class:`repro.Session` facade and the bench baseline gate."""

import json
from types import SimpleNamespace

import pytest

import repro
from repro import CompileConfig, Session, SessionPool
from repro.analysis import AnalysisConfig
from repro.ir import compile_source
from repro.runtime import run_program
from repro.bench.baseline import (
    MIN_SECONDS,
    NOISE_FLOOR_SECONDS,
    check_baseline,
    load_baseline,
    write_baseline,
)
from repro.cli import main

SOURCE = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(5)); print(c.f.v); }
"""


class TestSession:
    def test_requires_exactly_one_input(self):
        with pytest.raises(ValueError):
            Session()
        with pytest.raises(ValueError):
            Session(SOURCE, program=compile_source(SOURCE))

    def test_compile_is_cached(self):
        session = Session(SOURCE)
        assert session.compile() is session.compile()

    def test_analyze_is_cached(self):
        session = Session(SOURCE)
        assert session.analyze() is session.analyze()

    def test_optimize_memoizes_per_option_set(self):
        session = Session(SOURCE)
        inline = session.optimize(inline=True)
        assert session.optimize(inline=True) is inline
        assert session.optimize(inline=False) is not inline

    def test_analyze_and_optimize_share_the_fixpoint(self):
        session = Session(SOURCE)
        result = session.analyze()
        report = session.optimize(inline=True)
        assert report.analysis is result
        assert session.analysis_cache.hits >= 1

    def test_builds_share_the_fixpoint(self):
        session = Session(SOURCE)
        inline = session.optimize(inline=True)
        manual = session.optimize(manual_only=True)
        assert manual.analysis is inline.analysis

    def test_program_for_builds(self):
        session = Session(SOURCE)
        assert session.program_for("plain") is session.compile()
        assert session.program_for("inline") is not session.compile()
        with pytest.raises(KeyError):
            session.program_for("bogus")

    def test_run_matches_primitive_api(self):
        from repro.inlining.pipeline import optimize as optimize_ir

        session = Session(SOURCE)
        program = compile_source(SOURCE)
        assert session.run("plain").output == run_program(program).output
        classic = run_program(optimize_ir(program, inline=True).program)
        assert session.run("inline").output == classic.output

    def test_config_threads_through(self):
        config = AnalysisConfig(max_local_passes=29)
        session = Session(SOURCE, config=config)
        assert session.analyze().config is config
        assert session.optimize(inline=True).analysis.config is config

    def test_per_call_tracer_override(self):
        from repro.obs import MemorySink, Tracer

        session = Session(SOURCE)
        tracer = Tracer(MemorySink())
        report = session.optimize(tracer=tracer, inline=True)
        assert "analyze" in tracer.span_totals
        assert "transform" in tracer.span_totals
        # Memoized per option set regardless of the tracer used.
        assert session.optimize(inline=True) is report
        run = session.run("inline", tracer=tracer)
        assert run.output and tracer.span_totals["run"][0] == 1


class TestCompileConfig:
    def test_frozen_and_hashable(self):
        config = CompileConfig()
        with pytest.raises(AttributeError):
            config.inline = False
        assert hash(config) == hash(CompileConfig())

    def test_content_key_is_canonical(self):
        assert CompileConfig().content_key() == CompileConfig().content_key()
        assert (
            CompileConfig(inline=False).content_key()
            != CompileConfig().content_key()
        )
        # Explicit analysis defaults hash like resolved implicit ones.
        assert (
            CompileConfig().resolved().content_key()
            == CompileConfig(analysis=AnalysisConfig()).content_key()
        )

    def test_content_key_matches_ledger_hashing(self):
        from repro.obs.history import config_key

        config = CompileConfig(max_rounds=2)
        assert config.content_key() == config_key(config.to_dict())

    def test_for_build(self):
        assert CompileConfig.for_build("noinline").inline is False
        assert CompileConfig.for_build("manual").manual_only is True
        custom = AnalysisConfig(max_local_passes=3)
        assert CompileConfig.for_build("inline", custom).analysis is custom
        with pytest.raises(ValueError):
            CompileConfig.for_build("plain")

    def test_escape_pass_participates_in_the_content_key(self):
        noescape = CompileConfig.for_build("noescape")
        assert noescape.inline is True and noescape.escape_pass is False
        assert noescape.content_key() != CompileConfig(inline=True).content_key()
        assert "escape_pass" in CompileConfig().to_dict()

    def test_explicit_config_and_kwargs_share_the_memo(self):
        session = Session(SOURCE)
        via_config = session.optimize(CompileConfig(inline=True))
        via_kwargs = session.optimize(inline=True)
        assert via_config is via_kwargs
        with pytest.raises(TypeError):
            session.optimize(CompileConfig(), inline=True)

    def test_session_analysis_config_resolves_into_key(self):
        custom = AnalysisConfig(max_local_passes=29)
        session = Session(SOURCE, config=custom)
        report = session.optimize(CompileConfig())
        assert report.analysis.config is custom


class TestSessionPool:
    def test_repeat_source_reuses_the_session(self):
        pool = SessionPool()
        first = pool.session(SOURCE)
        assert pool.session(SOURCE) is first
        assert (pool.hits, pool.misses) == (1, 1)

    def test_tenants_are_isolated(self):
        pool = SessionPool()
        assert pool.session(SOURCE, tenant="a") is not pool.session(SOURCE, tenant="b")

    def test_lru_bound_evicts(self):
        pool = SessionPool(max_sessions=2)
        a = pool.session("def main() { print(1); }")
        pool.session("def main() { print(2); }")
        pool.session("def main() { print(3); }")
        assert len(pool) == 2
        assert pool.evictions == 1
        assert pool.session("def main() { print(1); }") is not a  # evicted

    def test_tenant_tracer_lanes_merge_on_close(self):
        from repro.obs import MemorySink, Tracer

        tracer = Tracer(MemorySink())
        pool = SessionPool(tracer=tracer)
        pool.session(SOURCE, tenant="ci").optimize()
        pool.session(SOURCE, tenant="dev").optimize()
        assert pool.stats()["tenants"] == 2
        pool.close()
        assert tracer.span_totals.get("analyze", (0,))[0] >= 2

    def test_stats_shape(self):
        stats = SessionPool().stats()
        assert set(stats) == {
            "sessions", "tenants", "max_sessions", "hits", "misses", "evictions",
        }


class TestClassicWrappers:
    def test_top_level_exports(self):
        for name in ("Session", "SessionPool", "CompileConfig", "AnalysisCache",
                     "source_key", "compile_source", "analyze", "optimize",
                     "run_program"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_wrappers_warn_deprecation(self):
        with pytest.warns(DeprecationWarning, match="compile_source"):
            program = repro.compile_source(SOURCE, "wrap.icc")
        with pytest.warns(DeprecationWarning, match="analyze"):
            result = repro.analyze(program)
        with pytest.warns(DeprecationWarning, match="optimize"):
            report = repro.optimize(program, inline=True)
        assert result.facts and report.plan.candidates
        with pytest.warns(DeprecationWarning, match="run_program"):
            assert repro.run_program(report.program).output == ["5"]

    def test_wrappers_still_match_session_results(self):
        with pytest.warns(DeprecationWarning):
            classic = repro.run_program(
                repro.optimize(repro.compile_source(SOURCE), inline=True).program
            )
        assert classic.output == Session(SOURCE).run("inline").output

    def test_warnings_point_at_the_caller(self):
        # stacklevel=2 in each shim: the warning must carry *this* file,
        # not session.py, so a `-W error::DeprecationWarning` traceback
        # lands on the deprecated call site.
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            program = repro.compile_source(SOURCE, "wrap.icc")
            repro.analyze(program)
            report = repro.optimize(program, inline=True)
            repro.run_program(report.program)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 4
        for warning in deprecations:
            assert warning.filename == __file__, (
                f"{warning.message} attributed to {warning.filename}"
            )


def _stub_runs(analyze_s=0.100, transform_s=0.050, builds=("inline",)):
    return {
        "bench": SimpleNamespace(
            builds={
                build: SimpleNamespace(
                    phase_seconds={"analyze": analyze_s, "transform": transform_s}
                )
                for build in builds
            }
        )
    }


class TestBaselineGate:
    def test_roundtrip_and_pass(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs())
        baseline = load_baseline(path)
        assert check_baseline(_stub_runs(), baseline) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(analyze_s=0.100))
        regressions = check_baseline(
            _stub_runs(analyze_s=0.140), load_baseline(path)
        )
        assert len(regressions) == 1
        assert "bench/inline/analyze" in regressions[0]

    def test_growth_within_tolerance_passes(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(analyze_s=0.100))
        assert not check_baseline(
            _stub_runs(analyze_s=0.125), load_baseline(path)
        )

    def test_small_baseline_has_jitter_headroom(self, tmp_path):
        # A phase baselined below MIN_SECONDS may jitter up to the
        # MIN_SECONDS-clamped gate without failing ...
        fast = MIN_SECONDS / 2
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(transform_s=fast))
        regressions = check_baseline(
            _stub_runs(transform_s=fast * 2), load_baseline(path)
        )
        assert not any("transform" in line for line in regressions)

    def test_small_baseline_still_gates_blowup(self, tmp_path):
        # ... but a blowup to hundreds of ms is a regression, not noise
        # (before the fix, any sub-MIN_SECONDS baseline was exempt forever).
        fast = MIN_SECONDS / 2
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(transform_s=fast))
        regressions = check_baseline(
            _stub_runs(transform_s=fast * 100), load_baseline(path)
        )
        assert any("bench/inline/transform" in line for line in regressions)

    def test_growth_below_noise_floor_passes(self, tmp_path):
        # Beyond the relative gate but under the absolute noise floor.
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(transform_s=0.002))
        assert not check_baseline(
            _stub_runs(transform_s=NOISE_FLOOR_SECONDS * 0.6),
            load_baseline(path),
        )

    def test_missing_benchmark_is_drift_failure(self, tmp_path):
        # Before the fix a vanished benchmark silently passed forever.
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs())
        failures = check_baseline({}, load_baseline(path))
        assert len(failures) == 1
        assert "bench" in failures[0]
        assert "--update-baseline" in failures[0]

    def test_missing_build_is_drift_failure(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs(builds=("inline", "manual")))
        failures = check_baseline(_stub_runs(builds=("inline",)), load_baseline(path))
        assert len(failures) == 1
        assert "bench/manual" in failures[0]
        assert "--update-baseline" in failures[0]

    def test_missing_phase_is_drift_failure(self, tmp_path):
        # e.g. a span rename: the old name would default to actual=0.0
        # and pass forever before the fix.
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs())
        measured = _stub_runs()
        del measured["bench"].builds["inline"].phase_seconds["transform"]
        failures = check_baseline(measured, load_baseline(path))
        assert len(failures) == 1
        assert "bench/inline/transform" in failures[0]
        assert "--update-baseline" in failures[0]

    def test_new_unbaselined_phase_ignored(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baseline(path, _stub_runs())
        measured = _stub_runs()
        measured["bench"].builds["inline"].phase_seconds["brand.new"] = 9.9
        assert check_baseline(measured, load_baseline(path)) == []


class TestCLIBaselineFlags:
    @pytest.fixture()
    def patched_suite(self, monkeypatch):
        state = {"runs": _stub_runs()}
        monkeypatch.setattr(
            "repro.cli.run_performance_suite",
            lambda tracer=None, jobs=1, locality=False: state["runs"],
        )
        return state

    def test_update_then_check(self, patched_suite, tmp_path, capsys):
        path = str(tmp_path / "base.json")
        assert main(["bench", "--update-baseline", "--baseline", path]) == 0
        assert main(["bench", "--check-baseline", "--baseline", path]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_fails_on_regression(self, patched_suite, tmp_path, capsys):
        path = str(tmp_path / "base.json")
        assert main(["bench", "--update-baseline", "--baseline", path]) == 0
        patched_suite["runs"] = _stub_runs(analyze_s=0.200)
        assert main(["bench", "--check-baseline", "--baseline", path]) == 1
        assert "regression" in capsys.readouterr().out


class TestCLIWideningReport:
    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "prog.icc"
        path.write_text(SOURCE)
        return str(path)

    def test_text_output_reports_widening_counters(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "widened callables: 0" in out
        assert "widened sites: 0" in out

    def test_json_output_reports_widening(self, program_file, capsys):
        assert main(["analyze", program_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analysis"]["widened_callables"] == 0
        assert payload["analysis"]["widened_sites"] == 0
        assert payload["widening_rejections"] == []

    def test_widening_rejections_warn_on_stderr(self, monkeypatch, program_file, capsys):
        # Force a widening-tainted rejection through the decision engine
        # so the CLI's warning path is exercised end to end.
        from repro.cli import _widening_rejections

        rejected = SimpleNamespace(
            accepted=False,
            reject_reason="container class widened (contour cap)",
            describe=lambda: "C.f",
        )
        accepted = SimpleNamespace(
            accepted=True, reject_reason=None, describe=lambda: "D.g"
        )
        report = SimpleNamespace(
            plan=SimpleNamespace(candidates={"a": rejected, "b": accepted})
        )
        assert _widening_rejections(report) == [rejected]
