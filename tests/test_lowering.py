"""AST → IR lowering tests (semantics enforced by the builder)."""

import pytest

from repro.ir import compile_source, validate_program
from repro.ir import model as ir
from repro.lang import SemanticError

from conftest import output_of


def lower(source):
    program = compile_source(source)
    validate_program(program)
    return program


class TestSemanticChecks:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            lower("def main() { print(x); }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(SemanticError):
            lower("def main() { x = 1; }")

    def test_duplicate_local_in_same_scope(self):
        with pytest.raises(SemanticError):
            lower("def main() { var x = 1; var x = 2; }")

    def test_shadowing_in_nested_scope_allowed(self):
        lower("def main() { var x = 1; { var x = 2; print(x); } }")

    def test_this_outside_method(self):
        with pytest.raises(SemanticError):
            lower("def main() { print(this); }")

    def test_super_without_superclass(self):
        with pytest.raises(SemanticError):
            lower("class A { def m() { return super.m(); } } def main() { }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            lower("def main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            lower("def main() { continue; }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            lower("def main() { mystery(); }")

    def test_function_arity_checked(self):
        with pytest.raises(SemanticError):
            lower("def f(a) { } def main() { f(1, 2); }")

    def test_builtin_arity_checked(self):
        with pytest.raises(SemanticError):
            lower("def main() { sqrt(1, 2); }")

    def test_duplicate_class(self):
        with pytest.raises(SemanticError):
            lower("class A {} class A {} def main() { }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError):
            lower("def f() {} def f() {} def main() { }")

    def test_duplicate_method(self):
        with pytest.raises(SemanticError):
            lower("class A { def m() {} def m() {} } def main() { }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            lower("var g; var g; def main() { }")

    def test_unknown_superclass(self):
        with pytest.raises(SemanticError):
            lower("class A : Missing {} def main() { }")

    def test_inheritance_cycle(self):
        with pytest.raises(SemanticError):
            lower("class A : B {} class B : A {} def main() { }")

    def test_field_shadowing_superclass_rejected(self):
        with pytest.raises(SemanticError):
            lower("class A { var f; } class B : A { var f; } def main() { }")

    def test_duplicate_field_in_class(self):
        with pytest.raises(SemanticError):
            lower("class A { var f; var f; } def main() { }")


class TestLoweringStructure:
    def test_global_init_synthesized(self):
        program = lower("var g = 7; def main() { print(g); }")
        assert ir.IRProgram.GLOBAL_INIT in program.functions
        init = program.functions[ir.IRProgram.GLOBAL_INIT]
        assert any(isinstance(i, ir.SetGlobal) for i in init.instructions())

    def test_method_register_zero_is_this(self):
        program = lower("class A { def m(p) { return this; } } def main() { }")
        method = program.classes["A"].methods["m"]
        assert method.num_formals == 2  # this + p
        ret = [i for i in method.instructions() if isinstance(i, ir.Return)][0]
        assert ret.src == 0

    def test_super_lowered_to_call_static(self):
        program = lower(
            "class A { def m() { return 1; } } "
            "class B : A { def m() { return super.m(); } } def main() { }"
        )
        method = program.classes["B"].methods["m"]
        statics = [i for i in method.instructions() if isinstance(i, ir.CallStatic)]
        assert statics and statics[0].class_name == "A"

    def test_logical_and_lowered_to_branches(self):
        program = lower("def main() { var x = 1 && 2; print(x); }")
        main = program.functions["main"]
        assert any(isinstance(i, ir.Branch) for i in main.instructions())

    def test_array_builtin_lowered_to_newarray(self):
        program = lower("def main() { var a = array(3); print(len(a)); }")
        instrs = list(program.functions["main"].instructions())
        assert any(isinstance(i, ir.NewArray) and not i.declared_inline for i in instrs)
        assert any(isinstance(i, ir.ArrayLen) for i in instrs)

    def test_inline_array_sets_annotation(self):
        program = lower("def main() { var a = inline_array(3); print(len(a)); }")
        (newarray,) = [
            i for i in program.functions["main"].instructions()
            if isinstance(i, ir.NewArray)
        ]
        assert newarray.declared_inline

    def test_dead_code_after_return_pruned(self):
        program = lower("def f() { return 1; print(2); } def main() { f(); }")
        f = program.functions["f"]
        assert not any(isinstance(i, ir.CallBuiltin) for i in f.instructions())

    def test_every_block_terminated(self):
        program = lower(
            "def f(x) { if (x) { return 1; } return 2; } def main() { f(1); }"
        )
        for block in program.functions["f"].blocks:
            assert isinstance(block.terminator, ir.TERMINATORS)

    def test_inline_field_annotation_preserved(self):
        program = lower("class A { var inline f; var g; } def main() { }")
        assert program.classes["A"].inline_fields == {"f"}


class TestLoweredSemantics:
    """Behavioral checks that the CFG lowering is faithful."""

    def test_short_circuit_and(self):
        out = output_of(
            "var hits = 0;\n"
            "def bump() { hits = hits + 1; return true; }\n"
            "def main() { var r = false && bump(); print(r, hits); }"
        )
        assert out == ["false 0"]

    def test_short_circuit_or(self):
        out = output_of(
            "var hits = 0;\n"
            "def bump() { hits = hits + 1; return false; }\n"
            "def main() { var r = 7 || bump(); print(r, hits); }"
        )
        assert out == ["7 0"]

    def test_and_yields_operand_values(self):
        assert output_of("def main() { print(2 && 3, 0 && 3); }") == ["3 0"]

    def test_while_with_break_and_continue(self):
        out = output_of(
            "def main() {\n"
            "  var i = 0; var total = 0;\n"
            "  while (true) {\n"
            "    i = i + 1;\n"
            "    if (i > 10) { break; }\n"
            "    if (i % 2 == 0) { continue; }\n"
            "    total = total + i;\n"
            "  }\n"
            "  print(total);\n"
            "}"
        )
        assert out == ["25"]  # 1+3+5+7+9

    def test_for_continue_still_steps(self):
        out = output_of(
            "def main() {\n"
            "  var n = 0;\n"
            "  for (var i = 0; i < 5; i = i + 1) { if (i == 2) continue; n = n + i; }\n"
            "  print(n);\n"
            "}"
        )
        assert out == ["8"]  # 0+1+3+4

    def test_nested_loops_break_inner_only(self):
        out = output_of(
            "def main() {\n"
            "  var count = 0;\n"
            "  for (var i = 0; i < 3; i = i + 1) {\n"
            "    for (var j = 0; j < 10; j = j + 1) {\n"
            "      if (j == 2) { break; }\n"
            "      count = count + 1;\n"
            "    }\n"
            "  }\n"
            "  print(count);\n"
            "}"
        )
        assert out == ["6"]

    def test_global_initializer_order(self):
        out = output_of(
            "var a = 2;\nvar b = a * 10;\ndef main() { print(a, b); }"
        )
        assert out == ["2 20"]

    def test_block_scope_shadowing(self):
        out = output_of(
            "def main() { var x = 1; { var x = 9; print(x); } print(x); }"
        )
        assert out == ["9", "1"]

    def test_function_without_return_yields_nil(self):
        assert output_of("def f() { } def main() { print(f()); }") == ["nil"]
