"""Unit tests for the scalar optimization passes (opt package)."""

from repro.inlining.pipeline import optimize
from repro.ir import compile_source, validate_program
from repro.ir import model as ir
from repro.opt import (
    eliminate_dead_code,
    eliminate_redundant_loads,
    inline_methods,
)
from repro.runtime import run_program

from conftest import RECTANGLE_SOURCE


def opt_and_run(source, **passes):
    program = compile_source(source)
    base = run_program(program)
    report = optimize(program, **passes)
    validate_program(report.program)
    result = run_program(report.program)
    assert result.output == base.output, (base.output, result.output)
    return base, result, report


class TestMethodInliner:
    def test_static_call_spliced(self):
        program = compile_source(
            "def tiny(x) { return x + 1; }\n"
            "def main() { print(tiny(41)); }"
        )
        base = run_program(program)
        stats = inline_methods(program)
        validate_program(program)
        assert stats.calls_inlined >= 1
        assert stats.callables_removed >= 1  # tiny is gone
        assert "tiny" not in program.functions
        result = run_program(program)
        assert result.output == base.output
        assert result.stats.static_calls < base.stats.static_calls

    def test_method_call_via_super_spliced(self):
        program = compile_source(
            "class A { def m() { return 10; } }\n"
            "class B : A { def m() { return super.m() + 1; } }\n"
            "def main() { print(new B().m()); }"
        )
        base = run_program(program)
        inline_methods(program)
        validate_program(program)
        assert run_program(program).output == base.output

    def test_large_callee_not_inlined(self):
        body = " ".join(f"t = t + {i};" for i in range(40))
        program = compile_source(
            f"def big() {{ var t = 0; {body} return t; }}\n"
            "def main() { print(big()); }"
        )
        stats = inline_methods(program)
        assert "big" in program.functions
        assert stats.calls_inlined == 0

    def test_recursive_callee_not_inlined(self):
        program = compile_source(
            "def rec(n) { if (n == 0) { return 0; } return rec(n - 1); }\n"
            "def main() { print(rec(3)); }"
        )
        base = run_program(program)
        inline_methods(program)
        validate_program(program)
        assert "rec" in program.functions
        assert run_program(program).output == base.output

    def test_void_callee(self):
        program = compile_source(
            "var log = 0;\n"
            "def note(v) { log = log + v; }\n"
            "def main() { note(3); note(4); print(log); }"
        )
        base = run_program(program)
        stats = inline_methods(program)
        validate_program(program)
        assert stats.calls_inlined >= 2
        assert run_program(program).output == base.output == ["7"]

    def test_callee_with_branches(self):
        program = compile_source(
            "def pick(x) { if (x > 0) { return 1; } return -1; }\n"
            "def main() { print(pick(5) + pick(-5)); }"
        )
        base = run_program(program)
        inline_methods(program)
        validate_program(program)
        assert run_program(program).output == base.output == ["0"]

    def test_inlining_through_two_levels(self):
        program = compile_source(
            "def one() { return 1; }\n"
            "def two() { return one() + one(); }\n"
            "def main() { print(two()); }"
        )
        base = run_program(program)
        inline_methods(program)
        validate_program(program)
        result = run_program(program)
        assert result.output == base.output
        assert result.stats.static_calls == 0

    def test_argument_shuffles_preserved(self):
        program = compile_source(
            "def sub(a, b) { return a - b; }\n"
            "def main() { var x = 10; var y = 3; print(sub(y, x)); }"
        )
        base = run_program(program)
        inline_methods(program)
        assert run_program(program).output == base.output == ["-7"]


class TestLoadCSE:
    def run_with_counts(self, source):
        program = compile_source(source)
        base = run_program(program)
        stats = eliminate_redundant_loads(program)
        validate_program(program)
        result = run_program(program)
        assert result.output == base.output
        return base, result, stats

    def test_repeated_field_load_eliminated(self):
        base, result, stats = self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() { var p = new P(3); print(p.x + p.x + p.x); }"
        )
        assert stats.loads_eliminated == 2
        assert result.stats.heap_reads == base.stats.heap_reads - 2

    def test_store_invalidates_same_field_name(self):
        base, result, stats = self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() {\n"
            "  var p = new P(1); var q = new P(2);\n"
            "  var a = p.x;\n"
            "  q.x = 9;\n"
            "  print(a + p.x);\n"  # p.x must reload: q may alias p
            "}"
        )
        assert base.output == ["2"]

    def test_store_forwarding_within_block(self):
        base, result, stats = self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() { var p = new P(0); p.x = 7; print(p.x); }"
        )
        assert base.output == ["7"]
        assert stats.loads_eliminated == 1

    def test_call_invalidates(self):
        base, result, _ = self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def poke(p) { p.x = 100; }\n"
            "def main() { var p = new P(1); var a = p.x; poke(p); print(a + p.x); }"
        )
        assert base.output == ["101"]

    def test_pure_builtin_does_not_invalidate(self):
        _, _, stats = self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() { var p = new P(4.0); var a = sqrt(p.x); print(a + p.x); }"
        )
        assert stats.loads_eliminated == 1

    def test_global_load_cached(self):
        _, _, stats = self.run_with_counts(
            "var g = 5;\n"
            "def main() { print(g + g); }"
        )
        assert stats.globals_eliminated == 1

    def test_array_len_cached(self):
        _, _, stats = self.run_with_counts(
            "def main() { var a = array(4); print(len(a) + len(a)); }"
        )
        assert stats.lengths_eliminated == 1

    def test_self_overwriting_load_not_cached(self):
        self.run_with_counts(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() {\n"
            "  var box = new P(new P(3));\n"
            "  var p = box;\n"
            "  p = p.x;\n"
            "  print(p.x);\n"
            "}"
        )


class TestDCE:
    def test_dead_move_removed(self):
        program = compile_source("def main() { var unused = 1 + 2; print(9); }")
        stats = eliminate_dead_code(program)
        validate_program(program)
        assert stats.instructions_removed >= 2
        assert run_program(program).output == ["9"]

    def test_dead_chain_removed_transitively(self):
        program = compile_source(
            "def main() { var a = 1; var b = a + 1; var c = b + 1; print(0); }"
        )
        stats = eliminate_dead_code(program)
        assert stats.instructions_removed >= 3

    def test_dead_allocation_without_init_removed(self):
        # Simulate the post-transform situation: a skip_init New whose
        # result is unused (the copy rewrite consumed the object).
        program = compile_source("class P { } def main() { var p = new P(); print(1); }")
        # Lowered New has no init (class P defines none) but skip_init is
        # False; flip it the way the transformation does.
        main = program.functions["main"]
        for block in main.blocks:
            block.instrs = [
                ir.make_instr(
                    ir.New, i.loc, dest=i.dest, class_name=i.class_name,
                    args=i.args, on_stack=i.on_stack, skip_init=True,
                )
                if isinstance(i, ir.New) else i
                for i in block.instrs
            ]
        stats = eliminate_dead_code(program)
        assert stats.allocations_removed >= 1
        assert run_program(program).output == ["1"]

    def test_new_with_constructor_kept(self):
        program = compile_source(
            "var seen = 0;\n"
            "class P { def init() { seen = seen + 1; } }\n"
            "def main() { new P(); print(seen); }"
        )
        eliminate_dead_code(program)
        assert run_program(program).output == ["1"]

    def test_stores_never_removed(self):
        program = compile_source(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() { var p = new P(1); p.x = 5; print(p.x); }"
        )
        eliminate_dead_code(program)
        assert run_program(program).output == ["5"]


class TestPipelineComposition:
    def test_all_passes_preserve_rectangle(self):
        opt_and_run(RECTANGLE_SOURCE)

    def test_passes_individually_toggleable(self):
        for flags in (
            {"inline_methods_pass": False},
            {"cache_loads_pass": False},
            {"dce_pass": False},
            {"inline_methods_pass": False, "cache_loads_pass": False, "dce_pass": False},
        ):
            opt_and_run(RECTANGLE_SOURCE, **flags)

    def test_passes_reduce_work(self):
        _, with_passes, _ = opt_and_run(RECTANGLE_SOURCE)
        _, without, _ = opt_and_run(
            RECTANGLE_SOURCE,
            inline_methods_pass=False,
            cache_loads_pass=False,
            dce_pass=False,
        )
        assert with_passes.stats.cycles() <= without.stats.cycles()

    def test_report_carries_pass_stats(self):
        _, _, report = opt_and_run(RECTANGLE_SOURCE)
        assert report.inliner_stats is not None
        assert report.cse_stats is not None
        assert report.dce_stats is not None
