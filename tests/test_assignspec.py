"""Assignment specialization (§4.2) tests: the by-value predicates."""

from repro.analysis import analyze
from repro.analysis.assignspec import AssignmentSpecializer
from repro.ir import compile_source


def store_verdicts(source, field_name):
    """(ok, reason) for every store into ``field_name``."""
    result = analyze(compile_source(source))
    spec = AssignmentSpecializer(result)
    verdicts = []
    for store in result.stores:
        if store.field_name == field_name:
            verdicts.append(spec.store_is_by_value(store))
    assert verdicts, f"no stores to {field_name} found"
    return verdicts


CONTAINER = """
class P { var v; def init(v) { this.v = v; } }
class C {
  var f;
  def init(p) { this.f = p; }
}
"""


class TestPassByValue:
    def test_fresh_local_new_passes(self):
        verdicts = store_verdicts(
            CONTAINER + "def main() { var c = new C(new P(1)); print(c.f.v); }",
            "f",
        )
        assert all(ok for ok, _ in verdicts)

    def test_fresh_via_variable_passes(self):
        verdicts = store_verdicts(
            CONTAINER + "def main() { var p = new P(1); var c = new C(p); print(c.f.v); }",
            "f",
        )
        assert all(ok for ok, _ in verdicts)

    def test_fresh_via_helper_chain_passes(self):
        verdicts = store_verdicts(
            CONTAINER
            + "def build(p) { return new C(p); }\n"
            + "def main() { var c = build(new P(1)); print(c.f.v); }",
            "f",
        )
        assert all(ok for ok, _ in verdicts)

    def test_factory_return_passes(self):
        verdicts = store_verdicts(
            CONTAINER
            + "def make() { return new P(9); }\n"
            + "def main() { var c = new C(make()); print(c.f.v); }",
            "f",
        )
        assert all(ok for ok, _ in verdicts)

    def test_use_before_store_is_allowed(self):
        verdicts = store_verdicts(
            CONTAINER
            + "def main() { var p = new P(1); print(p.v); var c = new C(p); print(c.f.v); }",
            "f",
        )
        assert all(ok for ok, _ in verdicts)


class TestRejections:
    def test_use_after_store_fails(self):
        verdicts = store_verdicts(
            CONTAINER
            + "def main() { var p = new P(1); var c = new C(p); print(p.v); }",
            "f",
        )
        assert any(not ok for ok, _ in verdicts)

    def test_value_from_field_read_fails(self):
        """The paper's List example: r.lower_left is aliased with the
        rectangle, so it cannot be copied into another container."""
        verdicts = store_verdicts(
            CONTAINER
            + "class D { var g; def init(x) { this.g = x; } }\n"
            + "def main() {\n"
            + "  var c = new C(new P(1));\n"
            + "  var d = new D(c.f);\n"
            + "  print(d.g.v);\n"
            + "}",
            "g",
        )
        assert any(not ok for ok, _ in verdicts)

    def test_stored_elsewhere_fails(self):
        verdicts = store_verdicts(
            CONTAINER
            + "var keep = nil;\n"
            + "def main() { var p = new P(1); keep = p; var c = new C(p); print(c.f.v); }",
            "f",
        )
        assert any(not ok for ok, _ in verdicts)

    def test_aliased_into_two_arguments_fails(self):
        """The paper's §2 hazard: do_rectangle called with one aliased
        point as both arguments would change aliasing relationships."""
        source = """
class P { var v; def init(v) { this.v = v; } }
class C2 {
  var a; var b;
  def init(x, y) { this.a = x; this.b = y; }
}
def main() { var p = new P(1); var c = new C2(p, p); print(c.a.v); }
"""
        verdicts = store_verdicts(source, "a")
        assert any(not ok for ok, _ in verdicts)

    def test_value_returned_after_store_fails(self):
        source = CONTAINER + """
def build() { var p = new P(1); var c = new C(p); return p; }
def main() { print(build().v); }
"""
        verdicts = store_verdicts(source, "f")
        assert any(not ok for ok, _ in verdicts)

    def test_value_from_global_fails(self):
        source = CONTAINER + """
var shared = nil;
def main() { shared = new P(1); var c = new C(shared); print(c.f.v); }
"""
        verdicts = store_verdicts(source, "f")
        assert any(not ok for ok, _ in verdicts)

    def test_callee_that_stores_argument_fails(self):
        source = CONTAINER + """
var leak = nil;
def remember(p) { leak = p; }
def main() { var p = new P(1); remember(p); var c = new C(p); print(c.f.v); }
"""
        verdicts = store_verdicts(source, "f")
        assert any(not ok for ok, _ in verdicts)

    def test_callee_that_only_reads_argument_passes(self):
        source = CONTAINER + """
def peek(p) { print(p.v); }
def main() { var p = new P(1); peek(p); var c = new C(p); print(c.f.v); }
"""
        verdicts = store_verdicts(source, "f")
        assert all(ok for ok, _ in verdicts)
