"""Cloning/emission internals on the running example."""

from repro.analysis import analyze
from repro.cloning.emit import Transformer
from repro.inlining.decisions import DecisionEngine
from repro.ir import compile_source
from repro.ir import model as ir

from conftest import RECTANGLE_SOURCE


def transformer_for(source):
    program = compile_source(source)
    result = analyze(program)
    plan = DecisionEngine(result).plan()
    transformer = Transformer(result, plan, devirtualize=True)
    outcome = transformer.run()
    assert outcome.program is not None, outcome.conflicts
    return transformer, outcome


class TestPartitioning:
    def test_partitions_cover_all_contours(self):
        transformer, _ = transformer_for(RECTANGLE_SOURCE)
        covered = {
            cid for p in transformer.partitions.values() for cid in p.contours
        }
        assert covered == set(transformer.result.manager.method_contours)

    def test_abs_clones_split_per_field(self):
        """Point::abs must clone per inlined field (different container
        offsets for lower_left vs upper_right)."""
        transformer, _ = transformer_for(RECTANGLE_SOURCE)
        abs_partitions = [
            p for p in transformer.partitions.values()
            if p.callable_name == "Point::abs"
        ]
        assert len(abs_partitions) >= 2

    def test_methods_not_touching_inlined_fields_stay_single(self):
        """The paper: 'we need not clone methods that do not use the
        inlined field'."""
        source = """
class P { var v; def init(v) { this.v = v; } }
class C {
  var f; var tag;
  def init(p, tag) { this.f = p; this.tag = tag; }
  def label() { return this.tag; }
  def value() { return this.f.v; }
}
def main() {
  var a = new C(new P(1), 10);
  var b = new C(new P(2), 20);
  print(a.label() + b.label() + a.value() + b.value());
}
"""
        transformer, _ = transformer_for(source)
        label_partitions = [
            p for p in transformer.partitions.values()
            if p.callable_name == "C::label"
        ]
        assert len(label_partitions) == 1


class TestInstalls:
    def test_view_clone_names_carry_field(self):
        transformer, outcome = transformer_for(RECTANGLE_SOURCE)
        names = {
            name
            for cls in outcome.program.classes.values()
            for name in cls.methods
        }
        assert any("@lower_left" in name for name in names)
        assert any("@upper_right" in name for name in names)

    def test_clones_installed_on_variants(self):
        _, outcome = transformer_for(RECTANGLE_SOURCE)
        variants = [
            cls for name, cls in outcome.program.classes.items()
            if cls.source_name == "Rectangle" and name != "Rectangle"
        ]
        for variant in variants:
            assert "area" in variant.methods
            assert "init" in variant.methods

    def test_rewritten_new_skips_implicit_init(self):
        _, outcome = transformer_for(RECTANGLE_SOURCE)
        main = outcome.program.functions["main"]
        news = [i for i in main.instructions() if isinstance(i, ir.New)]
        # Every rewritten allocation binds its constructor explicitly.
        for new in news:
            if new.class_name.endswith(tuple("0123456789")):
                assert new.skip_init

    def test_area_clone_uses_renamed_fields(self):
        _, outcome = transformer_for(RECTANGLE_SOURCE)
        variant = next(
            cls for name, cls in outcome.program.classes.items()
            if cls.source_name == "Rectangle" and name != "Rectangle"
        )
        field_names = {
            i.field_name
            for method in variant.methods.values()
            for i in method.instructions()
            if isinstance(i, (ir.GetField, ir.SetField))
        }
        assert any(f.startswith("lower_left__") for f in field_names)
        assert "lower_left" not in field_names


class TestStats:
    def test_clone_stats_populated(self):
        transformer, outcome = transformer_for(RECTANGLE_SOURCE)
        stats = outcome.stats
        assert stats.method_partitions > 0
        assert stats.class_variants == 2
        assert stats.installed_methods >= stats.class_variants
