"""Stress and scale tests: deep recursion, many classes, large arrays,
long candidate lists — the places where caps, GC, and recursion limits
must hold up."""

from repro.ir import compile_source
from repro.runtime import run_program

from conftest import check_equivalence


class TestScale:
    def test_deep_recursion(self):
        result = run_program(
            compile_source(
                "def down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; }\n"
                "def main() { print(down(2000)); }"
            )
        )
        assert result.output == ["2000"]
        assert result.stats.max_call_depth >= 2000

    def test_many_classes_optimize(self):
        lines = []
        mains = []
        for index in range(30):
            lines.append(
                f"class R{index} {{ var v; def init(v) {{ this.v = v; }} }}"
            )
            lines.append(
                f"class C{index} {{ var f; def init(p) {{ this.f = p; }} }}"
            )
            mains.append(f"var c{index} = new C{index}(new R{index}({index}));")
            mains.append(f"acc = acc + c{index}.f.v;")
        lines.append(
            "def main() { var acc = 0; " + " ".join(mains) + " print(acc); }"
        )
        base, _, report = check_equivalence("\n".join(lines))
        assert base.output == [str(sum(range(30)))]
        assert len(report.plan.accepted()) == 30

    def test_large_inline_array(self):
        source = """
class P { var a; var b; def init(a, b) { this.a = a; this.b = b; } }
def main() {
  var n = 2000;
  var xs = inline_array(n);
  for (var i = 0; i < n; i = i + 1) { xs[i] = new P(i, i * 2); }
  var t = 0;
  for (var j = 0; j < n; j = j + 1) { t = t + xs[j].a + xs[j].b; }
  print(t);
}
"""
        base, opt, report = check_equivalence(source)
        assert opt.stats.allocations < base.stats.allocations

    def test_deep_inheritance_chain(self):
        lines = ["class C0 { var f0; def m0() { return 0; } }"]
        for index in range(1, 12):
            lines.append(
                f"class C{index} : C{index - 1} "
                f"{{ var f{index}; def m{index}() {{ return {index}; }} }}"
            )
        lines.append(
            "def main() { var o = new C11(); print(o.m0() + o.m11()); }"
        )
        base, _, _ = check_equivalence("\n".join(lines))
        assert base.output == ["11"]

    def test_wide_method_fanout(self):
        """One dynamic send over many receiver classes must stay correct
        (dispatch demands across many partitions)."""
        lines = ["class Base { def tag() { return 0; } }"]
        for index in range(1, 10):
            lines.append(
                f"class K{index} : Base {{ def tag() {{ return {index}; }} }}"
            )
        picks = " ".join(
            f"if (i == {index}) {{ return new K{index}(); }}" for index in range(1, 10)
        )
        lines.append(f"def pick(i) {{ {picks} return new Base(); }}")
        lines.append(
            "def main() {\n"
            "  var t = 0;\n"
            "  for (var i = 0; i < 10; i = i + 1) { t = t + pick(i).tag(); }\n"
            "  print(t);\n"
            "}"
        )
        base, _, _ = check_equivalence("\n".join(lines))
        assert base.output == ["45"]

    def test_long_cons_chain_analysis_terminates(self):
        source = """
class Cons { var v; var next; def init(v, n) { this.v = v; this.next = n; } }
def main() {
  var l = nil;
  for (var i = 0; i < 500; i = i + 1) { l = new Cons(i, l); }
  var t = 0;
  var p = l;
  while (p != nil) { t = t + p.v; p = p.next; }
  print(t);
}
"""
        base, _, _ = check_equivalence(source)
        assert base.output == [str(sum(range(500)))]
