"""Profiler tests."""

from repro.ir import compile_source
from repro.runtime import profile_program

SOURCE = """
class P { var v; def init(v) { this.v = v; } def get() { return this.v; } }
def hot() {
  var t = 0;
  for (var i = 0; i < 50; i = i + 1) { t = t + new P(i).get(); }
  return t;
}
def cold() { return 1; }
def main() { print(hot() + cold()); }
"""


class TestProfiler:
    def test_output_matches_plain_run(self):
        from repro.runtime import run_program

        program = compile_source(SOURCE)
        assert profile_program(program).result.output == run_program(program).output

    def test_call_counts(self):
        report = profile_program(compile_source(SOURCE))
        assert report.profiles["hot"].calls == 1
        assert report.profiles["cold"].calls == 1
        assert report.profiles["P::init"].calls == 50
        assert report.profiles["P::get"].calls == 50

    def test_inclusive_attribution(self):
        report = profile_program(compile_source(SOURCE))
        # Inclusive: main subsumes hot, hot subsumes the P methods.
        assert report.profiles["main"].cycles >= report.profiles["hot"].cycles
        assert report.profiles["hot"].cycles > report.profiles["cold"].cycles
        assert (
            report.profiles["hot"].instructions
            >= report.profiles["P::get"].instructions
        )

    def test_hottest_ordering(self):
        report = profile_program(compile_source(SOURCE))
        hottest = report.hottest(3)
        assert hottest[0].name == "main"
        cycles = [p.cycles for p in hottest]
        assert cycles == sorted(cycles, reverse=True)

    def test_render(self):
        report = profile_program(compile_source(SOURCE))
        text = report.render(limit=5)
        assert "main" in text
        assert "%" in text


class TestProfilerCLI:
    def test_profile_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.icc"
        path.write_text(SOURCE)
        assert main(["run", str(path), "--profile"]) == 0
        captured = capsys.readouterr()
        assert "hot" in captured.err
        assert captured.out.strip() == "1226"
