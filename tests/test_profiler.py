"""Profiler tests."""

from repro.ir import compile_source
from repro.runtime import profile_program

SOURCE = """
class P { var v; def init(v) { this.v = v; } def get() { return this.v; } }
def hot() {
  var t = 0;
  for (var i = 0; i < 50; i = i + 1) { t = t + new P(i).get(); }
  return t;
}
def cold() { return 1; }
def main() { print(hot() + cold()); }
"""


class TestProfiler:
    def test_output_matches_plain_run(self):
        from repro.runtime import run_program

        program = compile_source(SOURCE)
        assert profile_program(program).result.output == run_program(program).output

    def test_call_counts(self):
        report = profile_program(compile_source(SOURCE))
        assert report.profiles["hot"].calls == 1
        assert report.profiles["cold"].calls == 1
        assert report.profiles["P::init"].calls == 50
        assert report.profiles["P::get"].calls == 50

    def test_inclusive_attribution(self):
        report = profile_program(compile_source(SOURCE))
        # Inclusive: main subsumes hot, hot subsumes the P methods.
        assert report.profiles["main"].cycles >= report.profiles["hot"].cycles
        assert report.profiles["hot"].cycles > report.profiles["cold"].cycles
        assert (
            report.profiles["hot"].instructions
            >= report.profiles["P::get"].instructions
        )

    def test_self_attribution(self):
        report = profile_program(compile_source(SOURCE))
        hot = report.profiles["hot"]
        # Self excludes the P methods' work, so it is strictly below
        # inclusive; both are positive (the loop body is hot's own work).
        assert 0 < hot.self_cycles < hot.cycles
        assert 0 < hot.self_instructions < hot.instructions
        # Leaves do no further calls: self == inclusive.
        get = report.profiles["P::get"]
        assert get.self_cycles == get.cycles
        assert get.self_instructions == get.instructions

    def test_self_costs_conserve_run_total(self):
        report = profile_program(compile_source(SOURCE))
        # Every executed instruction belongs to exactly one innermost
        # frame, so self costs across all callables sum to the VM totals.
        assert (
            sum(p.self_instructions for p in report.profiles.values())
            == report.result.stats.instructions
        )
        assert (
            sum(p.self_cycles for p in report.profiles.values())
            == report.result.stats.cycles()
        )

    def test_pure_delegator_has_near_zero_self(self):
        source = """
        def leaf() {
          var t = 0;
          for (var i = 0; i < 100; i = i + 1) { t = t + i; }
          return t;
        }
        def wrapper() { return leaf(); }
        def main() { print(wrapper()); }
        """
        report = profile_program(compile_source(source))
        wrapper = report.profiles["wrapper"]
        leaf = report.profiles["leaf"]
        # The wrapper only calls and returns: a handful of instructions,
        # no loop work — while its inclusive cost subsumes the leaf.
        assert wrapper.self_instructions < 10
        assert wrapper.self_cycles < leaf.self_cycles / 10
        assert wrapper.cycles >= leaf.cycles

    def test_hottest_by_self_ranks_workers_first(self):
        source = """
        def leaf() {
          var t = 0;
          for (var i = 0; i < 100; i = i + 1) { t = t + i; }
          return t;
        }
        def wrapper() { return leaf(); }
        def main() { print(wrapper()); }
        """
        report = profile_program(compile_source(source))
        by_self = report.hottest(3, key="self")
        assert by_self[0].name == "leaf"

    def test_hottest_ordering(self):
        report = profile_program(compile_source(SOURCE))
        hottest = report.hottest(3)
        assert hottest[0].name == "main"
        cycles = [p.cycles for p in hottest]
        assert cycles == sorted(cycles, reverse=True)

    def test_render(self):
        report = profile_program(compile_source(SOURCE))
        text = report.render(limit=5)
        assert "main" in text
        assert "%" in text
        # Both attributions are in the table.
        assert "self-cyc" in text
        assert "incl-cyc" in text


class TestProfilerCLI:
    def test_profile_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.icc"
        path.write_text(SOURCE)
        assert main(["run", str(path), "--profile"]) == 0
        captured = capsys.readouterr()
        assert "hot" in captured.err
        assert captured.out.strip() == "1226"
