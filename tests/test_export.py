"""Trace exporters: Chrome trace-event JSON and collapsed-stack flamegraphs.

The Chrome output is validated against the trace-event shape Perfetto
loads (``ph``/``ts``/``dur``/``pid``/``tid`` fields, µs units, one lane
per merged worker shard); the collapsed output must round-trip through
:func:`parse_collapsed` with exact self-time weights.
"""

import json

import pytest

from repro.cli import main
from repro.obs import MemorySink, Tracer
from repro.obs.export import (
    build_span_forest,
    chrome_trace_events,
    collapsed_stacks,
    export_chrome_file,
    export_collapsed_file,
    parse_collapsed,
    render_collapsed,
    write_chrome_trace,
    write_collapsed,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def nested_trace():
    """root(100ms) > child(60ms) > leaf(10ms), plus one point event."""
    clock = FakeClock()
    sink = MemorySink()
    tracer = Tracer(sink, clock=clock)
    with tracer.span("root"):
        clock.advance(0.020)
        with tracer.span("child"):
            clock.advance(0.030)
            with tracer.span("leaf"):
                clock.advance(0.010)
            tracer.event("decision", candidate="C.f", accepted=True)
            clock.advance(0.020)
        clock.advance(0.020)
    return sink.events


def merged_shard_trace():
    """A parent that merged two worker shards (each its own root tree)."""
    clock = FakeClock()
    parent_sink = MemorySink()
    parent = Tracer(parent_sink, clock=clock)
    for worker in range(2):
        child = Tracer(MemorySink(), clock=clock)
        with child.span("bench.build", worker=worker):
            clock.advance(0.010)
            with child.span("analyze"):
                clock.advance(0.005)
        parent.merge(child)
    return parent_sink.events


class TestSpanForest:
    def test_pairs_spans_into_trees(self):
        forest = build_span_forest(nested_trace())
        assert len(forest.roots) == 1
        root = forest.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert forest.unpaired == 0

    def test_self_time_subtracts_children(self):
        forest = build_span_forest(nested_trace())
        root = forest.roots[0]
        assert root.duration == pytest.approx(0.100)
        assert root.self_seconds == pytest.approx(0.040)
        child = root.children[0]
        assert child.self_seconds == pytest.approx(0.050)

    def test_unpaired_begin_is_dropped_and_counted(self):
        events = nested_trace()
        events.append({"ev": "span_begin", "ts": 1.0, "id": 999, "name": "crashed"})
        forest = build_span_forest(events)
        assert forest.unpaired == 1
        assert 999 not in forest.by_id

    def test_end_without_begin_is_tolerated(self):
        events = [{"ev": "span_end", "ts": 1.0, "id": 7, "name": "orphan", "dur": 1.0}]
        forest = build_span_forest(events)
        assert forest.unpaired == 1 and not forest.roots


class TestChromeTrace:
    def test_trace_event_shape(self):
        out = chrome_trace_events(nested_trace())
        completes = [e for e in out if e["ph"] == "X"]
        assert len(completes) == 3
        for event in completes:
            assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
            assert event["pid"] == 1 and isinstance(event["tid"], int)
            assert event["cat"] == "span" and event["name"]
        root = next(e for e in completes if e["name"] == "root")
        assert root["ts"] == 0 and root["dur"] == 100_000  # µs

    def test_metadata_and_instant_events(self):
        out = chrome_trace_events(nested_trace())
        metas = [e for e in out if e["ph"] == "M"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        instants = [e for e in out if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "decision"
        assert instants[0]["args"]["candidate"] == "C.f"

    def test_one_lane_per_merged_worker_shard(self):
        out = chrome_trace_events(merged_shard_trace())
        builds = [e for e in out if e["ph"] == "X" and e["name"] == "bench.build"]
        assert len(builds) == 2
        assert builds[0]["tid"] != builds[1]["tid"]
        # Each shard's analyze span shares its own root's lane.
        for build in builds:
            analyze = next(
                e
                for e in out
                if e["ph"] == "X"
                and e["name"] == "analyze"
                and e["tid"] == build["tid"]
            )
            assert build["ts"] <= analyze["ts"]
        lanes = {e["tid"] for e in out if e["ph"] == "X"}
        thread_names = [
            e for e in out if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {m["tid"] for m in thread_names} == lanes

    def test_span_meta_becomes_args(self):
        out = chrome_trace_events(merged_shard_trace())
        builds = [e for e in out if e["ph"] == "X" and e["name"] == "bench.build"]
        assert sorted(b["args"]["worker"] for b in builds) == [0, 1]

    def test_events_sorted_by_timestamp(self):
        out = chrome_trace_events(nested_trace())
        body = [e for e in out if e["ph"] != "M"]
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)

    def test_write_chrome_trace_file(self, tmp_path):
        path = str(tmp_path / "trace.chrome.json")
        count = write_chrome_trace(path, nested_trace())
        with open(path) as handle:
            payload = json.load(handle)
        assert isinstance(payload["traceEvents"], list)
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"


class TestCollapsedStacks:
    def test_self_time_weights(self):
        stacks = collapsed_stacks(nested_trace())
        assert stacks[("root",)] == 40_000
        assert stacks[("root", "child")] == 50_000
        assert stacks[("root", "child", "leaf")] == 10_000

    def test_recurring_stacks_accumulate(self):
        clock = FakeClock()
        sink = MemorySink()
        tracer = Tracer(sink, clock=clock)
        for _ in range(3):
            with tracer.span("analyze"):
                clock.advance(0.010)
        stacks = collapsed_stacks(sink.events)
        assert stacks == {("analyze",): 30_000}

    def test_round_trip_through_parser(self):
        stacks = collapsed_stacks(nested_trace())
        assert parse_collapsed(render_collapsed(stacks)) == stacks

    def test_parser_skips_malformed_lines(self):
        text = "a;b 10\nnot-a-weight abc\n\nweightless\nc 5\n"
        assert parse_collapsed(text) == {("a", "b"): 10, ("c",): 5}

    def test_render_is_deterministic(self):
        stacks = collapsed_stacks(nested_trace())
        assert render_collapsed(stacks) == render_collapsed(dict(reversed(list(stacks.items()))))

    def test_write_collapsed_file(self, tmp_path):
        path = str(tmp_path / "flame.txt")
        count = write_collapsed(path, nested_trace())
        with open(path) as handle:
            parsed = parse_collapsed(handle.read())
        assert len(parsed) == count == 3


class TestExportCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        import json as _json

        path = tmp_path / "run.jsonl"
        lines = [_json.dumps(e) for e in nested_trace()]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_export_chrome(self, trace_file, tmp_path, capsys):
        out = str(tmp_path / "out.json")
        assert main(["export", "chrome", trace_file, "-o", out]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out) as handle:
            assert json.load(handle)["traceEvents"]

    def test_export_flame_default_path(self, trace_file, capsys):
        assert main(["export", "flame", trace_file]) == 0
        capsys.readouterr()
        parsed = parse_collapsed(open(f"{trace_file}.collapsed.txt").read())
        assert ("root", "child", "leaf") in parsed

    def test_export_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["export", "chrome", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot export" in capsys.readouterr().err

    def test_export_empty_trace_warns(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["export", "flame", str(path)]) == 0
        captured = capsys.readouterr()
        assert "0 stack(s)" in captured.out
        assert "no span events" in captured.err

    def test_exports_on_real_bench_trace(self, tmp_path):
        """End-to-end: a traced run exports to both formats."""
        program = tmp_path / "p.icc"
        program.write_text(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "def main() { var p = new P(5); print(p.v); }\n"
        )
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", str(program), "--inline", "--trace", trace]) == 0
        chrome = str(tmp_path / "t.chrome.json")
        flame = str(tmp_path / "t.txt")
        assert export_chrome_file(trace, chrome) > 0
        assert export_collapsed_file(trace, flame) > 0
        with open(chrome) as handle:
            events = json.load(handle)["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "optimize" for e in events)
        parsed = parse_collapsed(open(flame).read())
        assert any(path[0] == "optimize" for path in parsed)
