"""Multi-round nested object inlining (the paper's future-work direction).

``optimize(max_rounds > 1)`` prefers innermost candidates and re-runs the
pipeline on the transformed program, flattening container chains level by
level.
"""

from repro.ir import compile_source, validate_program
from repro.inlining.pipeline import optimize
from repro.runtime import run_program

NESTED = """
class P { var v; def init(v) { this.v = v; } }
class Mid { var p; var tag; def init(p, tag) { this.p = p; this.tag = tag; } }
class Outer { var m; def init(m) { this.m = m; } }
def main() {
  var total = 0;
  for (var i = 0; i < 5; i = i + 1) {
    var o = new Outer(new Mid(new P(i), i * 10));
    total = total + o.m.p.v + o.m.tag;
  }
  print(total);
}
"""


def run_nested(source, **kwargs):
    program = compile_source(source)
    base = run_program(program)
    report = optimize(program, **kwargs)
    validate_program(report.program)
    result = run_program(report.program)
    assert result.output == base.output, (base.output, result.output)
    return base, result, report


class TestNestedInlining:
    def test_single_round_keeps_outer(self):
        _, _, report = run_nested(NESTED)
        assert {c.describe() for c in report.plan.accepted()} == {"Outer.m"}
        assert report.nested_rounds == 1

    def test_multi_round_flattens_completely(self):
        base, result, report = run_nested(NESTED, max_rounds=4)
        assert report.nested_rounds == 2
        assert {c.describe() for c in report.plan.accepted()} == {"Mid.p"}
        assert report.nested_candidates == ["Outer.m"]
        # The final Outer variant holds all three levels in one object.
        flattened = [
            cls for name, cls in report.program.classes.items()
            if cls.source_name and cls.source_name.startswith("Outer")
            and name != "Outer"
        ]
        assert any("m__p__v" in cls.fields for cls in flattened)

    def test_multi_round_allocation_win(self):
        # With the escape stage ablated (inlining alone): 3 allocations
        # per iteration -> 1 heap object per iteration.
        base, result, _ = run_nested(NESTED, max_rounds=4, escape_pass=False)
        assert base.stats.allocations == 15
        assert result.stats.allocations == 5
        assert result.stats.stack_allocations == 10

    def test_escape_stage_dissolves_the_flattened_object(self):
        # The flattened Outer never escapes the loop body, so the full
        # pipeline scalar-replaces it too: zero allocations of any kind.
        _, result, _ = run_nested(NESTED, max_rounds=4)
        assert result.stats.allocations == 0
        assert result.stats.stack_allocations == 0
        assert result.stats.frame_allocations == 0

    def test_multi_round_beats_single_round(self):
        _, single, _ = run_nested(NESTED)
        _, multi, _ = run_nested(NESTED, max_rounds=4)
        assert multi.stats.cycles() <= single.stats.cycles()
        assert multi.stats.allocations <= single.stats.allocations

    def test_four_levels(self):
        source = """
class D { var v; def init(v) { this.v = v; } }
class C { var d; def init(d) { this.d = d; } }
class B { var c; def init(c) { this.c = c; } }
class A { var b; def init(b) { this.b = b; } }
def main() {
  var total = 0;
  for (var i = 0; i < 4; i = i + 1) {
    var a = new A(new B(new C(new D(i))));
    total = total + a.b.c.d.v;
  }
  print(total);
}
"""
        base, result, report = run_nested(source, max_rounds=6)
        assert report.nested_rounds == 3
        # Only the A objects survive inlining, and those never escape
        # the loop body, so the escape stage scalar-replaces them too.
        assert result.stats.allocations == 0
        flattened = [
            cls for name, cls in report.program.classes.items()
            if cls.source_name and cls.source_name.startswith("A") and name != "A"
        ]
        # Mangled names compose per round (b__c, then (b__c)__(c__d__v)).
        assert any(
            any(f.startswith("b__") and f.endswith("__v") for f in cls.fields)
            for cls in flattened
        )

    def test_rounds_stop_when_nothing_accepted(self):
        source = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(3)); print(c.f.v); }
"""
        _, _, report = run_nested(source, max_rounds=5)
        assert report.nested_rounds <= 2  # one productive round + fixpoint

    def test_rounds_gated_by_inline_arrays(self):
        """Array-element inlining produces views the analysis cannot
        re-model; the loop must stop instead of mis-analyzing."""
        source = """
class P { var v; def init(v) { this.v = v; } }
def main() {
  var a = array(3);
  for (var i = 0; i < 3; i = i + 1) { a[i] = new P(i); }
  var t = 0;
  for (var j = 0; j < 3; j = j + 1) { t = t + a[j].v; }
  print(t);
}
"""
        base, result, report = run_nested(source, max_rounds=4)
        assert report.nested_rounds == 1

    def test_noinline_and_manual_ignore_rounds(self):
        _, _, report = run_nested(NESTED, inline=False, max_rounds=4)
        assert report.nested_rounds == 1
        _, _, manual = run_nested(NESTED, manual_only=True, max_rounds=4)
        assert manual.nested_rounds == 1

    def test_inner_preference_messages(self):
        _, _, report = run_nested(NESTED, max_rounds=2)
        reasons = {
            c.describe(): c.reject_reason for c in report.plan.rejected()
        }
        assert "deferred to a later round" in reasons["Outer.m"]
