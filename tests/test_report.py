"""Markdown report generator tests (on tiny programs via monkeypatching
the benchmark registry would be heavyweight; the report itself is
exercised end-to-end by the CLI in the benchmark suite, so these tests
cover the formatting helpers)."""

from repro.bench.report import _markdown_table


class TestMarkdownTable:
    def test_basic_shape(self):
        text = _markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_float_formatting(self):
        text = _markdown_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_empty_rows(self):
        text = _markdown_table(["x"], [])
        assert text.splitlines() == ["| x |", "|---|"]
