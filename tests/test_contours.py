"""Contour manager unit tests: demand creation, caps, widening, GC."""

from repro.analysis.contours import (
    ARRAY_CLASS,
    AnalysisConfig,
    ContourManager,
    SENSITIVITY_CONCERT,
    SENSITIVITY_INLINING,
)
from repro.analysis.values import obj_val, prim_val


def manager(**kwargs):
    defaults = dict(sensitivity=SENSITIVITY_INLINING)
    defaults.update(kwargs)
    return ContourManager(AnalysisConfig(**defaults))


class TestMethodContours:
    def test_same_signature_shares_contour(self):
        m = manager()
        a, created_a = m.get_method_contour("f", [prim_val("int")], False)
        b, created_b = m.get_method_contour("f", [prim_val("int")], False)
        assert created_a and not created_b
        assert a.id == b.id

    def test_different_types_split(self):
        m = manager()
        a, _ = m.get_method_contour("f", [prim_val("int")], False)
        b, _ = m.get_method_contour("f", [prim_val("float")], False)
        assert a.id != b.id

    def test_different_contour_ids_split_in_inlining_mode(self):
        m = manager()
        a, _ = m.get_method_contour("f", [obj_val(1)], False)
        b, _ = m.get_method_contour("f", [obj_val(2)], False)
        assert a.id != b.id

    def test_concert_mode_merges_same_class_args(self):
        m = manager(sensitivity=SENSITIVITY_CONCERT)
        c1, _ = m.get_object_contour("P", 100, 1)
        c2, _ = m.get_object_contour("P", 101, 1)
        a, _ = m.get_method_contour("f", [obj_val(c1.id)], False)
        b, _ = m.get_method_contour("f", [obj_val(c2.id)], False)
        assert a.id == b.id  # same class name, non-receiver argument

    def test_concert_mode_splits_receiver_contours(self):
        m = manager(sensitivity=SENSITIVITY_CONCERT)
        c1, _ = m.get_object_contour("P", 100, 1)
        c2, _ = m.get_object_contour("P", 101, 1)
        a, _ = m.get_method_contour("P::m", [obj_val(c1.id)], True)
        b, _ = m.get_method_contour("P::m", [obj_val(c2.id)], True)
        assert a.id != b.id  # creator sensitivity for self

    def test_join_args_grows(self):
        m = manager()
        contour, _ = m.get_method_contour("f", [prim_val("int")], False)
        # Contours start at bottom; the caller joins the actuals in.
        assert contour.join_args([prim_val("int")]) is True
        assert contour.join_args([prim_val("int")]) is False
        assert contour.join_args([prim_val("float")]) is True
        assert contour.arg_values[0].prims() == {"int", "float"}

    def test_widening_at_cap(self):
        m = manager(max_method_contours_per_callable=2)
        m.get_method_contour("f", [prim_val("int")], False)
        m.get_method_contour("f", [prim_val("float")], False)
        summary, _ = m.get_method_contour("f", [prim_val("str")], False)
        assert summary.summary
        assert "f" in m.widened_callables
        # Every later request lands on the summary.
        again, created = m.get_method_contour("f", [prim_val("bool")], False)
        assert again.id == summary.id and not created

    def test_widening_folds_existing_knowledge(self):
        m = manager(max_method_contours_per_callable=1)
        first, _ = m.get_method_contour("f", [prim_val("int")], False)
        first.join_args([prim_val("int")])
        summary, _ = m.get_method_contour("f", [prim_val("float")], False)
        assert summary.summary
        # The summary folded the pre-existing contour's argument knowledge.
        assert "int" in summary.arg_values[0].prims()

    def test_retired_contours_do_not_count(self):
        m = manager(max_method_contours_per_callable=2)
        a, _ = m.get_method_contour("f", [prim_val("int")], False)
        b, _ = m.get_method_contour("f", [prim_val("float")], False)
        a.retired = True
        c, created = m.get_method_contour("f", [prim_val("str")], False)
        assert created and not c.summary  # cap judged on live contours only

    def test_revival_clears_retired(self):
        m = manager()
        a, _ = m.get_method_contour("f", [prim_val("int")], False)
        a.retired = True
        b, created = m.get_method_contour("f", [prim_val("int")], False)
        assert b.id == a.id and not created
        assert not b.retired

    def test_remove_method_contour(self):
        m = manager()
        a, _ = m.get_method_contour("f", [prim_val("int")], False)
        m.remove_method_contour(a.id)
        b, created = m.get_method_contour("f", [prim_val("int")], False)
        assert created and b.id != a.id


class TestObjectContours:
    def test_site_and_creator_key(self):
        m = manager()
        a, _ = m.get_object_contour("P", 10, 1)
        b, _ = m.get_object_contour("P", 10, 1)
        c, _ = m.get_object_contour("P", 10, 2)
        d, _ = m.get_object_contour("P", 11, 1)
        assert a.id == b.id
        assert len({a.id, c.id, d.id}) == 3

    def test_array_contours(self):
        m = manager()
        contour, _ = m.get_object_contour(ARRAY_CLASS, 5, 1, is_array=True)
        assert contour.is_array

    def test_site_widening(self):
        m = manager(max_object_contours_per_site=2)
        # Creators must be live method contours for the liveness count.
        c1, _ = m.get_method_contour("f", [prim_val("int")], False)
        c2, _ = m.get_method_contour("f", [prim_val("float")], False)
        c3, _ = m.get_method_contour("f", [prim_val("str")], False)
        m.get_object_contour("P", 10, c1.id)
        m.get_object_contour("P", 10, c2.id)
        summary, _ = m.get_object_contour("P", 10, c3.id)
        assert summary.summary
        assert 10 in m.widened_sites

    def test_metrics(self):
        m = manager()
        m.get_method_contour("f", [], False)
        m.get_method_contour("g", [prim_val("int")], False)
        m.get_method_contour("g", [prim_val("float")], False)
        assert m.method_contour_count() == 3
        assert m.reached_callables() == {"f", "g"}
        assert m.contours_per_method() == 1.5
