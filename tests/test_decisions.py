"""Inlining decision tests: candidate discovery, screening, purity."""

from conftest import accepted_names, plan_for, rejected_names


class TestRunningExample:
    def test_rectangle_fields_accepted(self, rectangle_plan):
        names = accepted_names(rectangle_plan)
        assert "Rectangle.lower_left" in names
        assert "Rectangle.upper_right" in names

    def test_list_field_rejected_for_aliasing(self, rectangle_plan):
        reasons = rejected_names(rectangle_plan)
        assert "List.head_item" in reasons
        assert "passable by value" in reasons["List.head_item"]

    def test_stackable_allocations_found(self, rectangle_plan):
        candidate = next(
            c for c in rectangle_plan.accepted() if c.field_name == "lower_left"
        )
        assert candidate.stackable_allocations

    def test_polymorphic_children_recorded(self, rectangle_plan):
        candidate = next(
            c for c in rectangle_plan.accepted() if c.field_name == "lower_left"
        )
        classes = {desc[1] for desc in candidate.child_desc_of.values()}
        assert classes == {"Point", "Point3D"}


class TestStructuralScreening:
    def test_possibly_nil_field_rejected(self):
        plan = plan_for(
            "class P { }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() {\n"
            "  var c1 = new C(new P());\n"
            "  var c2 = new C(nil);\n"
            "  print(c1.f == nil, c2.f == nil);\n"
            "}"
        )
        reasons = rejected_names(plan)
        # Caught either by the nil-content screen (nil joins an object slot)
        # or by the unwritten-contour-read screen (nil-only slots are not
        # object slots); both keep the nil-holding field a reference.
        assert "C.f" in reasons

    def test_int_field_not_a_candidate(self):
        plan = plan_for(
            "class C { var f; def init() { this.f = 1; } }\n"
            "def main() { print(new C().f); }"
        )
        assert "C.f" not in accepted_names(plan) | set(rejected_names(plan))

    def test_recursive_containment_rejected(self):
        plan = plan_for(
            "class Cons { var next; def init(n) { this.next = n; } }\n"
            "def main() { var a = new Cons(new Cons(nil and nil)); print(a == nil); }"
            .replace("nil and nil", "new Cons(nil)")
        )
        reasons = rejected_names(plan)
        assert "Cons.next" in reasons

    def test_identity_comparison_rejects(self):
        plan = plan_for(
            "class P { }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() {\n"
            "  var c = new C(new P());\n"
            "  print(c.f == c.f);\n"
            "}"
        )
        reasons = rejected_names(plan)
        assert "C.f" in reasons
        assert "identity" in reasons["C.f"]

    def test_store_outside_constructor_rejected(self):
        plan = plan_for(
            "class P { }\n"
            "class C { var f; def set(p) { this.f = p; } }\n"
            "def main() { var c = new C(); c.set(new P()); print(c.f.m2()); }"
            .replace(".m2()", " == nil")
        )
        reasons = rejected_names(plan)
        # Rejected either for the constructor rule or the identity compare;
        # the constructor rule is checked first.
        assert "C.f" in reasons

    def test_polymorphic_within_one_contour_rejected(self):
        plan = plan_for(
            "class A { } class B { }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def pick(c) { return c.f; }\n"
            "def main() {\n"
            "  var x = nil;\n"
            "  for (var i = 0; i < 2; i = i + 1) {\n"
            "    if (i == 0) { x = new C(new A()); } else { x = new C(new B()); }\n"
            "    pick(x);\n"
            "  }\n"
            "}"
        )
        # Both allocations happen at distinct sites, so per-contour children
        # stay monomorphic and this is actually acceptable via class cloning.
        # Force true same-contour polymorphism through one helper:
        plan2 = plan_for(
            "class A { } class B { }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def build(p) { return new C(p); }\n"
            "def helper(i) { if (i == 0) { return new A(); } return new B(); }\n"
            "def main() {\n"
            "  for (var i = 0; i < 2; i = i + 1) { var c = build(helper(i)); print(c.f == nil); }\n"
            "}"
        )
        reasons = rejected_names(plan2)
        assert "C.f" in reasons

    def test_unwritten_contour_read_rejected(self):
        plan = plan_for(
            "class P { }\n"
            "class C { var f; var g;\n"
            "  def init(p) { this.f = p; }\n"
            "  def fill(p) { this.g = p; }\n"
            "}\n"
            "def read_g(c) { return c.g; }\n"
            "def main() {\n"
            "  var c1 = new C(new P());\n"
            "  var c2 = new C(new P());\n"
            "  c2.fill(new P());\n"
            "  print(read_g(c1) == nil, read_g(c2) == nil);\n"
            "}"
        )
        reasons = rejected_names(plan)
        assert "C.g" in reasons


class TestArrayCandidates:
    def test_monomorphic_array_accepted(self):
        plan = plan_for(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "def main() {\n"
            "  var a = array(4);\n"
            "  for (var i = 0; i < 4; i = i + 1) { a[i] = new P(i); }\n"
            "  var t = 0;\n"
            "  for (var j = 0; j < 4; j = j + 1) { t = t + a[j].v; }\n"
            "  print(t);\n"
            "}"
        )
        assert any(name.startswith("array-site") for name in accepted_names(plan))

    def test_polymorphic_array_rejected(self):
        """The paper's Richards limitation: a polymorphic task array."""
        plan = plan_for(
            "class A { var v; def init() { this.v = 1; } }\n"
            "class B : A { def init() { this.v = 2; } }\n"
            "def main() {\n"
            "  var a = array(2);\n"
            "  a[0] = new A();\n"
            "  a[1] = new B();\n"
            "  print(a[0].v + a[1].v);\n"
            "}"
        )
        reasons = rejected_names(plan)
        key = next(name for name in reasons if name.startswith("array-site"))
        assert "polymorphic" in reasons[key]

    def test_embedded_fixed_array_accepted(self):
        plan = plan_for(
            "class C { var d;\n"
            "  def init() {\n"
            "    var a = array(3);\n"
            "    for (var i = 0; i < 3; i = i + 1) { a[i] = 0; }\n"
            "    this.d = a;\n"
            "  }\n"
            "  def get(i) { var a = this.d; return a[i]; }\n"
            "}\n"
            "def main() { var c = new C(); print(c.get(1)); }"
        )
        assert "C.d" in accepted_names(plan)

    def test_dynamic_length_array_child_rejected(self):
        plan = plan_for(
            "class C { var d;\n"
            "  def init(n) { this.d = array(n); }\n"
            "  def size() { var a = this.d; return len(a); }\n"
            "}\n"
            "def main() { print(new C(4).size()); }"
        )
        reasons = rejected_names(plan)
        assert "C.d" in reasons
        assert "non-constant" in reasons["C.d"]


class TestPurity:
    def test_raw_and_inlined_mixing_rejected(self):
        """A use site that may see both a raw object and an inlined one
        cannot be rewritten."""
        plan = plan_for(
            "class P { var v; def init(v) { this.v = v; } def get() { return this.v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def touch(p) { return p.get(); }\n"
            "def join_point(p) { return touch(p); }\n"
            "def main() {\n"
            "  var raw = new P(1);\n"
            "  var c = new C(new P(2));\n"
            "  var x = join_point(raw);\n"
            "  var y = join_point(c.f);\n"
            "  // Merge the two paths through one polymorphic-ish variable so\n"
            "  // the analysis cannot keep them apart:\n"
            "  var pick = raw;\n"
            "  if (x < y) { pick = c.f; }\n"
            "  print(pick.get());\n"
            "}"
        )
        reasons = rejected_names(plan)
        assert "C.f" in reasons

    def test_two_inlined_fields_never_mix_after_splitting(self, rectangle_plan):
        # Both rectangle fields survive because the contours split (Fig 8).
        names = accepted_names(rectangle_plan)
        assert {"Rectangle.lower_left", "Rectangle.upper_right"} <= names

    def test_reads_through_uninlined_wrapper_resolve(self, rectangle_plan):
        """head(l1) returns a value whose representation resolves through
        the rejected List slot to the inlined rectangle field."""
        assert "Rectangle.lower_left" in accepted_names(rectangle_plan)
        assert "List.head_item" in rejected_names(rectangle_plan)
