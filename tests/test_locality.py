"""Locality attribution: per-label cache accounting, heatmap events,
the ``repro heatmap`` CLI, and the bench-harness threading.

The differential tests are the backbone: attribution is observation-only,
so every figure-visible quantity (output, cycles, aggregate cache stats)
must be bit-identical with it on or off, serial or parallel.
"""

import pickle

import pytest

from repro.bench.harness import BUILDS, _run_matrix, run_benchmark
from repro.bench.metadata import BenchmarkInfo
from repro.bench.report import _locality_section
from repro.ir import compile_source
from repro.obs import (
    MemorySink,
    Tracer,
    collect_locality,
    label_display_name,
    locality_from_file,
    misses_by_field,
    render_heatmap,
    render_locality_diff,
    report_from_stats,
)
from repro.runtime import run_program
from repro.runtime.cache import DEFAULT_TOP_K, CacheSimulator, LocalityStats

#: A shrunken OOPACK: arrays of Complex objects vs inline arrays — the
#: paper's locality showcase, small enough for unit tests.
MINI_OOPACK = """
class Complex {
  var re;
  var im;
  def init(r, i) { this.re = r; this.im = i; }
  def norm() { return this.re * this.re + this.im * this.im; }
}
var N = 64;
def make(n, bias) {
  var a = inline_array(n);
  for (var i = 0; i < n; i = i + 1) {
    a[i] = new Complex(float(i) * 0.5 + bias, float(i) - bias);
  }
  return a;
}
def main() {
  var a = make(N, 0.5);
  var b = make(N, -0.25);
  var total = 0.0;
  for (var i = 0; i < n_of(a); i = i + 1) {
    total = total + a[i].re * b[i].re + a[i].im * b[i].im;
  }
  print(total);
}
def n_of(a) { return N; }
"""


def _run(source: str, **kwargs):
    return run_program(compile_source(source), **kwargs)


class TestAttributionRecording:
    def test_labels_and_sites_recorded(self):
        result = _run(MINI_OOPACK, attribute_locality=True)
        locality = result.stats.locality
        assert locality is not None
        kinds = {label[0] for label in locality.by_label}
        assert "field" in kinds and "alloc" in kinds
        field_classes = {
            label[1] for label in locality.by_label if label[0] == "field"
        }
        assert "Complex" in field_classes
        sites = {label[3] for label in locality.by_label if label[0] == "alloc"}
        assert any(site and ":" in site for site in sites)

    def test_every_miss_is_attributed(self):
        result = _run(MINI_OOPACK, attribute_locality=True)
        locality = result.stats.locality
        assert locality.attributed_misses == result.stats.cache.misses
        total_accesses = sum(s.accesses for s in locality.by_label.values())
        assert total_accesses == result.stats.cache.accesses

    def test_off_by_default(self):
        result = _run(MINI_OOPACK)
        assert result.stats.locality is None

    def test_summary_gains_locality_scalars_only_when_on(self):
        on = _run(MINI_OOPACK, attribute_locality=True).stats.summary()
        off = _run(MINI_OOPACK).stats.summary()
        assert "locality_labels" in on and "locality_attributed_misses" in on
        assert "locality_labels" not in off

    def test_unlabeled_access_falls_back(self):
        cache = CacheSimulator()
        cache.enable_attribution()
        cache.access(0x1000)
        assert ("other", None, None, None) in cache.locality.by_label


class TestDifferential:
    """Attribution on vs off: all figure-visible quantities identical."""

    def test_cycles_output_and_cache_identical(self):
        on = _run(MINI_OOPACK, attribute_locality=True)
        off = _run(MINI_OOPACK)
        assert on.output == off.output
        assert on.stats.cycles() == off.stats.cycles()
        assert on.stats.cache.misses == off.stats.cache.misses
        assert on.stats.cache.accesses == off.stats.cache.accesses
        assert on.stats.instructions == off.stats.instructions

    def test_trace_identical_except_locality_keys(self):
        def events_of(**kwargs):
            sink = MemorySink()
            _run(MINI_OOPACK, tracer=Tracer(sink), **kwargs)
            return sink.events

        on = events_of(attribute_locality=True)
        off = events_of()
        names_on = [e.get("name") for e in on if e.get("ev") == "event"]
        names_off = [e.get("name") for e in off if e.get("ev") == "event"]
        assert "run.locality" in names_on and "run.heatmap" in names_on
        assert "run.locality" not in names_off
        stats_on = next(
            e["data"] for e in on
            if e.get("ev") == "event" and e.get("name") == "run.stats"
        )
        stats_off = next(
            e["data"] for e in off
            if e.get("ev") == "event" and e.get("name") == "run.stats"
        )
        for key, value in stats_off.items():
            assert stats_on[key] == value


class TestBoundedEvents:
    def test_label_summary_is_bounded(self):
        result = _run(MINI_OOPACK, attribute_locality=True)
        summary = result.stats.locality.label_summary(top_k=3)
        assert len(summary["labels"]) <= 3
        assert summary["total_labels"] == len(result.stats.locality.by_label)
        assert summary["truncated"] == summary["total_labels"] - 3

    def test_heatmap_summary_is_bounded_and_totals_full(self):
        result = _run(MINI_OOPACK, attribute_locality=True)
        locality = result.stats.locality
        summary = locality.heatmap_summary(top_k=2)
        assert len(summary["buckets"]) <= 2
        # Totals always cover the untruncated data.
        assert summary["total_misses"] == locality.attributed_misses
        assert summary["truncated"] == max(0, len(locality.bucket_misses) - 2)

    def test_default_bound_applies_to_trace_events(self):
        sink = MemorySink()
        _run(MINI_OOPACK, tracer=Tracer(sink), attribute_locality=True)
        payload = next(
            e["data"] for e in sink.events
            if e.get("ev") == "event" and e.get("name") == "run.locality"
        )
        assert len(payload["labels"]) <= DEFAULT_TOP_K
        assert "truncated" in payload

    def test_bucket_lines_validation(self):
        from repro.runtime.cache import CacheConfig

        with pytest.raises(ValueError):
            LocalityStats(CacheConfig(), bucket_lines=0)


class TestDisplayNames:
    def test_field_kinds_collapse(self):
        assert label_display_name("field", "Complex", "re") == "Complex.re"
        assert label_display_name("inline_field", "Complex@elem1", "re") == "Complex.re"
        assert label_display_name("element", "<array>", None) == "<array>[]"
        assert label_display_name("alloc", "Complex", None) == "new Complex"
        assert label_display_name("alloc", "Complex@elem1[]", None) == "new Complex[]"

    def test_report_round_trip_from_stats(self):
        result = _run(MINI_OOPACK, attribute_locality=True)
        report = report_from_stats(result.stats.locality)
        assert report.has_data
        assert report.total_misses == result.stats.locality.attributed_misses
        assert "Complex.re" in misses_by_field(report) or "Complex.re" in report.labels


ARRAY_OF_OBJECTS = """
class P {
  var v;
  def init(v) { this.v = v; }
}
def main() {
  var a = array(8);
  for (var i = 0; i < 8; i = i + 1) {
    a[i] = new P(i);
  }
  var total = 0;
  for (var i = 0; i < 8; i = i + 1) {
    total = total + a[i].v;
  }
  print(total);
}
"""


class TestElementClassLabels:
    """Arrays whose element class the analysis proves get ``Cls[]`` labels
    instead of the generic ``<array>`` (transformation-annotated)."""

    def _labels(self, build):
        from repro.session import Session

        session = Session(ARRAY_OF_OBJECTS)
        result = session.run(build, attribute_locality=True)
        return {
            label_display_name(*label[:3])
            for label in result.stats.locality.by_label
        }

    def test_unoptimized_build_keeps_generic_label(self):
        labels = self._labels("plain")
        assert "<array>[]" in labels
        assert "P[]" not in labels

    def test_optimized_build_sharpens_array_labels(self):
        labels = self._labels("noinline")
        assert "P[]" in labels  # element accesses
        assert "new P[]" in labels  # the allocation itself
        assert "<array>[]" not in labels

    def test_annotation_is_observation_only(self):
        from repro.session import Session

        annotated = Session(ARRAY_OF_OBJECTS).run("noinline", attribute_locality=True)
        bare = Session(ARRAY_OF_OBJECTS).run("noinline")
        assert annotated.output == bare.output
        assert annotated.stats.cycles() == bare.stats.cycles()
        assert annotated.stats.cache.misses == bare.stats.cache.misses

    def test_mixed_element_classes_stay_generic(self):
        from repro.session import Session

        source = """
class P { var v; def init(v) { this.v = v; } }
class Q { var w; def init(w) { this.w = w; } }
def main() {
  var a = array(4);
  a[0] = new P(1);
  a[1] = new Q(2);
  a[2] = new P(3);
  a[3] = new Q(4);
  print(a[0].v + a[3].w);
}
"""
        session = Session(source)
        result = session.run("noinline", attribute_locality=True)
        labels = {
            label_display_name(*label[:3])
            for label in result.stats.locality.by_label
        }
        # Two possible element classes: the label must stay generic.
        assert "<array>[]" in labels
        assert "P[]" not in labels and "Q[]" not in labels


class TestHeatmapCLI:
    @pytest.fixture()
    def oopack_traces(self, tmp_path):
        """uniform + inline locality traces of the real OOPACK program."""
        from repro.bench.programs import oopack
        from repro.cli import main

        src = tmp_path / "oopack.icc"
        src.write_text(oopack.SOURCE)
        traces = {}
        for build in ("noinline", "inline"):
            trace = str(tmp_path / f"{build}.jsonl")
            assert main(
                ["run", str(src), f"--{build}", "--locality", "--trace", trace]
            ) == 0
            traces[build] = trace
        return traces

    def test_single_trace_renders_heatmap(self, oopack_traces, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["heatmap", oopack_traces["noinline"]]) == 0
        out = capsys.readouterr().out
        assert "address-space heatmap" in out
        assert "Complex.re" in out

    def test_diff_names_field_whose_misses_drop(self, oopack_traces, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(
            ["heatmap", oopack_traces["noinline"], oopack_traces["inline"]]
        ) == 0
        out = capsys.readouterr().out
        assert "locality diff" in out
        # The acceptance bar: a (class, field) whose misses inlining cut.
        assert "fields with fewer misses" in out
        assert "Complex.re" in out.split("fields with fewer misses")[1]
        before = locality_from_file(oopack_traces["noinline"])
        after = locality_from_file(oopack_traces["inline"])
        assert misses_by_field(after)["Complex.re"] < misses_by_field(before)["Complex.re"]

    def test_exits_zero_on_locality_free_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "plain.jsonl"
        trace.write_text('{"ev": "event", "name": "decision", "data": {}}\n')
        assert main(["heatmap", str(trace)]) == 0
        assert "no locality data" in capsys.readouterr().out

    def test_rejects_more_than_two_traces(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert main(["heatmap", str(trace), str(trace), str(trace)]) == 2

    def test_run_locality_flag_prints_heatmap(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "mini.icc"
        src.write_text(MINI_OOPACK)
        assert main(["run", str(src), "--noinline", "--locality"]) == 0
        err = capsys.readouterr().err
        assert "address-space heatmap" in err


TINY_SPECS = {
    "tiny-loc": (
        MINI_OOPACK,
        BenchmarkInfo(name="tiny-loc", description="mini oopack", ideal_inlinable=1),
    ),
}


class TestHarnessThreading:
    @pytest.fixture(scope="class")
    def serial_run(self):
        source, info = TINY_SPECS["tiny-loc"]
        return run_benchmark("tiny-loc", source, info, locality=True)

    def test_build_results_carry_locality(self, serial_run):
        for build in BUILDS:
            locality = serial_run.builds[build].locality
            assert locality is not None
            assert set(locality) == {"labels", "heatmap"}
            assert locality["labels"]["labels"]

    def test_locality_off_leaves_field_none(self):
        source, info = TINY_SPECS["tiny-loc"]
        run = run_benchmark("tiny-loc", source, info)
        assert all(r.locality is None for r in run.builds.values())

    def test_parallel_matches_serial(self, serial_run):
        runs = _run_matrix(TINY_SPECS, BUILDS, jobs=2, locality=True)
        parallel = runs["tiny-loc"]
        for build in BUILDS:
            par, ser = parallel.builds[build], serial_run.builds[build]
            assert par.locality == ser.locality
            assert par.cycles == ser.cycles

    def test_locality_summaries_pickle(self, serial_run):
        result = serial_run.builds["inline"]
        clone = pickle.loads(pickle.dumps(result.locality))
        assert clone == result.locality

    def test_worker_shards_carry_locality_events(self):
        sink = MemorySink()
        _run_matrix(TINY_SPECS, BUILDS, jobs=2, locality=True, tracer=Tracer(sink))
        report = collect_locality(sink.events)
        assert report.runs == len(BUILDS)
        assert report.has_data

    def test_report_section_names_improved_field(self, serial_run):
        section = _locality_section({"tiny-loc": serial_run})
        assert "| benchmark |" in section
        assert "tiny-loc" in section


class TestRenderers:
    def test_render_heatmap_without_data(self):
        report = collect_locality([])
        assert "no locality data" in render_heatmap(report)

    def test_render_diff_requires_both_sides(self):
        empty = collect_locality([])
        result = _run(MINI_OOPACK, attribute_locality=True)
        full = report_from_stats(result.stats.locality)
        text = render_locality_diff(empty, full, names=("u", "i"))
        assert "no locality data in u" in text
