"""Benchmark-suite integration tests.

These compile, optimize, and run all four paper benchmarks in every
build configuration (cached per session) and assert the qualitative
claims of the paper's evaluation hold — output equivalence, the Figure
14 accept/reject sets, the known-limit rejections, and the Figure 17
orderings.
"""

import pytest

from repro.bench import BENCHMARKS, field_counts
from repro.inlining.pipeline import candidate_is_declared_inline

# bench_runs / perf_runs are session fixtures in conftest.py, shared with
# the parallel-harness differential tests.


class TestEquivalence:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_all_builds_match_reference_output(self, bench_runs, name):
        run = bench_runs[name]
        for build in ("noinline", "inline", "manual"):
            assert run.builds[build].run.output == run.reference_output

    def test_richards_checks_canonical_counts(self, bench_runs):
        out = bench_runs["richards"].reference_output[0]
        assert "2322" in out and "928" in out


class TestFigure14Claims:
    def test_expected_accepted(self, bench_runs):
        for name, run in bench_runs.items():
            accepted = {c.describe() for c in run.builds["inline"].report.plan.accepted()}
            for expected in run.info.expected_accepted:
                assert any(expected in a for a in accepted), (name, expected, accepted)

    def test_expected_rejected(self, bench_runs):
        for name, run in bench_runs.items():
            rejected = {c.describe() for c in run.builds["inline"].report.plan.rejected()}
            for expected in run.info.expected_rejected:
                assert any(expected in r for r in rejected), (name, expected, rejected)

    def test_automatic_at_least_declared(self, bench_runs):
        """'There was no field manually declared inline in C++ that our
        analysis did not find inlinable.'"""
        for name, run in bench_runs.items():
            counts = field_counts(run)
            assert counts.automatically_inlined >= counts.declared_inline_cpp, name

    def test_automatic_beats_declared_where_cpp_cannot(self, bench_runs):
        """'We did better than C++ on Silo, Richards and polyover.'"""
        for name in ("silo", "richards", "polyover"):
            counts = field_counts(bench_runs[name])
            assert counts.automatically_inlined > counts.declared_inline_cpp, name

    def test_automatic_within_ideal(self, bench_runs):
        for name, run in bench_runs.items():
            counts = field_counts(run)
            assert counts.automatically_inlined <= counts.ideal_inlinable, name

    def test_every_declared_location_is_accepted(self, bench_runs):
        for name, run in bench_runs.items():
            plan = run.builds["inline"].report.plan
            for candidate in plan.candidates.values():
                if candidate_is_declared_inline(run.program, candidate):
                    assert candidate.accepted, (name, candidate.describe())


class TestFigure16Claims:
    def test_inlining_needs_at_least_baseline_sensitivity(self, bench_runs):
        for name, run in bench_runs.items():
            without = run.builds["noinline"].report.analysis
            with_inl = run.builds["inline"].report.analysis
            assert (
                with_inl.method_contours_per_method()
                >= without.method_contours_per_method() - 1e-9
            ), name

    def test_object_contours_stay_close(self, bench_runs):
        """§6.2.2: object inlining required (almost) no extra object
        contours."""
        for name, run in bench_runs.items():
            without = run.builds["noinline"].report.analysis.object_contour_count()
            with_inl = run.builds["inline"].report.analysis.object_contour_count()
            assert with_inl <= without * 1.3 + 5, name


class TestFigure17Claims:
    def test_inlining_never_slows_down(self, perf_runs):
        for name, run in perf_runs.items():
            assert run.speedup("inline") >= 0.99, name

    def test_polyover_and_oopack_big_wins(self, perf_runs):
        assert perf_runs["oopack"].speedup("inline") > 1.5
        assert perf_runs["polyover (array)"].speedup("inline") > 1.4
        assert perf_runs["polyover (list)"].speedup("inline") > 1.3

    def test_silo_and_richards_modest_wins(self, perf_runs):
        assert perf_runs["silo"].speedup("inline") > 1.02
        assert perf_runs["richards"].speedup("inline") > 1.0

    def test_automatic_matches_or_beats_manual(self, perf_runs):
        """'...matching the performance of code with inline allocation
        specified by hand.'"""
        for name, run in perf_runs.items():
            assert run.builds["inline"].cycles <= run.builds["manual"].cycles * 1.02, name

    def test_list_variant_gain_not_expressible_manually(self, perf_runs):
        """polyover (list): the cons-cell merging cannot be declared in
        C++, so the manual build shows no gain while automatic does."""
        run = perf_runs["polyover (list)"]
        assert run.speedup("manual") < 1.02
        assert run.speedup("inline") > 1.3

    def test_allocation_reduction(self, perf_runs):
        for name in ("oopack", "silo", "polyover (array)", "polyover (list)"):
            run = perf_runs[name]
            base = run.builds["noinline"].run.stats.allocations
            opt = run.builds["inline"].run.stats.allocations
            assert opt < base, name
