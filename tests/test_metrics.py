"""The metrics registry: instruments, snapshot/merge, exposition.

The registry is the live half of the observability plane (the tracer is
the post-hoc half), so these tests pin its contracts hard: the disabled
path allocates nothing, snapshots merge like trace shards, bucket counts
stay non-cumulative internally but cumulate (and close with ``+Inf``) in
the Prometheus text rendering.
"""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    bucket_index,
    digest,
    quantile_from_buckets,
    render_digest,
    render_prom,
)


class TestInstruments:
    def test_counter_inc_and_labels(self):
        m = MetricsRegistry()
        c = m.counter("requests_total", "reqs", labels=("op",))
        c.labels(op="optimize").inc()
        c.labels(op="optimize").inc(2)
        c.labels(op="run").inc()
        assert c.labels(op="optimize").value == 3
        assert c.value == 4  # sum across series

    def test_label_children_are_memoized(self):
        m = MetricsRegistry()
        c = m.counter("x_total", labels=("k",))
        assert c.labels(k="a") is c.labels(k="a")

    def test_unlabeled_family_is_the_instrument(self):
        m = MetricsRegistry()
        g = m.gauge("depth")
        g.set(7)
        g.dec(2)
        assert g.value == 5

    def test_histogram_bucket_placement(self):
        m = MetricsRegistry()
        h = m.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)  # bucket 0
        h.observe(0.1)    # exactly on a boundary -> that bucket (le=0.1)
        h.observe(0.5)    # bucket 2
        h.observe(99.0)   # +Inf overflow
        series = m.to_dict()["lat_seconds"]["series"][0]
        assert series["counts"] == [1, 1, 1, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(99.605)

    def test_reregistration_returns_same_family(self):
        m = MetricsRegistry()
        a = m.counter("c_total", labels=("op",))
        b = m.counter("c_total", labels=("op",))
        assert a is b

    def test_type_or_label_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("c_total", labels=("op",))
        with pytest.raises(ValueError, match="re-registered"):
            m.gauge("c_total", labels=("op",))
        with pytest.raises(ValueError, match="re-registered"):
            m.counter("c_total", labels=("other",))
        m.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="re-registered"):
            m.histogram("h_seconds", buckets=(1.0, 5.0))

    def test_empty_histogram_buckets_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("h_seconds", buckets=())


class TestNullPath:
    def test_null_metrics_is_inert_and_allocation_free(self):
        # labels() must return the *same* shared instrument: the zero-
        # allocation contract for the disabled path.
        c = NULL_METRICS.counter("anything_total", labels=("op",))
        assert c.labels(op="x") is c
        assert NULL_METRICS.histogram("h_seconds") is c
        c.inc()
        c.observe(1.0)
        c.set(3)
        c.dec()
        assert NULL_METRICS.to_dict() == {}
        NULL_METRICS.merge_snapshot({"x": {}})  # no-op
        assert not NULL_METRICS.enabled
        assert MetricsRegistry().enabled


class TestSnapshotMerge:
    def _loaded(self):
        m = MetricsRegistry()
        m.counter("reqs_total", "r", labels=("op",)).labels(op="a").inc(3)
        m.gauge("depth").set(4)
        h = m.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        return m

    def test_snapshot_round_trips_through_json(self):
        snapshot = self._loaded().to_dict()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_sums_counters_and_buckets(self):
        m = self._loaded()
        snapshot = self._loaded().to_dict()
        m.merge_snapshot(snapshot)
        out = m.to_dict()
        assert out["reqs_total"]["series"][0]["value"] == 6
        assert out["lat_seconds"]["series"][0]["counts"] == [2, 4, 2]
        assert out["lat_seconds"]["series"][0]["count"] == 8

    def test_merge_gauges_last_writer_wins(self):
        m = self._loaded()
        other = MetricsRegistry()
        other.gauge("depth").set(9)
        m.merge_snapshot(other.to_dict())
        assert m.to_dict()["depth"]["series"][0]["value"] == 9

    def test_merge_creates_unknown_families(self):
        # A worker-only family (e.g. pipeline stage timings) must surface
        # in the daemon registry with its own type and buckets intact.
        worker = MetricsRegistry()
        worker.histogram(
            "pipeline_stage_seconds", buckets=(0.1, 1.0), labels=("stage",)
        ).labels(stage="inline").observe(0.2)
        daemon = MetricsRegistry()
        daemon.merge_snapshot(worker.to_dict())
        entry = daemon.to_dict()["pipeline_stage_seconds"]
        assert entry["type"] == "histogram"
        assert entry["buckets"] == [0.1, 1.0]
        assert entry["series"][0]["counts"] == [0, 1, 0]


class TestQuantiles:
    def test_quantile_reports_bucket_upper_boundary(self):
        boundaries = [0.01, 0.1, 1.0]
        counts = [5, 3, 2, 0]
        assert quantile_from_buckets(boundaries, counts, 0.50) == 0.01
        assert quantile_from_buckets(boundaries, counts, 0.95) == 1.0

    def test_quantile_empty_series_is_none(self):
        assert quantile_from_buckets([0.1], [0, 0], 0.5) is None

    def test_overflow_reports_highest_finite_boundary(self):
        assert quantile_from_buckets([0.1, 1.0], [0, 0, 4], 0.99) == 1.0

    def test_bucket_index_matches_observe(self):
        m = MetricsRegistry()
        h = m.histogram("h_seconds", buckets=DEFAULT_LATENCY_BUCKETS)
        for value in (0.0001, 0.001, 0.07, 42.0):
            h.observe(value)
            counts = m.to_dict()["h_seconds"]["series"][0]["counts"]
            assert counts[bucket_index(list(DEFAULT_LATENCY_BUCKETS), value)] >= 1


class TestPromRendering:
    def test_exposition_shape(self):
        m = MetricsRegistry()
        m.counter("reqs_total", "Requests", labels=("op",)).labels(op="a").inc(3)
        h = m.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_prom(m.to_dict())
        assert "# HELP reqs_total Requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{op="a"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        # Cumulated buckets, closed with +Inf, plus _sum/_count.
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_monotone(self):
        m = MetricsRegistry()
        h = m.histogram("h_seconds", buckets=(0.01, 0.1, 1.0), labels=("op",))
        for v in (0.005, 0.05, 0.5, 2.0, 0.05):
            h.labels(op="x").observe(v)
        last = -1
        for line in render_prom(m.to_dict()).splitlines():
            if line.startswith("h_seconds_bucket"):
                value = int(line.rsplit(" ", 1)[1])
                assert value >= last
                last = value
        assert last == 5

    def test_label_values_are_escaped(self):
        m = MetricsRegistry()
        m.counter("c_total", labels=("k",)).labels(k='a"b\\c\nd').inc()
        text = render_prom(m.to_dict())
        assert 'k="a\\"b\\\\c\\nd"' in text


class TestDigest:
    def _snapshot(self):
        m = MetricsRegistry()
        m.gauge("service_uptime_seconds").set(10.0)
        m.counter("service_requests_total", labels=("op",)).labels(op="optimize").inc(20)
        m.counter("service_errors_total", labels=("op",)).labels(op="optimize").inc(1)
        h = m.histogram(
            "service_request_seconds", buckets=(0.01, 0.1, 1.0), labels=("op", "code")
        )
        for _ in range(19):
            h.labels(op="optimize", code="ok").observe(0.05)
        h.labels(op="optimize", code="error").observe(0.5)
        m.counter("service_store_hits_total", labels=("path",)).labels(
            path="artifact"
        ).inc(15)
        m.counter("service_store_misses_total").inc(5)
        m.counter("service_faults_total", labels=("kind",)).labels(kind="crash").inc(2)
        m.gauge("service_slo_p99_seconds").set(0.25)
        m.gauge("service_slo_error_rate").set(0.01)
        return m.to_dict()

    def test_digest_numbers(self):
        d = digest(self._snapshot())
        assert d.requests == 20
        assert d.errors == 1
        assert d.req_per_s == pytest.approx(2.0)
        assert d.error_rate == pytest.approx(0.05)
        # ok-series only: the error observation (0.5s) must not move p99.
        assert d.p99_s == 0.1
        assert d.hit_rate == pytest.approx(0.75)
        assert d.faults == {"crash": 2}
        assert d.slo_p99_s == 0.25

    def test_render_digest_flags_slo_burn(self):
        text = render_digest(self._snapshot())
        assert "requests    20" in text
        # error rate 5% > 1% target -> burning; p99 100ms <= 250ms -> ok.
        assert "[BURNING]" in text and "[OK]" in text
        assert "cache" in text and "75.0% hit rate" in text


class TestPercentileCrosscheck:
    def _snapshot(self, op="optimize"):
        m = MetricsRegistry()
        h = m.histogram(
            "service_request_seconds", buckets=(0.01, 0.1, 1.0), labels=("op", "code")
        )
        for v in (0.005, 0.05, 0.05, 0.05):
            h.labels(op=op, code="ok").observe(v)
        # Scrape traffic on another op must not skew the comparison.
        h.labels(op="stats", code="ok").observe(0.0001)
        return m.to_dict()

    def test_agreement_within_one_bucket(self):
        from repro.service.loadgen import LatencySummary, percentile_crosscheck

        client = LatencySummary.from_samples([0.006, 0.04, 0.05, 0.06])
        daemon, check = percentile_crosscheck(client, self._snapshot(), op="optimize")
        assert daemon["count"] == 4
        assert daemon["p50_s"] == 0.1
        assert check["ok"]
        assert all(item["ok"] for item in check["quantiles"].values())

    def test_disagreement_is_flagged(self):
        from repro.service.loadgen import LatencySummary, percentile_crosscheck

        # Client thinks everything took seconds; daemon recorded tens of ms.
        client = LatencySummary.from_samples([3.0, 4.0, 5.0, 6.0])
        _, check = percentile_crosscheck(client, self._snapshot(), op="optimize")
        assert not check["ok"]

    def test_no_histogram_returns_none(self):
        from repro.service.loadgen import LatencySummary, percentile_crosscheck

        client = LatencySummary.from_samples([0.01])
        assert percentile_crosscheck(client, {}, op="optimize") == (None, None)
