"""Heap model and cache simulator unit tests."""

import pytest

from repro.runtime.cache import CacheConfig, CacheSimulator
from repro.runtime.heap import (
    ARRAY_HEADER,
    Heap,
    HeapError,
    MALLOC_ALIGN,
    MALLOC_HEADER,
    OBJECT_HEADER,
    SLOT_SIZE,
)


class TestHeapObjects:
    def test_alloc_and_field_roundtrip(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("x", "y"))
        heap.write_field(ref, "x", 41)
        value, _addr = heap.read_field(ref, "x")
        assert value == 41
        assert heap.read_field(ref, "y")[0] is None

    def test_field_addresses_are_slot_spaced(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("x", "y"))
        _, addr_x = heap.read_field(ref, "x")
        _, addr_y = heap.read_field(ref, "y")
        assert addr_x == ref.address + OBJECT_HEADER
        assert addr_y == addr_x + SLOT_SIZE

    def test_unknown_field(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("x",))
        with pytest.raises(HeapError):
            heap.read_field(ref, "nope")

    def test_distinct_addresses(self):
        heap = Heap()
        a = heap.alloc_object("P", ("x",))
        b = heap.alloc_object("P", ("x",))
        assert a.address != b.address

    def test_malloc_rounding_spacing(self):
        heap = Heap()
        a = heap.alloc_object("P", ("x",))  # 8 header + 8 = 16 (+8 malloc) -> 32
        b = heap.alloc_object("P", ("x",))
        block = OBJECT_HEADER + SLOT_SIZE + MALLOC_HEADER
        expected = (block + MALLOC_ALIGN - 1) // MALLOC_ALIGN * MALLOC_ALIGN
        assert b.address - a.address == expected

    def test_stack_allocation_region_is_disjoint(self):
        heap = Heap()
        heap_ref = heap.alloc_object("P", ("x",))
        stack_ref = heap.alloc_object("P", ("x",), on_stack=True)
        assert stack_ref.address >= Heap.STACK_BASE
        assert heap_ref.address < Heap.STACK_BASE
        heap.write_field(stack_ref, "x", 7)
        assert heap.read_field(stack_ref, "x")[0] == 7

    def test_indexed_fields(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("a", "d__0", "d__1", "d__2"))
        heap.write_field_indexed(ref, "d__0", 3, 2, "last")
        assert heap.read_field_indexed(ref, "d__0", 3, 2)[0] == "last"
        assert heap.read_field(ref, "d__2")[0] == "last"

    def test_indexed_field_bounds(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("d__0", "d__1"))
        with pytest.raises(HeapError):
            heap.read_field_indexed(ref, "d__0", 2, 2)
        with pytest.raises(HeapError):
            heap.read_field_indexed(ref, "d__0", 2, -1)

    def test_allocation_stats(self):
        heap = Heap()
        heap.alloc_object("A", ())
        heap.alloc_object("A", ("x",))
        heap.alloc_object("B", ())
        assert heap.stats.objects_allocated == 3
        assert heap.stats.allocations_by_class == {"A": 2, "B": 1}


class TestHeapArrays:
    def test_plain_array(self):
        heap = Heap()
        ref = heap.alloc_array(4)
        heap.write_element(ref, 2, "v")
        assert heap.read_element(ref, 2)[0] == "v"
        assert heap.array_length(ref) == 4

    def test_bounds_checks(self):
        heap = Heap()
        ref = heap.alloc_array(2)
        with pytest.raises(HeapError):
            heap.read_element(ref, 2)
        with pytest.raises(HeapError):
            heap.write_element(ref, -1, 0)
        with pytest.raises(HeapError):
            heap.read_element(ref, True)

    def test_negative_length(self):
        with pytest.raises(HeapError):
            Heap().alloc_array(-1)

    def test_inline_array_interleaved_layout(self):
        heap = Heap()
        ref = heap.alloc_array(3, "P", ("x", "y"), parallel=False)
        heap.write_inline_field(ref, 1, "y", 9)
        value, addr = heap.read_inline_field(ref, 1, "y")
        assert value == 9
        # AoS: element 1, field 1 -> slot index 1*2+1 = 3.
        assert addr == ref.address + ARRAY_HEADER + 3 * SLOT_SIZE

    def test_inline_array_parallel_layout(self):
        heap = Heap()
        ref = heap.alloc_array(3, "P", ("x", "y"), parallel=True)
        heap.write_inline_field(ref, 1, "y", 9)
        value, addr = heap.read_inline_field(ref, 1, "y")
        assert value == 9
        # SoA: field 1 starts at slot 3 (= length), element 1 -> slot 4.
        assert addr == ref.address + ARRAY_HEADER + 4 * SLOT_SIZE

    def test_inline_array_rejects_element_access(self):
        heap = Heap()
        ref = heap.alloc_array(2, "P", ("x",))
        with pytest.raises(HeapError):
            heap.read_element(ref, 0)

    def test_inline_array_unknown_field(self):
        heap = Heap()
        ref = heap.alloc_array(2, "P", ("x",))
        with pytest.raises(HeapError):
            heap.read_inline_field(ref, 0, "nope")

    def test_dangling_reference(self):
        heap_a = Heap()
        heap_b = Heap(base_address=0x900000)
        ref = heap_a.alloc_object("P", ())
        with pytest.raises(HeapError):
            heap_b.read_field(ref, "x")


class TestCacheConfig:
    def test_defaults_valid(self):
        config = CacheConfig()
        assert config.num_sets * config.line_bytes * config.associativity == config.size_bytes

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=32, associativity=4)
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=24)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestCacheBehavior:
    def test_first_access_misses_second_hits(self):
        cache = CacheSimulator()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True  # same line

    def test_different_lines_miss_independently(self):
        cache = CacheSimulator(CacheConfig(line_bytes=32, size_bytes=1024, associativity=2))
        assert cache.access(0) is False
        assert cache.access(32) is False

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=64, line_bytes=32, associativity=2)
        cache = CacheSimulator(config)  # one set, two ways
        cache.access(0)
        cache.access(64)
        cache.access(0)       # refresh line 0
        cache.access(128)     # evicts line 64 (LRU)
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_write_miss_allocates(self):
        cache = CacheSimulator()
        assert cache.access(0x2000, is_write=True) is False
        assert cache.access(0x2000) is True
        assert cache.stats.write_misses == 1

    def test_touch_range_counts_lines(self):
        cache = CacheSimulator()
        misses = cache.touch_range(0x4000, 100)  # spans 4 lines of 32B
        assert misses == 4
        assert cache.touch_range(0x4000, 100) == 0

    def test_touch_range_unaligned(self):
        cache = CacheSimulator()
        # 8 bytes starting 4 bytes before a line boundary touch 2 lines.
        assert cache.touch_range(32 * 100 - 4, 8) == 2

    def test_flush(self):
        cache = CacheSimulator()
        cache.access(0x1000)
        cache.flush()
        assert cache.access(0x1000) is False

    def test_flush_keeps_statistics(self):
        # flush() is a cold-cache boundary, not a counter reset: a
        # warmup -> measurement transition wants cumulative stats.
        cache = CacheSimulator()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.flush()
        assert cache.stats.reads == 2
        assert cache.stats.read_misses == 1

    def test_reset_stats_zeroes_in_place(self):
        cache = CacheSimulator()
        stats = cache.stats  # the alias ExecutionStats.cache would hold
        cache.access(0x1000, is_write=True)
        cache.access(0x2000)
        cache.reset_stats()
        assert cache.stats is stats  # never replaced, only zeroed
        assert stats.accesses == 0 and stats.misses == 0
        # Contents survive a stats reset: the line is still warm.
        assert cache.access(0x1000) is True
        assert stats.reads == 1 and stats.read_misses == 0

    def test_reset_stats_clears_attribution(self):
        cache = CacheSimulator()
        recorder = cache.enable_attribution()
        cache.access(0x1000, label=("field", "P", "x", None))
        assert recorder.by_label
        cache.reset_stats()
        assert cache.locality is recorder  # recorder kept, data cleared
        assert not recorder.by_label
        assert not recorder.bucket_accesses

    def test_miss_rate(self):
        cache = CacheSimulator()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
        assert CacheSimulator().stats.miss_rate == 0.0

    def test_touch_range_zero_size_touches_nothing(self):
        cache = CacheSimulator()
        assert cache.touch_range(0x4000, 0) == 0
        assert cache.touch_range(0x4000, -8) == 0
        assert cache.stats.accesses == 0

    def test_touch_range_smaller_than_line(self):
        cache = CacheSimulator()  # 32-byte lines
        assert cache.touch_range(0x4000, 1) == 1
        assert cache.stats.accesses == 1
        # Any other byte of the same line is now warm.
        assert cache.touch_range(0x4000 + 31, 1) == 0

    def test_touch_range_unaligned_start_crosses_boundary(self):
        cache = CacheSimulator()
        # 8 bytes starting 4 bytes before a line boundary: exactly the
        # two straddled lines are touched, both cold.
        assert cache.touch_range(32 * 100 - 4, 8) == 2
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 2
        # Re-touching the same span is all hits.
        assert cache.touch_range(32 * 100 - 4, 8) == 0
        assert cache.stats.misses == 2

    def test_touch_range_exact_line_counts(self):
        cache = CacheSimulator()
        # [0x4000, 0x4064): bytes 0..99 from an aligned start = 4 lines.
        assert cache.touch_range(0x4000, 100) == 4
        assert cache.stats.accesses == 4
        # One trailing byte into line 4 -> exactly one new line.
        assert cache.touch_range(0x4000, 129) == 1
        assert cache.stats.accesses == 9

    def test_sequential_scan_larger_than_cache_always_misses(self):
        config = CacheConfig(size_bytes=1024, line_bytes=32, associativity=2)
        cache = CacheSimulator(config)
        # Two passes over 4 KiB: LRU + sequential = every line misses twice.
        for _pass in range(2):
            for addr in range(0, 4096, 32):
                cache.access(addr)
        assert cache.stats.misses == 2 * 4096 // 32
