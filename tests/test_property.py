"""Property-based tests (hypothesis).

The headline property: for randomly generated programs, the object
inlining transformation preserves observable output exactly, in every
build configuration.  The generator produces container/child structures
deliberately shaped to sometimes inline and sometimes be rejected
(aliasing, nil stores, identity compares, reassignment).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.inlining.pipeline import optimize
from repro.ir import compile_source, validate_program
from repro.runtime import run_program
from repro.runtime.cache import CacheConfig, CacheSimulator

# ----------------------------------------------------------------------
# Random program generator.
#
# Programs follow a template: a child class with 1-3 int fields, a
# container class holding one child field, a driver loop creating
# containers and reading child state, plus optional "hazards" that should
# flip individual candidates to rejected without ever breaking
# equivalence.

_HAZARDS = (
    "none",
    "use_after_store",
    "store_nil_sometimes",
    "identity_compare",
    "reassign_field",
    "share_global",
)


@st.composite
def programs(draw):
    num_child_fields = draw(st.integers(min_value=1, max_value=3))
    loop_count = draw(st.integers(min_value=1, max_value=6))
    hazard = draw(st.sampled_from(_HAZARDS))
    use_array = draw(st.booleans())
    read_via_helper = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=99))

    fields = [f"f{i}" for i in range(num_child_fields)]
    lines = []
    lines.append("class Child {")
    for name in fields:
        lines.append(f"  var {name};")
    params = ", ".join(f"p{i}" for i in range(num_child_fields))
    lines.append(f"  def init({params}) {{")
    for index, name in enumerate(fields):
        lines.append(f"    this.{name} = p{index};")
    lines.append("  }")
    total = " + ".join(f"this.{name}" for name in fields)
    lines.append(f"  def total() {{ return {total}; }}")
    lines.append("}")

    lines.append("class Box { var kid; def init(k) { this.kid = k; } }")
    if hazard == "reassign_field":
        lines.append(
            "def swap(b, k) { b.kid = k; }"
        )
    if read_via_helper:
        lines.append("def peek(b) { return b.kid; }")
    if hazard == "share_global":
        lines.append("var shared = nil;")

    args = ", ".join(f"i + {seed + j}" for j in range(num_child_fields))
    lines.append("def main() {")
    lines.append("  var acc = 0;")
    if use_array:
        lines.append(f"  var slots = array({loop_count});")
    lines.append(f"  for (var i = 0; i < {loop_count}; i = i + 1) {{")
    lines.append(f"    var kid = new Child({args});")
    if hazard == "store_nil_sometimes":
        lines.append("    var payload = kid;")
        lines.append("    if (i % 2 == 0) { payload = nil; }")
        lines.append("    var b = new Box(payload);")
        lines.append("    if (b.kid != nil) { acc = acc + b.kid.total(); }")
    else:
        lines.append("    var b = new Box(kid);")
        if hazard == "use_after_store":
            lines.append("    acc = acc + kid.total();")
        if hazard == "share_global":
            lines.append("    shared = b.kid;")
        if hazard == "identity_compare":
            lines.append("    if (b.kid == b.kid) { acc = acc + 1; }")
        if hazard == "reassign_field":
            lines.append(f"    swap(b, new Child({args}));")
        if read_via_helper:
            lines.append("    acc = acc + peek(b).total();")
        else:
            lines.append("    acc = acc + b.kid.total();")
    if use_array:
        lines.append("    slots[i] = b;")
    lines.append("  }")
    if use_array:
        lines.append(f"  for (var j = 0; j < {loop_count}; j = j + 1) {{")
        lines.append("    var bx = slots[j];")
        lines.append("    if (bx.kid != nil) { acc = acc + bx.kid.total(); }")
        lines.append("  }")
    if hazard == "share_global":
        lines.append("  if (shared != nil) { acc = acc + shared.total(); }")
    lines.append("  print(acc);")
    lines.append("}")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=programs())
def test_optimization_preserves_output(source):
    program = compile_source(source)
    base = run_program(program)
    for kwargs in ({"inline": True}, {"inline": False}, {"manual_only": True}):
        report = optimize(program, **kwargs)
        validate_program(report.program)
        result = run_program(report.program)
        assert result.output == base.output, (kwargs, source)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=programs())
def test_optimized_program_revalidates(source):
    report = optimize(compile_source(source))
    validate_program(report.program)
    # Accepted candidates and rejected candidates partition all candidates.
    plan = report.plan
    assert len(plan.accepted()) + len(plan.rejected()) == len(plan.candidates)


# ----------------------------------------------------------------------
# Expression-level semantics: lowering + VM vs a Python oracle.


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(st.integers(min_value=-30, max_value=30)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    return f"({left} {op} {right})"


@settings(max_examples=80, deadline=None)
@given(expr=int_exprs())
def test_integer_arithmetic_matches_python(expr):
    result = run_program(compile_source(f"def main() {{ print({expr}); }}"))
    assert result.output == [str(eval(expr))]


# ----------------------------------------------------------------------
# Cache simulator properties.


@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200)
)
def test_cache_hit_plus_miss_equals_accesses(addresses):
    cache = CacheSimulator(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.accesses == len(addresses)
    assert 0 <= stats.misses <= stats.accesses

@settings(max_examples=50, deadline=None)
@given(
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=100)
)
def test_cache_repeat_run_is_deterministic(addresses):
    def run():
        cache = CacheSimulator(CacheConfig(size_bytes=512, line_bytes=32, associativity=1))
        for address in addresses:
            cache.access(address)
        return cache.stats.misses

    assert run() == run()


@settings(max_examples=50, deadline=None)
@given(address=st.integers(min_value=0, max_value=1 << 20))
def test_cache_immediate_rereference_hits(address):
    cache = CacheSimulator()
    cache.access(address)
    assert cache.access(address) is True


# ----------------------------------------------------------------------
# Nested (multi-round) inlining equivalence.


@st.composite
def nested_programs(draw):
    depth = draw(st.integers(min_value=2, max_value=4))
    loop_count = draw(st.integers(min_value=1, max_value=5))
    reuse_middle = draw(st.booleans())  # hazard: alias a middle level
    seed = draw(st.integers(min_value=0, max_value=20))

    lines = ["class L0 { var v; def init(v) { this.v = v; } }"]
    for level in range(1, depth + 1):
        lines.append(
            f"class L{level} {{ var inner; "
            f"def init(i) {{ this.inner = i; }} }}"
        )
    chain = f"new L0(i + {seed})"
    for level in range(1, depth + 1):
        chain = f"new L{level}({chain})"
    access = "o" + ".inner" * depth + ".v"
    lines.append("def main() {")
    lines.append("  var acc = 0;")
    lines.append(f"  for (var i = 0; i < {loop_count}; i = i + 1) {{")
    lines.append(f"    var o = {chain};")
    if reuse_middle:
        lines.append("    var mid = o.inner;")
        lines.append("    acc = acc + mid" + ".inner" * (depth - 1) + ".v;")
    lines.append(f"    acc = acc + {access};")
    lines.append("  }")
    lines.append("  print(acc);")
    lines.append("}")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=nested_programs())
def test_multi_round_inlining_preserves_output(source):
    program = compile_source(source)
    base = run_program(program)
    for rounds in (1, 3, 6):
        report = optimize(program, max_rounds=rounds)
        validate_program(report.program)
        result = run_program(report.program)
        assert result.output == base.output, (rounds, source)
