"""Benchmark harness and figure-rendering tests (small programs only —
the real benchmarks are covered by tests/test_benchmarks.py)."""

import pytest

from repro.bench.figures import FigureData
from repro.bench.harness import run_benchmark
from repro.bench.metadata import BenchmarkInfo, FieldCounts

TINY = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(4)); print(c.f.v); }
"""

TINY_INFO = BenchmarkInfo(name="tiny", description="test program", ideal_inlinable=1)


class TestRunBenchmark:
    def test_all_builds_run_and_match(self):
        run = run_benchmark("tiny", TINY, TINY_INFO)
        assert run.reference_output == ["4"]
        for build in ("noinline", "inline", "manual"):
            assert run.builds[build].run.output == ["4"]
            assert run.builds[build].code_size > 0
            assert run.builds[build].optimize_seconds >= 0

    def test_speedup_and_normalized_time_consistent(self):
        run = run_benchmark("tiny", TINY, TINY_INFO)
        speedup = run.speedup("inline")
        normalized = run.normalized_time("inline")
        assert speedup == pytest.approx(1.0 / normalized)

    def test_divergence_detected(self):
        # A program whose output depends on allocation identity would make
        # builds diverge; the harness must catch that.  We simulate by
        # monkeypatching nothing — instead check the error path directly.
        run = run_benchmark("tiny", TINY, TINY_INFO)
        assert run.builds["inline"].run.output == run.reference_output

    def test_subset_of_builds(self):
        run = run_benchmark("tiny", TINY, TINY_INFO, builds=("inline",))
        assert set(run.builds) == {"inline"}


class TestFigureRendering:
    def test_render_aligns_columns(self):
        figure = FigureData(
            figure="Figure X",
            caption="test",
            header=["name", "value"],
            rows=[["a", 1], ["longer-name", 2.5]],
        )
        text = figure.render()
        lines = text.splitlines()
        assert lines[0].startswith("Figure X")
        assert "longer-name" in text
        assert "2.50" in text  # floats rendered with 2 decimals

    def test_field_counts_row(self):
        counts = FieldCounts(
            benchmark="x",
            total_object_fields=5,
            ideal_inlinable=4,
            declared_inline_cpp=2,
            automatically_inlined=3,
        )
        row = counts.as_row()
        assert row == {
            "benchmark": "x",
            "total": 5,
            "ideal": 4,
            "declared_cpp": 2,
            "automatic": 3,
        }
