"""Class-cloning (VariantMap) unit tests."""

from repro.analysis import analyze
from repro.cloning.variants import VariantMap, mangle, mangle_indexed
from repro.inlining.decisions import DecisionEngine
from repro.ir import compile_source

from conftest import RECTANGLE_SOURCE


def variants_for(source):
    program = compile_source(source)
    result = analyze(program)
    plan = DecisionEngine(result).plan()
    return VariantMap(result, plan), result, plan


class TestMangling:
    def test_mangle(self):
        assert mangle("lower_left", "x_pos") == "lower_left__x_pos"

    def test_mangle_indexed(self):
        assert mangle_indexed("data", 3) == "data__3"

    def test_mangles_are_distinct_per_field(self):
        assert mangle("a", "x") != mangle("b", "x")
        assert mangle("a", "x") != mangle("a", "y")


class TestVariantCreation:
    def test_one_variant_per_child_class(self):
        variant_map, result, plan = variants_for(RECTANGLE_SOURCE)
        rect_variants = [
            info for info in variant_map.variants.values()
            if info.source_class == "Rectangle"
        ]
        assert len(rect_variants) == 2

    def test_unaffected_class_keeps_name(self):
        variant_map, result, plan = variants_for(RECTANGLE_SOURCE)
        for contour in result.manager.object_contours.values():
            if contour.class_name == "List":
                assert variant_map.variant_name(contour.id) == "List"

    def test_affected_contours_map_to_variants(self):
        variant_map, result, plan = variants_for(RECTANGLE_SOURCE)
        for contour in result.manager.object_contours.values():
            if contour.class_name == "Rectangle":
                assert variant_map.variant_name(contour.id).startswith("Rectangle$")

    def test_subclass_variant_links_to_parent_variant(self):
        source = """
class P { var v; def init(v) { this.v = v; } }
class Base { var f; def init(p) { this.f = p; } }
class Derived : Base { var extra; }
def main() {
  var b = new Base(new P(1));
  var d = new Derived(new P(2));
  print(b.f.v + d.f.v);
}
"""
        variant_map, result, plan = variants_for(source)
        derived = next(
            info for info in variant_map.variants.values()
            if info.source_class == "Derived"
        )
        assert derived.parent is not None
        assert variant_map.variants[derived.parent].source_class == "Base"

    def test_emit_classes_layout(self):
        variant_map, result, plan = variants_for(RECTANGLE_SOURCE)
        emitted = {}
        variant_map.emit_classes(emitted)
        variant = next(
            cls for cls in emitted.values()
            if cls.source_name == "Rectangle"
        )
        # First child field replaces the slot; remaining fields appended.
        assert variant.fields[0].startswith("lower_left__")
        assert variant.fields[1].startswith("upper_right__")
        assert "lower_left" not in variant.fields
        assert "upper_right" not in variant.fields

    def test_point3d_variant_has_extra_state(self):
        variant_map, result, plan = variants_for(RECTANGLE_SOURCE)
        emitted = {}
        variant_map.emit_classes(emitted)
        field_sets = [
            set(cls.fields) for cls in emitted.values()
            if cls.source_name == "Rectangle"
        ]
        with_z = [fs for fs in field_sets if mangle("lower_left", "z_pos") in fs]
        without_z = [fs for fs in field_sets if mangle("lower_left", "z_pos") not in fs]
        assert len(with_z) == 1 and len(without_z) == 1

    def test_view_class_registration(self):
        source = """
class P { var v; def init(v) { this.v = v; } }
def main() {
  var a = array(3);
  for (var i = 0; i < 3; i = i + 1) { a[i] = new P(i); }
  var t = 0;
  for (var j = 0; j < 3; j = j + 1) { t = t + a[j].v; }
  print(t);
}
"""
        variant_map, result, plan = variants_for(source)
        assert len(variant_map.view_classes) == 1
        (info,) = variant_map.view_classes.values()
        assert info.element_class == "P"
        assert "@elem" in info.name

    def test_no_variants_without_accepted_candidates(self):
        source = "class A { var x; } def main() { print(new A().x); }"
        variant_map, _result, _plan = variants_for(source)
        assert variant_map.variants == {}
        assert variant_map.changed_classes() == set()
