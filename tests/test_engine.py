"""Flow analysis engine tests: the paper's Figures 6-9 behaviours."""

from repro.analysis import (
    ELEM_FIELD,
    AnalysisConfig,
    SENSITIVITY_CONCERT,
    analyze,
)
from repro.analysis.tags import head
from repro.ir import compile_source

from conftest import RECTANGLE_SOURCE


def analyze_source(source, config=None):
    return analyze(compile_source(source), config)


def contours_of(result, name):
    return result.contours_of(name)


def slots_by_class_field(result):
    table = {}
    for (cid, field_name), value in result.slots.items():
        contour = result.object_contour(cid)
        table.setdefault((contour.class_name, field_name), []).append(value)
    return table


class TestTypeInference:
    def test_fields_get_concrete_types(self):
        result = analyze_source(
            "class P { var x; def init(v) { this.x = v; } }\n"
            "def main() { var p = new P(1.5); print(p.x); }"
        )
        slots = slots_by_class_field(result)
        (value,) = slots[("P", "x")]
        assert value.prims() == {"float"}

    def test_polymorphic_field_split_by_creator(self):
        """Figure 7: two Rectangle creation contexts yield two object
        contours with precise (unmixed) field types."""
        result = analyze_source(RECTANGLE_SOURCE)
        slots = slots_by_class_field(result)
        contents = slots[("Rectangle", "lower_left")]
        assert len(contents) == 2
        classes = set()
        for value in contents:
            names = {
                result.object_contour(c).class_name for c in value.object_contours()
            }
            assert len(names) == 1  # each contour's field is monomorphic
            classes |= names
        assert classes == {"Point", "Point3D"}

    def test_do_rectangle_split_by_argument_types(self):
        """Figure 6: the two calls to do_rectangle carry different argument
        types and get distinct contours."""
        result = analyze_source(RECTANGLE_SOURCE)
        assert len(contours_of(result, "do_rectangle")) == 2

    def test_call_confluence_split(self):
        """Figure 8: abs is called on values with different tags, so the
        contours stay apart."""
        result = analyze_source(RECTANGLE_SOURCE)
        abs_contours = contours_of(result, "Point::abs")
        heads = []
        for contour in abs_contours:
            recv = contour.arg_values[0]
            heads.append({head(t) for t in recv.tags})
        # No contour mixes lower_left-headed and upper_right-headed tags.
        for tag_heads in heads:
            fields = {h[1] for h in tag_heads if h is not None}
            assert len(fields) <= 1

    def test_field_confluence_split(self):
        """Figure 9: the two List creations hold differently-tagged points
        in distinct object contours."""
        result = analyze_source(RECTANGLE_SOURCE)
        slots = slots_by_class_field(result)
        contents = slots[("List", "head_item")]
        assert len(contents) == 4  # 2 sites x 2 do_rectangle contexts
        for value in contents:
            fields = {t[0][1] for t in value.tags if t}
            assert len(fields) == 1  # never lower_left and upper_right mixed

    def test_return_values_flow(self):
        result = analyze_source(
            "class P { }\n"
            "def make() { return new P(); }\n"
            "def main() { var p = make(); print(p == nil); }"
        )
        (main_contour,) = contours_of(result, "main")
        # The identity site records P contours flowing out of make().
        assert result.identity_sites
        lhs = result.identity_sites[0].lhs
        names = {result.object_contour(c).class_name for c in lhs.object_contours()}
        assert names == {"P"}

    def test_globals_tracked(self):
        result = analyze_source(
            "var g = nil;\n"
            "class P { }\n"
            "def main() { g = new P(); print(g == nil); }"
        )
        value = result.global_values["g"]
        assert value.may_be_nil()
        assert value.may_be_object()


class TestTags:
    def test_new_objects_are_nofield(self):
        result = analyze_source("class P { } def main() { var p = new P(); print(p); }")
        (main_contour,) = contours_of(result, "main")
        # Find the recorded store-free value via slots: none; check through
        # facts on the print call is unavailable, so check via identity of
        # allocations: the allocation exists.
        assert result.allocations[main_contour.id]

    def test_field_read_gets_maketag(self):
        result = analyze_source(
            "class B { var f; def init(v) { this.f = v; } }\n"
            "class P { }\n"
            "def use(x) { return x; }\n"
            "def main() { var b = new B(new P()); use(b.f); }"
        )
        (use_contour,) = contours_of(result, "use")
        arg = use_contour.arg_values[0]
        heads = {head(t) for t in arg.tags}
        assert all(h is not None and h[1] == "f" for h in heads)

    def test_array_reads_tagged_with_elem(self):
        result = analyze_source(
            "class P { }\n"
            "def use(x) { return x; }\n"
            "def main() { var a = array(2); a[0] = new P(); use(a[0]); }"
        )
        (use_contour,) = contours_of(result, "use")
        arg = use_contour.arg_values[0]
        assert {head(t)[1] for t in arg.tags} == {ELEM_FIELD}

    def test_stored_content_tags_live_in_slots(self):
        """The List example: the slot records that its content came from
        Rectangle.lower_left (resolution uses this, per §4.1)."""
        result = analyze_source(RECTANGLE_SOURCE)
        slots = slots_by_class_field(result)
        for value in slots[("List", "head_item")]:
            assert all(t and t[0][1] in ("lower_left", "upper_right") for t in value.tags)


class TestSensitivityModes:
    def test_concert_mode_has_fewer_or_equal_contours(self):
        precise = analyze_source(RECTANGLE_SOURCE)
        baseline = analyze_source(
            RECTANGLE_SOURCE, AnalysisConfig(sensitivity=SENSITIVITY_CONCERT)
        )
        assert baseline.method_contour_count() <= precise.method_contour_count()

    def test_recursion_converges(self):
        result = analyze_source(
            "class Cons { var v; var next; def init(v, n) { this.v = v; this.next = n; } }\n"
            "def build(n) { if (n == 0) return nil; return new Cons(n, build(n - 1)); }\n"
            "def total(l) { if (l == nil) return 0; return l.v + total(l.next); }\n"
            "def main() { print(total(build(5))); }"
        )
        assert result.method_contour_count() > 0

    def test_widening_caps_contour_explosion(self):
        # A chain of distinctly-typed wrappers forces many signatures for
        # `wrap`; tiny caps must widen instead of diverging.
        lines = ["class W { var v; def init(v) { this.v = v; } }"]
        lines.append("def wrap(x) { return new W(x); }")
        body = ["var x0 = wrap(1);"]
        for index in range(1, 12):
            body.append(f"var x{index} = wrap(x{index - 1});")
        lines.append("def main() { " + " ".join(body) + " print(1); }")
        config = AnalysisConfig(
            max_method_contours_per_callable=3, max_object_contours_per_site=3
        )
        result = analyze("\n".join(lines) and compile_source("\n".join(lines)), config)
        assert result.manager.widened_callables or result.manager.widened_sites

    def test_unreachable_code_not_analyzed(self):
        result = analyze_source(
            "def dead() { return 1; }\n"
            "def main() { print(2); }"
        )
        assert not contours_of(result, "dead")
