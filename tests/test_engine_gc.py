"""Analysis-engine robustness: GC/retirement, gating, convergence."""

from repro.analysis import AnalysisConfig, analyze
from repro.analysis.engine import AnalysisBudgetExceeded, FlowAnalysis
from repro.ir import compile_source

import pytest

from conftest import check_equivalence


def build_wrapper_tower(depth):
    """A chain of wrap() calls whose argument signatures keep growing —
    the signature-churn pattern that strands stale contours."""
    lines = ["class W { var v; def init(v) { this.v = v; } }"]
    lines.append("def wrap(x) { return new W(x); }")
    body = ["var x0 = wrap(1);"]
    for index in range(1, depth):
        body.append(f"var x{index} = wrap(x{index - 1});")
    lines.append("def main() { " + " ".join(body) + " print(1); }")
    return "\n".join(lines)


class TestContourGC:
    def test_stale_contours_pruned_from_results(self):
        result = analyze(compile_source(build_wrapper_tower(8)))
        # After the final prune, every surviving contour is reachable from
        # the entries; none is marked retired.
        for contour in result.manager.method_contours.values():
            assert not contour.retired

    def test_gc_avoids_spurious_widening(self):
        # Signature churn creates many short-lived wrap contours; with GC
        # the live count stays under the cap and nothing widens.
        config = AnalysisConfig(
            max_method_contours_per_callable=12,
            max_object_contours_per_site=12,
        )
        result = analyze(compile_source(build_wrapper_tower(8)), config)
        assert not result.manager.widened_callables
        assert not result.manager.widened_sites

    def test_tiny_caps_still_converge(self):
        config = AnalysisConfig(
            max_method_contours_per_callable=2,
            max_object_contours_per_site=2,
        )
        result = analyze(compile_source(build_wrapper_tower(10)), config)
        assert result.method_contour_count() > 0

    def test_budget_cap_raises(self):
        config = AnalysisConfig(max_worklist_steps=3)
        with pytest.raises(AnalysisBudgetExceeded):
            FlowAnalysis(
                compile_source(build_wrapper_tower(6)), config
            ).run()

    def test_optimize_still_correct_under_widening(self):
        """With aggressive widening the optimizer must reject candidates,
        never miscompile."""
        config = AnalysisConfig(
            max_method_contours_per_callable=2,
            max_object_contours_per_site=2,
        )
        check_equivalence(build_wrapper_tower(10), config=config)


class TestTagGate:
    def test_gate_blocks_cross_dispatch_tag_bleed(self):
        """Tags must not follow a dispatch a value cannot take: the A-side
        field tag must not reach the B-side contour."""
        source = """
class P { var v; def init(v) { this.v = v; } }
class A { var fa; def init(p) { this.fa = p; } def get() { return this.fa; } }
class B { var fb; def init(p) { this.fb = p; } def get() { return this.fb; } }
def main() {
  var a = new A(new P(1));
  var b = new B(new P(2));
  print(a.get().v + b.get().v);
}
"""
        result = analyze(compile_source(source))
        for contour in result.contours_of("A::get"):
            ret_heads = {t[0][1] for t in contour.ret.tags if t}
            assert "fb" not in ret_heads
        for contour in result.contours_of("B::get"):
            ret_heads = {t[0][1] for t in contour.ret.tags if t}
            assert "fa" not in ret_heads

    def test_both_fields_inline_despite_shared_getter_shape(self):
        source = """
class P { var v; def init(v) { this.v = v; } }
class A { var fa; def init(p) { this.fa = p; } def get() { return this.fa; } }
class B { var fb; def init(p) { this.fb = p; } def get() { return this.fb; } }
def main() {
  var a = new A(new P(1));
  var b = new B(new P(2));
  print(a.get().v + b.get().v);
}
"""
        _, _, report = check_equivalence(source)
        accepted = {c.describe() for c in report.plan.accepted()}
        assert {"A.fa", "B.fb"} <= accepted


class TestMutualRecursion:
    def test_mutually_recursive_functions_converge(self):
        source = """
def is_even(n) { if (n == 0) { return true; } return is_odd(n - 1); }
def is_odd(n) { if (n == 0) { return false; } return is_even(n - 1); }
def main() { print(is_even(10), is_odd(10)); }
"""
        base, opt, _ = check_equivalence(source)
        assert base.output == ["true false"]

    def test_recursive_data_plus_recursion_converges(self):
        source = """
class Node { var v; var kids; def init(v, kids) { this.v = v; this.kids = kids; } }
def total(n) {
  if (n == nil) { return 0; }
  var t = n.v;
  var a = n.kids;
  if (a != nil) {
    for (var i = 0; i < len(a); i = i + 1) { t = t + total(a[i]); }
  }
  return t;
}
def main() {
  var leaves = array(2);
  leaves[0] = new Node(1, nil);
  leaves[1] = new Node(2, nil);
  var root = new Node(10, leaves);
  print(total(root));
}
"""
        base, _, _ = check_equivalence(source)
        assert base.output == ["13"]
