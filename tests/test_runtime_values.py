"""Runtime value representation and cost-model unit tests."""

from repro.runtime.costmodel import CostModel, ExecutionStats
from repro.runtime.values import (
    ArrayRef,
    ObjectRef,
    ViewRef,
    format_value,
    is_truthy,
)


class TestTruthiness:
    def test_falsy_values(self):
        for value in (None, False, 0, 0.0, ""):
            assert not is_truthy(value), value

    def test_truthy_values(self):
        for value in (True, 1, -1, 0.5, "x", ObjectRef(0x10, "A"), ArrayRef(0x20, 0)):
            assert is_truthy(value), value

    def test_empty_array_is_truthy(self):
        # Arrays are references: even a zero-length array is a real object.
        assert is_truthy(ArrayRef(0x20, 0))


class TestFormatting:
    def test_primitives(self):
        assert format_value(None) == "nil"
        assert format_value(True) == "true"
        assert format_value(False) == "false"
        assert format_value(7) == "7"
        assert format_value("s") == "s"

    def test_float_formatting_is_stable(self):
        assert format_value(2.5) == "2.5"
        assert format_value(1.0) == "1"
        assert format_value(1.0 / 3.0) == "0.333333"

    def test_objects_render_opaquely(self):
        """Class names change across builds (variants/views); formatting
        must not leak them or output equivalence breaks."""
        assert format_value(ObjectRef(0x10, "Rectangle")) == "<object>"
        assert format_value(ObjectRef(0x10, "Rectangle$1")) == "<object>"
        array = ArrayRef(0x20, 4, inline_layout="P@elem3")
        view = ViewRef(array, 2, "P@elem3")
        assert format_value(view) == "<object>"

    def test_array_renders_length_only(self):
        assert format_value(ArrayRef(0x20, 4)) == "<array[4]>"
        assert format_value(ArrayRef(0x20, 4, "P@elem3")) == "<array[4]>"


class TestReferenceIdentity:
    def test_object_refs_compare_by_address(self):
        a = ObjectRef(0x10, "A")
        b = ObjectRef(0x10, "A")
        c = ObjectRef(0x18, "A")
        assert a == b
        assert a != c

    def test_view_refs_compare_by_slot(self):
        array = ArrayRef(0x20, 4, "P")
        assert ViewRef(array, 1, "P") == ViewRef(array, 1, "P")
        assert ViewRef(array, 1, "P") != ViewRef(array, 2, "P")


class TestCostModel:
    def test_zero_stats_zero_cycles(self):
        assert ExecutionStats().cycles() == 0

    def test_each_component_charged(self):
        model = CostModel()
        stats = ExecutionStats()
        stats.instructions = 10
        assert stats.cycles(model) == 10 * model.base_instr

        stats = ExecutionStats()
        stats.allocations = 2
        assert stats.cycles(model) == 2 * model.alloc_base

        stats = ExecutionStats()
        stats.stack_allocations = 3
        assert stats.cycles(model) == 3 * model.stack_alloc

        stats = ExecutionStats()
        stats.dynamic_dispatches = 5
        assert stats.cycles(model) == 5 * model.dynamic_dispatch

    def test_stack_allocation_far_cheaper_than_heap(self):
        model = CostModel()
        assert model.stack_alloc * 10 < model.alloc_base

    def test_cache_misses_charged(self):
        stats = ExecutionStats()
        stats.cache.reads = 4
        stats.cache.read_misses = 2
        model = CostModel()
        assert stats.cycles(model) == 2 * model.miss_penalty

    def test_custom_model(self):
        stats = ExecutionStats()
        stats.heap_reads = 7
        assert stats.cycles(CostModel(mem_access=5)) == 35

    def test_summary_keys(self):
        summary = ExecutionStats().summary()
        for key in ("instructions", "allocations", "stack_allocations",
                    "cache_misses", "cycles", "cache_miss_rate"):
            assert key in summary
