"""End-to-end transformation tests.

The backbone invariant — identical observable output before and after the
optimization — is checked on a battery of programs exercising each rewrite
(field elision/renaming, copy expansion, class variants, element views,
embedded arrays, stack allocation, devirtualization).
"""

import pytest

from repro.cloning.variants import mangle, mangle_indexed
from repro.ir import model as ir
from repro.runtime import run_program

from conftest import RECTANGLE_SOURCE, check_equivalence


class TestRunningExample:
    def test_output_equivalence(self):
        base, opt, report = check_equivalence(RECTANGLE_SOURCE)
        assert len(report.plan.accepted()) == 2

    def test_class_variants_created(self):
        _, _, report = check_equivalence(RECTANGLE_SOURCE)
        variants = [
            name for name, cls in report.program.classes.items()
            if cls.source_name == "Rectangle" and name != "Rectangle"
        ]
        assert len(variants) == 2  # Point-holding and Point3D-holding

    def test_layout_rule(self):
        """§5.2: the child's first field replaces the inlined slot; the
        rest are appended at the end of the container's own segment."""
        _, _, report = check_equivalence(RECTANGLE_SOURCE)
        for name, cls in report.program.classes.items():
            if cls.source_name != "Rectangle" or name == "Rectangle":
                continue
            fields = cls.fields
            assert fields[0] == mangle("lower_left", "x_pos")
            assert fields[1] == mangle("upper_right", "x_pos")
            assert mangle("lower_left", "y_pos") in fields[2:]
            assert "lower_left" not in fields

    def test_inlined_state_metadata(self):
        _, _, report = check_equivalence(RECTANGLE_SOURCE)
        variant = next(
            cls for name, cls in report.program.classes.items()
            if cls.source_name == "Rectangle" and name != "Rectangle"
        )
        info = variant.inlined_state["lower_left"]
        assert info.container_field("x_pos") == mangle("lower_left", "x_pos")

    def test_allocations_become_stack(self):
        # Inlining alone (escape stage ablated): the four points become
        # stack temps copied into their rectangles.
        base, opt, _ = check_equivalence(RECTANGLE_SOURCE, escape_pass=False)
        assert opt.stats.stack_allocations >= 4  # the four points
        assert opt.stats.allocations < base.stats.allocations

    def test_escape_stage_goes_further(self):
        # The full pipeline scalar-replaces the point temps and moves
        # the non-escaping rectangles into the frame region.
        base, opt, _ = check_equivalence(RECTANGLE_SOURCE)
        assert opt.stats.stack_allocations == 0
        assert opt.stats.frame_allocations >= 1
        assert opt.stats.allocations < base.stats.allocations

    def test_dereferences_reduced(self):
        base, opt, _ = check_equivalence(RECTANGLE_SOURCE)
        assert opt.stats.dynamic_dispatches <= base.stats.dynamic_dispatches


class TestFieldInlining:
    def test_simple_field(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() { var c = new C(new P(42)); print(c.f.v); }"
        )

    def test_mutation_through_view(self):
        base, opt, report = check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() {\n"
            "  var c = new C(new P(1));\n"
            "  var p = c.f;\n"
            "  p.v = 99;\n"
            "  print(c.f.v, p.v);\n"
            "}"
        )
        assert base.output == ["99 99"]
        assert report.plan.accepted()

    def test_method_call_on_inlined_value(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } def dbl() { return this.v * 2; } }\n"
            "class C { var f; def init(p) { this.f = p; } def go() { return this.f.dbl(); } }\n"
            "def main() { print(new C(new P(21)).go()); }"
        )

    def test_inlined_value_through_wrapper(self):
        """The head(l) pattern: reads through an uninlined container must
        statically bind to the container clone."""
        base, opt, report = check_equivalence(RECTANGLE_SOURCE)
        assert base.output == opt.output

    def test_nested_containers_one_level_only(self):
        base, opt, report = check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class Mid { var p; def init(p) { this.p = p; } }\n"
            "class Outer { var m; def init(m) { this.m = m; } }\n"
            "def main() {\n"
            "  var o = new Outer(new Mid(new P(7)));\n"
            "  print(o.m.p.v);\n"
            "}"
        )
        accepted = {c.describe() for c in report.plan.accepted()}
        # One level inlines (the outer); the nested inner is deferred.
        assert "Outer.m" in accepted
        assert "Mid.p" not in accepted

    def test_deep_inheritance_variants(self):
        check_equivalence(
            "class R { var v; def init(v) { this.v = v; } }\n"
            "class A { var f; def init(r) { this.f = r; } def get() { return this.f.v; } }\n"
            "class B : A { var extra; }\n"
            "def main() {\n"
            "  var a = new A(new R(1));\n"
            "  var b = new B(new R(2));\n"
            "  print(a.get() + b.get());\n"
            "}"
        )

    def test_super_calls_in_variants(self):
        check_equivalence(
            "class R { var v; def init(v) { this.v = v; } }\n"
            "class A { var f; def init(r) { this.f = r; } def m() { return this.f.v; } }\n"
            "class B : A { def m() { return super.m() + 10; } }\n"
            "def main() { print(new B(new R(5)).m()); }"
        )


class TestArrayInlining:
    SOURCE = (
        "class P { var x; var y; def init(x, y) { this.x = x; this.y = y; }\n"
        "  def total() { return this.x + this.y; } }\n"
        "def main() {\n"
        "  var a = array(5);\n"
        "  for (var i = 0; i < 5; i = i + 1) { a[i] = new P(i, i * 10); }\n"
        "  var t = 0;\n"
        "  for (var j = 0; j < 5; j = j + 1) { t = t + a[j].total(); }\n"
        "  print(t, len(a));\n"
        "}"
    )

    def test_element_views(self):
        base, opt, report = check_equivalence(self.SOURCE)
        accepted = {c.kind for c in report.plan.accepted()}
        assert "array" in accepted
        assert any(
            isinstance(i, ir.MakeView)
            for c in report.program.callables()
            for i in c.instructions()
        )

    def test_element_allocation_elided(self):
        # Inlining alone: the five elements become stack temps copied
        # into the inline array.
        base, opt, _ = check_equivalence(self.SOURCE, escape_pass=False)
        assert opt.stats.allocations < base.stats.allocations
        assert opt.stats.stack_allocations == 5

    def test_escape_stage_dissolves_the_element_temps(self):
        base, opt, _ = check_equivalence(self.SOURCE)
        assert opt.stats.allocations < base.stats.allocations
        assert opt.stats.stack_allocations == 0

    def test_view_mutation(self):
        check_equivalence(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() {\n"
            "  var a = array(3);\n"
            "  for (var i = 0; i < 3; i = i + 1) { a[i] = new P(0); }\n"
            "  var p = a[1];\n"
            "  p.x = 7;\n"
            "  var q = a[1];\n"
            "  print(q.x);\n"
            "}"
        )

    def test_views_stored_in_other_structures(self):
        """Views are first-class: storing one in a plain field must work."""
        check_equivalence(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "class Holder { var item; def init(i) { this.item = i; } }\n"
            "def main() {\n"
            "  var a = array(2);\n"
            "  a[0] = new P(5);\n"
            "  a[1] = new P(6);\n"
            "  var h = new Holder(a[0]);\n"
            "  print(h.item.x);\n"
            "}"
        )

    def test_slot_overwrite_by_value(self):
        check_equivalence(
            "class P { var x; def init(x) { this.x = x; } }\n"
            "def main() {\n"
            "  var a = array(2);\n"
            "  a[0] = new P(1);\n"
            "  a[1] = new P(2);\n"
            "  a[0] = new P(100);\n"
            "  print(a[0].x, a[1].x);\n"
            "}"
        )


class TestEmbeddedArrays:
    SOURCE = (
        "class C { var tag; var d;\n"
        "  def init(tag) {\n"
        "    this.tag = tag;\n"
        "    var a = array(4);\n"
        "    for (var i = 0; i < 4; i = i + 1) { a[i] = i * i; }\n"
        "    this.d = a;\n"
        "  }\n"
        "  def sum() {\n"
        "    var a = this.d; var t = 0;\n"
        "    for (var i = 0; i < len(a); i = i + 1) { t = t + a[i]; }\n"
        "    return t;\n"
        "  }\n"
        "  def poke(i, v) { var a = this.d; a[i] = v; }\n"
        "}\n"
        "def main() {\n"
        "  var c = new C(9);\n"
        "  c.poke(0, 100);\n"
        "  print(c.sum(), c.tag);\n"
        "}"
    )

    def test_embedded_array_equivalence(self):
        base, opt, report = check_equivalence(self.SOURCE)
        assert "C.d" in {c.describe() for c in report.plan.accepted()}

    def test_embedded_slots_in_layout(self):
        _, _, report = check_equivalence(self.SOURCE)
        variant = next(
            cls for name, cls in report.program.classes.items()
            if cls.source_name == "C" and name != "C"
        )
        assert mangle_indexed("d", 0) in variant.fields
        assert mangle_indexed("d", 3) in variant.fields

    def test_indexed_instructions_emitted(self):
        _, _, report = check_equivalence(self.SOURCE)
        kinds = {
            type(i).__name__
            for c in report.program.callables()
            for i in c.instructions()
        }
        assert "GetFieldIndexed" in kinds
        assert "SetFieldIndexed" in kinds

    def test_len_becomes_constant(self):
        _, _, report = check_equivalence(self.SOURCE)
        variant = next(
            cls for name, cls in report.program.classes.items()
            if cls.source_name == "C" and name != "C"
        )
        sum_clone = variant.methods["sum"]
        assert not any(
            isinstance(i, ir.ArrayLen) for i in sum_clone.instructions()
        )
        assert any(
            isinstance(i, ir.Const) and i.value == 4
            for i in sum_clone.instructions()
        )


class TestDevirtualization:
    def test_monomorphic_send_static(self):
        base, opt, _ = check_equivalence(
            "class A { def m() { return 3; } }\n"
            "def main() { var a = new A(); print(a.m()); }",
            inline=False,
        )
        assert opt.stats.dynamic_dispatches == 0

    def test_polymorphic_send_stays_dynamic(self):
        base, opt, _ = check_equivalence(
            "class A { def m() { return 1; } }\n"
            "class B : A { def m() { return 2; } }\n"
            "def pick(i) { if (i == 0) { return new A(); } return new B(); }\n"
            "def main() {\n"
            "  var t = 0;\n"
            "  for (var i = 0; i < 2; i = i + 1) { t = t + pick(i).m(); }\n"
            "  print(t);\n"
            "}",
            inline=False,
        )
        assert base.output == ["3"]
        assert opt.stats.dynamic_dispatches > 0

    def test_possibly_nil_receiver_keeps_error(self):
        source = (
            "class A { def m() { return 1; } }\n"
            "def main() {\n"
            "  var a = nil;\n"
            "  if (false) { a = new A(); }\n"
            "  print(a.m());\n"
            "}"
        )
        from repro.ir import compile_source
        from repro.inlining.pipeline import optimize
        from repro.runtime import ReproRuntimeError

        report = optimize(compile_source(source), inline=False)
        with pytest.raises(ReproRuntimeError):
            run_program(report.program)


class TestBuildModes:
    def test_manual_only_respects_annotations(self):
        source = (
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var inline a; var b;\n"
            "  def init(x, y) { this.a = x; this.b = y; }\n"
            "}\n"
            "def main() { var c = new C(new P(1), new P(2)); print(c.a.v + c.b.v); }"
        )
        _, _, manual = check_equivalence(source, manual_only=True)
        accepted = {c.describe() for c in manual.plan.accepted()}
        assert accepted == {"C.a"}
        _, _, auto = check_equivalence(source, inline=True)
        assert {c.describe() for c in auto.plan.accepted()} == {"C.a", "C.b"}

    def test_noinline_accepts_nothing(self):
        _, _, report = check_equivalence(RECTANGLE_SOURCE, inline=False)
        assert report.plan.accepted() == []

    def test_idempotent_runs(self):
        # Optimizing twice from the same source yields the same decisions.
        _, _, first = check_equivalence(RECTANGLE_SOURCE)
        _, _, second = check_equivalence(RECTANGLE_SOURCE)
        names = lambda r: sorted(c.describe() for c in r.plan.accepted())
        assert names(first) == names(second)


class TestTrickyPrograms:
    def test_conditional_construction(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() {\n"
            "  var total = 0;\n"
            "  for (var i = 0; i < 4; i = i + 1) {\n"
            "    var c = new C(new P(i));\n"
            "    total = total + c.f.v;\n"
            "  }\n"
            "  print(total);\n"
            "}"
        )

    def test_field_inlining_with_globals_holding_container(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "var keep = nil;\n"
            "def main() {\n"
            "  keep = new C(new P(8));\n"
            "  print(keep.f.v);\n"
            "}"
        )

    def test_two_containers_same_child_class(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C1 { var f; def init(p) { this.f = p; } }\n"
            "class C2 { var g; def init(p) { this.g = p; } }\n"
            "def main() {\n"
            "  var a = new C1(new P(1));\n"
            "  var b = new C2(new P(2));\n"
            "  print(a.f.v + b.g.v);\n"
            "}"
        )

    def test_container_inside_loop_in_function(self):
        check_equivalence(
            "class P { var v; def init(v) { this.v = v; } }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def work(i) { var c = new C(new P(i)); return c.f.v * 2; }\n"
            "def main() {\n"
            "  var t = 0;\n"
            "  for (var i = 0; i < 5; i = i + 1) { t = t + work(i); }\n"
            "  print(t);\n"
            "}"
        )

    def test_print_of_inlined_object_is_stable(self):
        check_equivalence(
            "class P { }\n"
            "class C { var f; def init(p) { this.f = p; } }\n"
            "def main() { var c = new C(new P()); print(c.f); }"
        )
