"""Observability subsystem tests: spans, counters, JSONL, summaries."""

import json

import pytest

from repro.ir import compile_source
from repro.inlining.pipeline import optimize
from repro.obs import (
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    Tracer,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
    tracer_to_file,
)


class FakeClock:
    """Deterministic injectable clock: advances on demand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpans:
    def test_nesting_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        begins = {e["name"]: e for e in sink.events if e["ev"] == "span_begin"}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        assert begins["sibling"]["parent"] == begins["outer"]["id"]
        assert begins["inner"]["id"] != begins["sibling"]["id"]

    def test_span_duration_uses_clock(self):
        clock = FakeClock()
        sink = MemorySink()
        tracer = Tracer(sink, clock=clock)
        with tracer.span("phase"):
            clock.advance(1.5)
        end = next(e for e in sink.events if e["ev"] == "span_end")
        assert end["dur"] == pytest.approx(1.5)
        assert tracer.span_totals["phase"] == [1, pytest.approx(1.5)]

    def test_span_meta_recorded(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=FakeClock())
        with tracer.span("transform", round=3):
            pass
        begin = next(e for e in sink.events if e["ev"] == "span_begin")
        assert begin["meta"] == {"round": 3}

    def test_span_totals_aggregate_repeats(self):
        clock = FakeClock()
        tracer = Tracer(None, clock=clock)
        for _ in range(4):
            with tracer.span("phase"):
                clock.advance(0.25)
        assert tracer.span_totals["phase"][0] == 4
        assert tracer.span_totals["phase"][1] == pytest.approx(1.0)


class TestCounters:
    def test_counter_accumulation(self):
        tracer = Tracer(MemorySink(), clock=FakeClock())
        tracer.count("steps")
        tracer.count("steps", 9)
        assert tracer.counters["steps"] == 10

    def test_span_end_carries_counter_deltas(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=FakeClock())
        tracer.count("steps", 5)
        with tracer.span("phase"):
            tracer.count("steps", 7)
            tracer.count("widened", 1)
        end = next(e for e in sink.events if e["ev"] == "span_end")
        assert end["counters"] == {"steps": 7, "widened": 1}

    def test_untouched_counters_omitted_from_span(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=FakeClock())
        tracer.count("before", 3)
        with tracer.span("phase"):
            pass
        end = next(e for e in sink.events if e["ev"] == "span_end")
        assert "counters" not in end

    def test_close_emits_totals_once(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=FakeClock())
        tracer.count("steps", 2)
        tracer.close()
        tracer.close()  # idempotent
        totals = [e for e in sink.events if e["ev"] == "counters"]
        assert len(totals) == 1
        assert totals[0]["counters"] == {"steps": 2}
        assert sink.closed


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = tracer_to_file(path)
        with tracer.span("optimize"):
            with tracer.span("analyze"):
                tracer.count("analysis.worklist_steps", 42)
            tracer.event("decision", candidate="C.f", accepted=True)
        tracer.close()

        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        # Every line is standalone JSON.
        events = [json.loads(line) for line in lines]
        kinds = [e["ev"] for e in events]
        assert kinds.count("span_begin") == 2
        assert kinds.count("span_end") == 2
        assert "event" in kinds and "counters" in kinds

        summary = summarize_file(path)
        assert summary.phases["analyze"].count == 1
        assert summary.counters["analysis.worklist_steps"] == 42
        assert summary.decisions == [{"candidate": "C.f", "accepted": True}]
        assert summary.malformed_lines == 0

    def test_malformed_lines_tolerated(self):
        events, malformed = read_events(
            ['{"ev":"span_end","name":"x","dur":1.0,"id":1}', "not json", "", "[1,2]"]
        )
        assert len(events) == 1
        assert malformed == 2
        summary = summarize_events(events, malformed)
        assert summary.phases["x"].total_seconds == 1.0
        assert "malformed" in render_summary(summary)

    def test_sink_accepts_file_object(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            sink = JsonlSink(handle)
            sink.emit({"ev": "event", "name": "x", "ts": 0.0, "data": {}})
            sink.close()  # must not close a borrowed handle
            handle.write("")  # still open
        assert json.loads(path.read_text().strip())["name"] == "x"


class TestNullTracer:
    def test_noop_tracer_is_inert(self):
        tracer = NULL_TRACER
        assert not tracer.enabled
        with tracer.span("anything", meta=1) as span:
            tracer.count("x", 5)
            tracer.event("decision", foo="bar")
        tracer.close()
        # No state accumulated anywhere.
        assert not hasattr(tracer, "counters")
        assert span is tracer.span("other")  # the shared singleton span

    def test_default_pipeline_runs_untraced(self):
        source = """
        class P { var v; def init(v) { this.v = v; } }
        class C { var f; def init(p) { this.f = p; } }
        def main() { var c = new C(new P(5)); print(c.f.v); }
        """
        report = optimize(compile_source(source))
        assert report.program is not None  # no tracer argument required


class TestPipelineTracing:
    SOURCE = """
    class P { var v; def init(v) { this.v = v; } }
    class C { var f; def init(p) { this.f = p; } }
    def poly(o) { return o.f; }
    def main() {
      var c = new C(new P(5));
      print(c.f.v);
    }
    """

    def test_optimize_emits_phase_spans_and_decisions(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        optimize(compile_source(self.SOURCE), tracer=tracer)
        tracer.close()
        ended = {e["name"] for e in sink.events if e["ev"] == "span_end"}
        for phase in ("optimize", "analyze", "plan", "transform", "opt.dce"):
            assert phase in ended, f"missing span {phase}"
        decisions = [
            e["data"] for e in sink.events
            if e["ev"] == "event" and e["name"] == "decision"
        ]
        assert any(d["candidate"] == "C.f" and d["accepted"] for d in decisions)
        assert tracer.counters["analysis.worklist_steps"] > 0
        assert tracer.counters["decisions.accepted"] >= 1

    def test_rejections_carry_stage(self):
        report = optimize(compile_source(self.SOURCE), inline=False)
        for candidate in report.plan.rejected():
            assert candidate.reject_stage == "policy"
            record = candidate.decision_record()
            assert record["accepted"] is False
            assert record["stage"] == "policy"

    def test_decision_engine_stages_populated(self):
        # A post-construction store rejection must name its screening stage.
        source = """
        class P { var v; def init(v) { this.v = v; } }
        class C {
          var f;
          def init(p) { this.f = p; }
          def set(p) { this.f = p; }
        }
        def main() {
          var c = new C(new P(1));
          c.set(new P(2));
          print(c.f.v);
        }
        """
        report = optimize(compile_source(source))
        rejected = {c.describe(): c for c in report.plan.rejected()}
        assert "C.f" in rejected
        assert rejected["C.f"].reject_stage == "stores"


class TestTraceSummaryRender:
    def test_render_contains_phase_table_and_decisions(self):
        sink = MemorySink()
        clock = FakeClock()
        tracer = Tracer(sink, clock=clock)
        with tracer.span("optimize"):
            with tracer.span("analyze"):
                clock.advance(0.010)
            clock.advance(0.002)
        tracer.event("decision", candidate="C.f", accepted=True)
        tracer.event(
            "decision", candidate="D.g", accepted=False,
            stage="purity", reason="use site mixes inlined and raw objects",
        )
        tracer.count("analysis.worklist_steps", 99)
        tracer.close()
        summary = summarize_events(sink.events)
        assert summary.root_seconds == pytest.approx(0.012)
        text = render_summary(summary)
        assert "analyze" in text
        assert "ACCEPT C.f" in text
        assert "[purity]" in text
        assert "analysis.worklist_steps" in text

    def test_single_run_stats_render_as_block_with_ratios(self):
        events = [
            {
                "ev": "event",
                "name": "run.stats",
                "data": {"instructions": 1000, "cache_miss_rate": 0.251234, "cycles": 9000},
            }
        ]
        summary = summarize_events(events)
        assert summary.run_stats == [events[0]["data"]]
        text = render_summary(summary)
        assert "runtime stats:" in text
        # Float ratios survive — the integer counter table can't carry them.
        assert "cache_miss_rate" in text and "0.251234" in text

    def test_multiple_run_stats_render_as_table(self):
        events = [
            {
                "ev": "event",
                "name": "run.stats",
                "data": {"instructions": n, "cache_miss_rate": 0.5, "cycles": n * 3},
            }
            for n in (100, 200)
        ]
        text = render_summary(summarize_events(events))
        assert "runtime stats (2 runs):" in text
        assert "100" in text and "200" in text

    def test_locality_events_render_brief_digest(self):
        events = [
            {
                "ev": "event",
                "name": "run.locality",
                "data": {
                    "labels": [
                        {
                            "kind": "field", "class": "C", "field": "f",
                            "site": "x.icc:3", "reads": 8, "writes": 0,
                            "misses": 5, "accesses": 8, "miss_rate": 0.625,
                        }
                    ],
                    "total_labels": 1,
                    "truncated": 0,
                },
            },
            {
                "ev": "event",
                "name": "run.heatmap",
                "data": {
                    "bucket_bytes": 2048, "buckets": [], "total_buckets": 4,
                    "truncated": 0, "total_misses": 5, "total_accesses": 8,
                },
            },
        ]
        summary = summarize_events(events)
        assert summary.localities and summary.heatmaps
        text = render_summary(summary)
        assert "locality:" in text
        assert "C.f" in text
        assert "repro heatmap" in text

    def test_merge_concatenates_run_stats_and_locality(self):
        a = summarize_events(
            [{"ev": "event", "name": "run.stats", "data": {"cycles": 1}}]
        )
        b = summarize_events(
            [{"ev": "event", "name": "run.stats", "data": {"cycles": 2}}]
        )
        a.merge(b)
        assert [s["cycles"] for s in a.run_stats] == [1, 2]


class TestTracerMerge:
    def _worker_tracer(self, clock, spans=2, events=1):
        tracer = Tracer(MemorySink(), clock=clock)
        for index in range(spans):
            with tracer.span("work", unit=index):
                clock.advance(0.5)
                tracer.count("steps", 3)
        for _ in range(events):
            tracer.event("decision", candidate="C.f", accepted=True)
        return tracer

    def test_merge_preserves_totals_counters_and_events(self):
        clock = FakeClock()
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        with parent.span("own"):
            clock.advance(0.25)
        children = [self._worker_tracer(clock) for _ in range(3)]
        for child in children:
            parent.merge(child)
        assert parent.span_totals["work"][0] == 6
        assert parent.span_totals["work"][1] == pytest.approx(3.0)
        assert parent.span_totals["own"] == [1, pytest.approx(0.25)]
        assert parent.counters["steps"] == 18
        decisions = [
            e for e in parent_sink.events
            if e["ev"] == "event" and e["name"] == "decision"
        ]
        assert len(decisions) == 3
        ends = [e for e in parent_sink.events if e["ev"] == "span_end"]
        assert sum(1 for e in ends if e["name"] == "work") == 6

    def test_merge_remaps_span_ids_without_collisions(self):
        clock = FakeClock()
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        with parent.span("own"):
            pass
        # Two children allocate overlapping span ids independently.
        for _ in range(2):
            parent.merge(self._worker_tracer(clock))
        begin_ids = [e["id"] for e in parent_sink.events if e["ev"] == "span_begin"]
        assert len(begin_ids) == len(set(begin_ids))
        # begin/end pairing survives the remap.
        end_ids = [e["id"] for e in parent_sink.events if e["ev"] == "span_end"]
        assert sorted(begin_ids) == sorted(end_ids)

    def test_merge_preserves_parent_links_and_roots(self):
        clock = FakeClock()
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        child = Tracer(MemorySink(), clock=clock)
        with child.span("outer"):
            with child.span("inner"):
                pass
        parent.merge(child)
        begins = {e["name"]: e for e in parent_sink.events if e["ev"] == "span_begin"}
        assert begins["outer"]["parent"] is None  # roots stay roots
        assert begins["inner"]["parent"] == begins["outer"]["id"]

    def test_nested_merge_remaps_ids_through_intermediate_tracer(self):
        # Worker shards merged into an intermediate child tracer which is
        # itself merged into the session parent (the shape the parallel
        # harness produces when a worker fans out again).  Span ids must
        # stay globally unique through both remap layers, and the tree
        # shape must survive intact.
        clock = FakeClock()
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        with parent.span("own"):
            clock.advance(0.1)
        intermediate = Tracer(MemorySink(), clock=clock)
        with intermediate.span("stage"):
            clock.advance(0.1)
        # Shards allocate overlapping ids independently of each other,
        # of the intermediate, and of the parent.
        for _ in range(2):
            intermediate.merge(self._worker_tracer(clock))
        parent.merge(intermediate)

        begins = [e for e in parent_sink.events if e["ev"] == "span_begin"]
        begin_ids = [e["id"] for e in begins]
        assert len(begin_ids) == len(set(begin_ids))
        end_ids = [e["id"] for e in parent_sink.events if e["ev"] == "span_end"]
        assert sorted(begin_ids) == sorted(end_ids)
        # own + stage + 2 shards x 2 work spans.
        assert sum(1 for e in begins if e["name"] == "work") == 4
        # Roots stay roots through both layers and nested shard spans
        # keep pointing at a begin that exists in the merged stream.
        by_id = {e["id"]: e for e in begins}
        for event in begins:
            if event["parent"] is None:
                continue
            assert event["parent"] in by_id
        assert all(by_id[e["id"]]["parent"] is None
                   for e in begins if e["name"] in ("own", "stage", "work"))
        # Aggregates accumulated through the intermediate as well.
        assert parent.span_totals["work"][0] == 4
        assert parent.counters["steps"] == 12

    def test_nested_merge_preserves_deep_parent_links(self):
        clock = FakeClock()
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        intermediate = Tracer(MemorySink(), clock=clock)
        shard = Tracer(MemorySink(), clock=clock)
        with shard.span("outer"):
            with shard.span("inner"):
                with shard.span("leaf"):
                    clock.advance(0.05)
        intermediate.merge(shard)
        parent.merge(intermediate)
        begins = {e["name"]: e for e in parent_sink.events if e["ev"] == "span_begin"}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        assert begins["leaf"]["parent"] == begins["inner"]["id"]

    def test_merge_drops_child_counters_event(self):
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=FakeClock())
        child = Tracer(MemorySink(), clock=FakeClock())
        child.count("steps", 7)
        child.close()  # emits the child's final counters event
        parent.merge(child)
        assert not [e for e in parent_sink.events if e["ev"] == "counters"]
        parent.close()
        totals = [e for e in parent_sink.events if e["ev"] == "counters"]
        assert totals and totals[0]["counters"] == {"steps": 7}

    def test_child_shares_clock_and_epoch(self):
        clock = FakeClock()
        parent = Tracer(MemorySink(), clock=clock)
        clock.advance(1.0)
        child = parent.child()
        with child.span("late"):
            clock.advance(0.5)
        begin = next(e for e in child._sink.events if e["ev"] == "span_begin")
        assert begin["ts"] == pytest.approx(1.0)  # parent epoch, not 0

    def test_child_of_aggregate_only_tracer_has_no_sink(self):
        parent = Tracer(None, clock=FakeClock())
        child = parent.child()
        with child.span("x"):
            pass
        parent.merge(child)
        assert parent.span_totals["x"][0] == 1

    def test_shard_is_picklable_and_merges(self):
        import pickle

        clock = FakeClock()
        child = self._worker_tracer(clock)
        shard = pickle.loads(pickle.dumps(child.shard()))
        parent_sink = MemorySink()
        parent = Tracer(parent_sink, clock=clock)
        parent.merge(shard)
        assert parent.span_totals["work"][0] == 2
        assert parent.counters["steps"] == 6
        assert [e for e in parent_sink.events if e["ev"] == "event"]

    def test_null_tracer_merge_and_child_are_noops(self):
        child = NULL_TRACER.child()
        assert child is NULL_TRACER
        NULL_TRACER.merge(Tracer(MemorySink()))  # must not raise


class TestSinkConcurrency:
    def test_memory_sink_concurrent_emits_are_atomic(self):
        import threading

        sink = MemorySink()
        tracers = [Tracer(sink, clock=FakeClock()) for _ in range(4)]

        def hammer(tracer):
            for index in range(500):
                tracer.event("tick", n=index)

        threads = [
            threading.Thread(target=hammer, args=(tracer,)) for tracer in tracers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sink.events) == 4 * 500

    def test_jsonl_sink_concurrent_lines_stay_whole(self):
        import io
        import threading

        buffer = io.StringIO()
        sink = JsonlSink(buffer)

        def hammer(worker):
            for index in range(300):
                sink.emit({"ev": "event", "name": "tick", "w": worker, "n": index})

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 4 * 300
        for line in lines:
            json.loads(line)  # every line is standalone JSON

    def test_memory_sink_pickles_without_its_lock(self):
        import pickle

        sink = MemorySink()
        sink.emit({"ev": "event", "name": "x"})
        clone = pickle.loads(pickle.dumps(sink))
        assert clone.events == sink.events
        clone.emit({"ev": "event", "name": "y"})  # lock was rebuilt
        assert len(clone.events) == 2


class TestMergedSummaries:
    def test_summarize_files_merges_worker_traces(self, tmp_path):
        from repro.obs import summarize_files

        paths = []
        for worker in range(2):
            path = str(tmp_path / f"w{worker}.jsonl")
            tracer = tracer_to_file(path)
            with tracer.span("build"):
                tracer.count("steps", 5)
            tracer.event("decision", candidate=f"C{worker}.f", accepted=True)
            tracer.close()
            paths.append(path)
        summary = summarize_files(paths)
        assert summary.phases["build"].count == 2
        assert summary.counters["steps"] == 10
        assert len(summary.decisions) == 2

    def test_trace_cli_accepts_multiple_files(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for worker in range(2):
            path = str(tmp_path / f"w{worker}.jsonl")
            tracer = tracer_to_file(path)
            with tracer.span("build"):
                pass
            tracer.close()
            paths.append(path)
        assert main(["trace", *paths]) == 0
        out = capsys.readouterr().out
        assert "build" in out


class TestCLITrace:
    PROGRAM = """
    class P { var v; def init(v) { this.v = v; } }
    class C { var f; def init(p) { this.f = p; } }
    def main() { var c = new C(new P(5)); print(c.f.v); }
    """

    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "prog.icc"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_run_trace_flag_writes_jsonl(self, program_file, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "out.jsonl")
        assert main(["run", program_file, "--inline", "--trace", trace]) == 0
        assert capsys.readouterr().out.strip() == "5"
        summary = summarize_file(trace)
        for phase in ("analyze", "plan", "transform", "run"):
            assert phase in summary.phases
        assert summary.decisions  # at least one decision event
        assert summary.counters["run.instructions"] > 0

    def test_trace_subcommand_renders_table(self, program_file, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "out.jsonl")
        main(["run", program_file, "--inline", "--trace", trace])
        capsys.readouterr()
        assert main(["trace", trace]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "analyze" in out
        assert "decisions:" in out

    def test_analyze_json(self, program_file, capsys):
        from repro.cli import main

        assert main(["analyze", program_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analysis"]["method_contours"] > 0
        candidates = {c["candidate"]: c for c in payload["candidates"]}
        assert candidates["C.f"]["accepted"] is True
        assert payload["clones"]["method_partitions"] >= 1

    def test_analyze_text_shows_stage(self, tmp_path, capsys):
        from repro.cli import main

        source = """
        class P { var v; def init(v) { this.v = v; } }
        class C {
          var f;
          def init(p) { this.f = p; }
          def set(p) { this.f = p; }
        }
        def main() {
          var c = new C(new P(1));
          c.set(new P(2));
          print(c.f.v);
        }
        """
        path = tmp_path / "poly.icc"
        path.write_text(source)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "reject[" in out


class TestBenchPhaseTimings:
    def test_build_results_carry_phase_seconds(self):
        from repro.bench.harness import run_benchmark

        source = """
        class P { var v; def init(v) { this.v = v; } }
        class C { var f; def init(p) { this.f = p; } }
        def main() { var c = new C(new P(5)); print(c.f.v); }
        """
        bench = run_benchmark("tiny", source)
        for build in ("noinline", "inline", "manual"):
            phases = bench.builds[build].phase_seconds
            assert phases.get("analyze", 0.0) > 0.0
            assert "transform" in phases
