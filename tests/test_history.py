"""Perf-history ledger: robust stats, entry hashing/persistence, the
statistical regression check, the ledger reports, and the CLI wiring.

The flagship differential tests pin the acceptance criteria: a
deliberately slowed phase is flagged ``regressed`` while an identical
re-run is not, serial and ``--jobs 2`` runs produce equivalent ledger
entries, and ``repro bench --repeat 3`` appends an entry with three
samples per phase.
"""

import json
import time

import pytest

from repro.bench.harness import run_suite_samples
from repro.cli import main
from repro.obs.history import (
    ABS_SLACK,
    MIN_HISTORY_SAMPLES,
    append_entry,
    check_entry,
    comparable_entries,
    config_key,
    environment,
    load_history,
    mad,
    make_entry,
    median,
    metric_series,
    regression_margin,
    render_entry_diff,
    render_history_list,
    render_trend,
    render_verdicts,
    resolve_rev,
    sparkline,
)

#: One tiny benchmark that exercises all three builds quickly.
TINY = """
class P { var v; def init(v) { this.v = v; } }
class C { var inline f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(5)); print(c.f.v); }
"""

SPEC = {"tiny": (TINY, None)}


def measure(repeat=1, jobs=1, suite="test-tiny"):
    return run_suite_samples(
        repeat=repeat, jobs=jobs, specs=dict(SPEC), suite=suite
    )


def entry_of(samples, jobs=1, git_rev="deadbeef"):
    env = environment(jobs=jobs)
    env["git_rev"] = git_rev
    return make_entry(
        samples.ledger_benchmarks(),
        samples.ledger_config(),
        env,
        repeat=samples.repeat,
    )


@pytest.fixture(scope="module")
def tiny_history():
    """Two recorded runs of the tiny suite (4 samples per phase)."""
    return [entry_of(measure(repeat=2)) for _ in range(2)]


class TestRobustStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([5.0]) == 0.0
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 9.0]) == 1.0  # deviations from 2: [1, 0, 7]

    def test_margin_never_below_absolute_slack(self):
        assert regression_margin([0.0001, 0.0001, 0.0001]) == ABS_SLACK

    def test_margin_scales_with_noise(self):
        noisy = [0.1, 0.2, 0.1, 0.3, 0.2]
        assert regression_margin(noisy) > regression_margin([0.2] * 5)


class TestLedgerEntries:
    def test_config_key_is_stable_and_order_insensitive(self):
        a = config_key({"suite": "s", "builds": ["x", "y"]})
        b = config_key({"builds": ["x", "y"], "suite": "s"})
        assert a == b and len(a) == 16

    def test_config_key_distinguishes_configs(self):
        assert config_key({"suite": "a"}) != config_key({"suite": "b"})

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        entry = make_entry({"b": {}}, {"suite": "s"}, {"jobs": 1})
        append_entry(path, entry)
        append_entry(path, entry)
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded[0]["config_key"] == entry["config_key"]

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = json.dumps(make_entry({"b": {}}, {"suite": "s"}, {}))
        path.write_text(f"not json\n{good}\n[1,2]\n\n")
        assert len(load_history(str(path))) == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_comparable_entries_filter_key_and_jobs(self):
        e1 = make_entry({}, {"suite": "a"}, {"jobs": 1})
        e2 = make_entry({}, {"suite": "a"}, {"jobs": 2})
        e3 = make_entry({}, {"suite": "b"}, {"jobs": 1})
        entries = [e1, e2, e3]
        key = e1["config_key"]
        assert comparable_entries(entries, key) == [e1, e2]
        assert comparable_entries(entries, key, jobs=1) == [e1]


class TestStatisticalCheck:
    def test_identical_rerun_is_not_flagged(self, tiny_history):
        fresh = entry_of(measure(repeat=2))
        verdicts = check_entry(fresh, tiny_history)
        assert verdicts, "expected phase verdicts"
        assert not any(v.failed for v in verdicts)
        gated = [v for v in verdicts if v.gates and v.source == "history"]
        assert gated, "expected statistically gated phases"

    def test_slowed_phase_is_flagged_regressed(self, tiny_history, monkeypatch):
        from repro.opt.loadcse import eliminate_redundant_loads

        def slow_pass(program):
            time.sleep(0.03)
            return eliminate_redundant_loads(program)

        monkeypatch.setattr(
            "repro.inlining.pipeline.eliminate_redundant_loads", slow_pass
        )
        slowed = entry_of(measure(repeat=2))
        verdicts = check_entry(slowed, tiny_history)
        failed = [v for v in verdicts if v.failed]
        assert failed, "slowed opt.loadcse should regress"
        assert all(v.metric == "opt.loadcse" for v in failed)
        # The verdict quotes the measured distribution and the margin.
        text = render_verdicts(verdicts)
        assert "REGRESSED" in text and "MAD" in text and "margin" in text

    def test_cycle_changes_inform_but_never_gate(self, tiny_history):
        fresh = entry_of(measure(repeat=1))
        for builds in fresh["benchmarks"].values():
            for data in builds.values():
                data["cycles"] = [c + 1000 for c in data["cycles"]]
        verdicts = check_entry(fresh, tiny_history)
        cycle_verdicts = [v for v in verdicts if v.metric == "cycles"]
        assert cycle_verdicts
        assert all(v.verdict == "regressed" for v in cycle_verdicts)
        assert not any(v.failed for v in verdicts)
        assert "informational" in render_verdicts(verdicts)

    def test_unknown_config_has_no_history(self, tiny_history):
        fresh = entry_of(measure(repeat=1, suite="different-suite"))
        verdicts = check_entry(fresh, tiny_history)
        gated = [v for v in verdicts if v.gates]
        assert gated
        assert all(v.verdict == "no-history" for v in gated)
        assert not any(v.failed for v in verdicts)

    def test_jobs_mode_pools_separately(self, tiny_history):
        # Same config hash, different --jobs: wall-time noise must not
        # pool across modes, so the parallel entry sees no history.
        fresh = entry_of(measure(repeat=1), jobs=2)
        verdicts = check_entry(fresh, tiny_history)
        gated = [v for v in verdicts if v.gates]
        assert all(v.source != "history" for v in gated)

    def test_thin_history_falls_back_to_baseline(self):
        samples = measure(repeat=1)
        fresh = entry_of(samples)
        phases = {
            bench: {
                build: {
                    phase: values[0]
                    for phase, values in data["phases"].items()
                }
                for build, data in builds.items()
            }
            for bench, builds in fresh["benchmarks"].items()
        }
        baseline = {"tolerance": 0.3, "min_seconds": 0.01, "phases": phases}
        verdicts = check_entry(fresh, [], baseline=baseline)
        fallback = [v for v in verdicts if v.source == "baseline"]
        assert fallback, "thin history should gate via the baseline"
        assert not any(v.failed for v in verdicts)
        # A grossly regressed phase still fails through the fallback.
        bad = {
            "tolerance": 0.3,
            "min_seconds": 1e-9,
            "noise_floor": 1e-9,
            "phases": {
                bench: {
                    build: {phase: 1e-9 for phase in data}
                    for build, data in builds.items()
                }
                for bench, builds in phases.items()
            },
        }
        verdicts = check_entry(fresh, [], baseline=bad)
        assert any(v.failed and v.source == "baseline" for v in verdicts)
        assert "compat gate" in render_verdicts(verdicts)

    def test_min_samples_threshold_respected(self, tiny_history):
        fresh = entry_of(measure(repeat=1))
        verdicts = check_entry(
            fresh, tiny_history, min_samples=MIN_HISTORY_SAMPLES + 100
        )
        assert all(v.source != "history" for v in verdicts if v.gates)


class TestSerialParallelEquivalence:
    def test_serial_and_jobs2_entries_are_equivalent(self):
        serial = measure(repeat=1, jobs=1)
        parallel = measure(repeat=1, jobs=2)
        # Identical measurement config -> identical content hash.
        assert serial.ledger_config() == parallel.ledger_config()
        assert (
            entry_of(serial)["config_key"] == entry_of(parallel, jobs=2)["config_key"]
        )
        # Every figure-visible quantity matches exactly.
        s_benches, p_benches = serial.ledger_benchmarks(), parallel.ledger_benchmarks()
        assert set(s_benches) == set(p_benches)
        for bench in s_benches:
            assert set(s_benches[bench]) == set(p_benches[bench])
            for build in s_benches[bench]:
                s_data, p_data = s_benches[bench][build], p_benches[bench][build]
                assert s_data["cycles"] == p_data["cycles"]
                assert s_data["code_size"] == p_data["code_size"]
                assert s_data["locality"] == p_data["locality"]


class TestLedgerReports:
    def _entries(self):
        entries = []
        for i, cycles in enumerate([100, 90, 80]):
            entry = make_entry(
                {
                    "tiny": {
                        "inline": {
                            "cycles": [cycles],
                            "phases": {"analyze": [0.01 + i * 0.001]},
                        }
                    }
                },
                {"suite": "synthetic"},
                {"git_rev": f"rev{i}cafe", "jobs": 1},
            )
            entries.append(entry)
        return entries

    def test_list_renders_rows(self):
        text = render_history_list(self._entries())
        assert "rev0cafe" in text and "rev2cafe" in text
        assert "100" in text

    def test_list_empty_message(self):
        assert "empty" in render_history_list([])

    def test_resolve_rev_by_index_and_prefix(self):
        entries = self._entries()
        assert resolve_rev(entries, "0") is entries[0]
        assert resolve_rev(entries, "-1") is entries[-1]
        assert resolve_rev(entries, "rev1") is entries[1]
        with pytest.raises(ValueError):
            resolve_rev(entries, "nosuchrev")
        with pytest.raises(ValueError):
            resolve_rev(entries, "99")
        with pytest.raises(ValueError):
            resolve_rev([], "0")

    def test_resolve_rev_prefix_picks_latest(self):
        entries = self._entries()
        twin = dict(entries[0])
        twin["env"] = {"git_rev": "rev0cafe", "jobs": 1}
        entries.append(twin)
        assert resolve_rev(entries, "rev0") is twin

    def test_diff_reports_cycles_and_movers(self):
        entries = self._entries()
        text = render_entry_diff(entries[0], entries[-1])
        assert "100" in text and "80" in text
        assert "improved" in text
        assert "0.800" in text  # the ratio column
        # analyze moved 0.010 -> 0.012 (+20% >= threshold) but only 2ms
        # in absolute terms, which the 1ms absolute filter lets through.
        assert "analyze" in text

    def test_diff_handles_missing_pairs(self):
        entries = self._entries()
        lonely = make_entry(
            {"other": {"inline": {"cycles": [5], "phases": {}}}},
            {"suite": "synthetic"},
            {"git_rev": "aaa", "jobs": 1},
        )
        text = render_entry_diff(entries[0], lonely)
        assert "missing from diff" in text and "missing from base" in text

    def test_sparkline_spans_shades(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_metric_series_and_trend(self):
        entries = self._entries()
        assert metric_series(entries, "tiny", "inline", "cycles") == [100, 90, 80]
        assert metric_series(entries, "tiny", "inline", "analyze") == [
            0.01,
            0.011,
            0.012,
        ]
        text = render_trend(entries, "cycles")
        assert "tiny" in text and "▁" in text and "█" in text
        assert "latest 80" in text

    def test_trend_unknown_metric_mentions_options(self):
        text = render_trend(self._entries(), "bogus")
        assert "no data" in text and "cycles" in text

    def test_trend_empty_history(self):
        assert "empty" in render_trend([], "cycles")


class TestBenchCLI:
    @pytest.fixture(autouse=True)
    def _tiny_suite(self, monkeypatch):
        """Point the CLI's performance suite at the tiny benchmark."""
        monkeypatch.setattr(
            "repro.bench.harness.PERFORMANCE_PROGRAMS", {"tiny": TINY}
        )

    def test_bench_repeat_appends_ledger_entry(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        assert (
            main(
                [
                    "bench",
                    "--figure",
                    "17",
                    "--repeat",
                    "3",
                    "--history",
                    history,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recorded ledger entry #0" in out
        entries = load_history(history)
        assert len(entries) == 1
        assert entries[0]["repeat"] == 3
        inline = entries[0]["benchmarks"]["tiny"]["inline"]
        assert len(inline["cycles"]) == 3
        assert all(len(v) == 3 for v in inline["phases"].values())

    def test_bench_check_gates_and_records(self, tmp_path, capsys, monkeypatch):
        history = str(tmp_path / "hist.jsonl")
        baseline = str(tmp_path / "absent-baseline.json")
        argv = [
            "bench",
            "--check",
            "--repeat",
            "2",
            "--history",
            history,
            "--baseline",
            baseline,
        ]
        # Two recording runs build the history; both pass (no history,
        # then statistics where enough samples pooled).
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        assert len(load_history(history)) == 2

        # Identical code re-run: still passing.
        assert main(argv) == 0
        assert "0 regressed" in capsys.readouterr().out
        assert len(load_history(history)) == 3

        # Deliberately slowed phase: flagged, nonzero exit, not recorded.
        from repro.opt.loadcse import eliminate_redundant_loads

        def slow_pass(program):
            time.sleep(0.03)
            return eliminate_redundant_loads(program)

        monkeypatch.setattr(
            "repro.inlining.pipeline.eliminate_redundant_loads", slow_pass
        )
        assert main(argv + ["--no-record"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "opt.loadcse" in out
        assert len(load_history(history)) == 3

    def test_perf_record_and_reports(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        assert (
            main(["perf", "record", "--repeat", "1", "--history", history]) == 0
        )
        capsys.readouterr()
        assert main(["perf", "list", "--history", history]) == 0
        assert "recorded at" in capsys.readouterr().out
        assert main(["perf", "diff", "0", "-1", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "perf diff" in out and "tiny" in out
        assert main(["perf", "trend", "cycles", "--history", history]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_perf_diff_bad_rev_fails_cleanly(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        assert main(["perf", "diff", "0", "1", "--history", history]) == 2
        assert "empty" in capsys.readouterr().err

    def test_perf_list_empty_ledger(self, tmp_path, capsys):
        history = str(tmp_path / "hist.jsonl")
        assert main(["perf", "list", "--history", history]) == 0
        assert "empty" in capsys.readouterr().out
