"""Escape analysis, scalar replacement, and the frame region.

Covers the classification lattice (no/arg/global escape, loop residency),
the interprocedural summaries, the scalar-replacement and frame-local
transforms, the connection-graph cache, the decision audit (every
``escape-*`` reject stage reachable and round-tripping through trace
JSONL), and the escape-on/off differential on a real benchmark.
"""

import json

import pytest

from repro.analysis.escape import (
    ARG_ESCAPE,
    EscapeCache,
    GLOBAL_ESCAPE,
    NO_ESCAPE,
    analyze_escapes,
)
from repro.inlining.pipeline import optimize
from repro.ir import compile_source, validate_program
from repro.obs import MemorySink, Tracer, render_summary, summarize_events
from repro.opt import ESCAPE_REJECT_STAGES, apply_escape_optimization
from repro.runtime import run_program
from repro.runtime.heap import Heap, HeapError
from repro.session import CompileConfig, Session


def classify(source: str):
    program = compile_source(source)
    return program, analyze_escapes(program)


def sites_of(result, class_name):
    return [s for s in result.sites if s.class_name == class_name]


class TestClassification:
    def test_local_object_does_not_escape(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            def main() { var p = new P(3); print(p.v); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == NO_ESCAPE
        assert site.state_name == "no-escape"

    def test_store_into_global_escapes(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            var g = nil;
            def main() { g = new P(3); print(1); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == GLOBAL_ESCAPE
        assert "global" in site.reason

    def test_store_into_field_escapes(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            class Box { var item; def init() { this.item = nil; } }
            def main() {
              var b = new Box();
              b.item = new P(3);
              print(b.item.v);
            }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == GLOBAL_ESCAPE

    def test_returned_object_arg_escapes(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            def make() { return new P(3); }
            def main() { print(make().v); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == ARG_ESCAPE
        assert "returned" in site.reason

    def test_callee_that_stores_escapes_the_actual(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            var g = nil;
            def keep(p) { g = p; }
            def main() { var p = new P(3); keep(p); print(1); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == GLOBAL_ESCAPE
        assert "callee" in site.reason

    def test_callee_that_only_reads_keeps_no_escape(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            def read(p) { return p.v; }
            def main() { var p = new P(3); print(read(p)); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == NO_ESCAPE

    def test_constructor_store_into_this_does_not_escape_this(self):
        # init writes its arguments into `this`: the arguments escape
        # (they outlive the constructor inside the object) but the fresh
        # object itself does not.
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            class Pair {
              var a; var b;
              def init(a, b) { this.a = a; this.b = b; }
            }
            def main() {
              var q = new Pair(new P(1), new P(2));
              print(q.a.v + q.b.v);
            }
            """
        )
        (pair_site,) = sites_of(result, "Pair")
        assert pair_site.state == NO_ESCAPE
        for p_site in sites_of(result, "P"):
            assert p_site.state == GLOBAL_ESCAPE

    def test_loop_residency_detected(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            def main() {
              var total = 0;
              for (var i = 0; i < 3; i = i + 1) {
                var p = new P(i);
                total = total + p.v;
              }
              print(total);
            }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.in_loop

    def test_alias_through_move_propagates_escape(self):
        _, result = classify(
            """
            class P { var v; def init(v) { this.v = v; } }
            var g = nil;
            def main() { var p = new P(3); var q = p; g = q; print(1); }
            """
        )
        (site,) = sites_of(result, "P")
        assert site.state == GLOBAL_ESCAPE


class TestEscapeCache:
    def test_second_analysis_hits_every_callable(self):
        program = compile_source(
            """
            class P { var v; def init(v) { this.v = v; } }
            def main() { var p = new P(3); print(p.v); }
            """
        )
        cache = EscapeCache()
        first = analyze_escapes(program, cache)
        assert first.local_misses > 0 and first.local_hits == 0
        second = analyze_escapes(program, cache)
        assert second.local_misses == 0
        assert second.local_hits == first.local_misses
        assert [s.state for s in second.sites] == [s.state for s in first.sites]


class TestScalarReplacement:
    SOURCE = """
    class Point {
      var x; var y;
      def init(a, b) { this.x = a; this.y = b; }
      def dist2() { return this.x * this.x + this.y * this.y; }
    }
    def use(n) {
      var p = new Point(n, n + 1);
      return p.dist2();
    }
    def main() {
      var total = 0;
      var i = 0;
      while (i < 10) {
        total = total + use(i);
        i = i + 1;
      }
      print(total);
    }
    """

    def test_allocation_dissolves_and_output_is_identical(self):
        session = Session(self.SOURCE)
        plain = session.run("plain")
        report = session.optimize(CompileConfig(inline=True))
        escape = report.escape_stats
        assert escape is not None
        assert escape.scalar_replaced >= 1
        optimized = session.run("inline")
        ablated = session.run("noescape")
        assert optimized.output == plain.output == ablated.output
        assert optimized.stats.allocations < ablated.stats.allocations

    def test_audit_records_scalar_acceptance(self):
        report = optimize(compile_source(self.SOURCE))
        escape = report.escape_stats
        accepted = [d for d in escape.decisions if d["accepted"]]
        assert any(d["mode"] == "scalar" for d in accepted)
        for decision in escape.decisions:
            assert decision["kind"] == "escape"
            assert isinstance(decision["key"], list) and len(decision["key"]) == 2


class TestFrameAllocation:
    # Two allocations through one variable: the destination register has
    # two definitions, so scalar replacement refuses, but the objects are
    # still no-escape and outside any loop -> frame region.
    SOURCE = """
    class P { var v; def init(v) { this.v = v; } }
    def main() {
      var p = new P(1);
      print(p.v);
      p = new P(2);
      print(p.v);
    }
    """

    def test_non_scalarizable_site_goes_to_frame(self):
        program = compile_source(self.SOURCE)
        stats = apply_escape_optimization(program)
        validate_program(program)
        assert stats.stack_allocated >= 1
        result = run_program(program)
        assert result.output == ["1", "2"]
        assert result.stats.frame_allocations >= 1
        assert result.stats.allocations == 0

    def test_frame_modes_recorded_in_audit(self):
        program = compile_source(self.SOURCE)
        stats = apply_escape_optimization(program)
        accepted = [d for d in stats.decisions if d["accepted"]]
        assert any(d["mode"] == "stack" for d in accepted)


class TestFrameRegion:
    def test_pop_reclaims_addresses_and_records(self):
        heap = Heap()
        marker = heap.push_frame()
        ref = heap.alloc_object("P", ("v",), frame_local=True)
        assert ref.address >= Heap.FRAME_BASE
        heap.write_field(ref, "v", 1)
        heap.pop_frame(marker)
        with pytest.raises(HeapError):
            heap.read_field(ref, "v")
        # The bump pointer rewound: the next frame reuses the address.
        heap.push_frame()
        again = heap.alloc_object("P", ("v",), frame_local=True)
        assert again.address == ref.address

    def test_root_region_allows_unbracketed_allocs(self):
        heap = Heap()
        ref = heap.alloc_object("P", ("v",), frame_local=True)
        heap.write_field(ref, "v", 7)
        assert heap.read_field(ref, "v")[0] == 7

    def test_nested_frames_pop_independently(self):
        heap = Heap()
        outer = heap.push_frame()
        outer_ref = heap.alloc_object("P", ("v",), frame_local=True)
        inner = heap.push_frame()
        inner_ref = heap.alloc_object("P", ("v",), frame_local=True)
        heap.pop_frame(inner)
        with pytest.raises(HeapError):
            heap.read_field(inner_ref, "v")
        heap.write_field(outer_ref, "v", 3)
        assert heap.read_field(outer_ref, "v")[0] == 3
        heap.pop_frame(outer)


REJECT_STAGE_SOURCES = {
    "escape-global": """
        class P { var v; def init(v) { this.v = v; } }
        var g = nil;
        def main() { g = new P(3); print(1); }
    """,
    # Recursion keeps the producer out of the inliner, so the returned
    # allocation stays arg-escaped through the full pipeline too.
    "escape-arg": """
        class P { var v; def init(v) { this.v = v; } }
        def make(n) {
          if (n > 0) { return make(n - 1); }
          return new P(3);
        }
        def main() { print(make(2).v); }
    """,
    # An identity comparison blocks scalar replacement; the loop blocks
    # the frame region.
    "escape-loop": """
        class P { var v; def init(v) { this.v = v; } }
        def main() {
          var total = 0;
          for (var i = 0; i < 3; i = i + 1) {
            var p = new P(i);
            if (p == p) { total = total + p.v; }
          }
          print(total);
        }
    """,
    # A plain local array: no-escape, but arrays have neither a scalar
    # nor a frame form.
    "escape-shape": """
        def main() {
          var a = array(2);
          a[0] = 4;
          print(a[0]);
        }
    """,
}


class TestRejectStages:
    def test_documented_stages_match_exported_tuple(self):
        assert set(REJECT_STAGE_SOURCES) == set(ESCAPE_REJECT_STAGES)

    @pytest.mark.parametrize("stage", list(REJECT_STAGE_SOURCES))
    def test_stage_is_reachable(self, stage):
        program = compile_source(REJECT_STAGE_SOURCES[stage])
        stats = apply_escape_optimization(program)
        assert stats.rejected.get(stage, 0) >= 1, stats.decisions

    @pytest.mark.parametrize("stage", list(REJECT_STAGE_SOURCES))
    def test_stage_round_trips_through_trace(self, stage, tmp_path):
        tracer = Tracer(MemorySink())
        optimize(compile_source(REJECT_STAGE_SOURCES[stage]), tracer=tracer)
        events = tracer._sink.events
        decisions = [
            e["data"]
            for e in events
            if e["ev"] == "event" and e["name"] == "decision"
        ]
        escaped = [d for d in decisions if d.get("kind") == "escape"]
        assert any(d.get("stage") == stage for d in escaped), escaped
        # And through JSONL + the summary renderer (`repro trace`).
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        with open(path) as handle:
            reloaded = [json.loads(line) for line in handle]
        summary = summarize_events(reloaded)
        assert any(
            d.get("stage") == stage for d in summary.decisions
        ), summary.decisions
        assert stage in render_summary(summary)


class TestBenchmarkDifferential:
    def test_silo_escape_on_off_bit_identical_and_fewer_allocations(self):
        from repro.bench.harness import PERFORMANCE_PROGRAMS

        session = Session(PERFORMANCE_PROGRAMS["silo"], path="silo")
        plain = session.run("plain")
        report = session.optimize(CompileConfig(inline=True))
        assert report.escape_stats.scalar_replaced >= 1
        optimized = session.run("inline")
        ablated = session.run("noescape")
        assert optimized.output == plain.output == ablated.output
        assert optimized.stats.allocations < ablated.stats.allocations
        assert optimized.stats.cache.misses < ablated.stats.cache.misses

    def test_escape_pass_off_records_nothing(self):
        report = optimize(
            compile_source(TestScalarReplacement.SOURCE), escape_pass=False
        )
        assert report.escape_stats is None


class TestFrameSoundnessPublicAPI:
    """Frame-region invariants observed through the Session API only."""

    RECURSIVE_SOURCE = """
        class P { var v; def init(v) { this.v = v; } def get() { return this.v; } }
        def work(n) {
            if (n == 0) { return 0; }
            var p = new P(n);
            return p.get() + work(n - 1);
        }
        def main() { print(work(6)); }
    """

    def test_recursive_frame_allocs_end_balanced(self):
        # Every activation that pushed a frame popped it: the run ends at
        # depth one (the entry region), with correct output.
        session = Session(self.RECURSIVE_SOURCE)
        base = session.run("plain")
        opt = session.run("inline")
        assert opt.output == base.output == ["21"]
        assert opt.heap.frame_depth == 1

    def test_exception_unwinds_do_not_leak_frames(self):
        from repro.runtime import ReproRuntimeError

        source = """
            class P { var v; def init(v) { this.v = v; } }
            def work(n) {
                var p = new P(n);
                if (n == 3) { return p.v / 0; }
                return work(n + 1);
            }
            def main() { print(work(0)); }
        """
        session = Session(source)
        with pytest.raises(ReproRuntimeError):
            session.run("inline")

    def test_degraded_escape_stage_never_unbalances_frames(self):
        # A crashing escape stage must roll back to the pre-stage
        # program: no half-rewritten callable may leave a push without
        # its pop. The oracle-grade check is output + final frame depth.
        from repro.inlining import pipeline as pipeline_module

        original = pipeline_module.apply_escape_optimization

        def sabotaged(program, **kwargs):
            original(program, **kwargs)  # mutate for real, then die
            raise RuntimeError("injected escape-stage crash")

        base = Session(self.RECURSIVE_SOURCE).run("plain")
        pipeline_module.apply_escape_optimization = sabotaged
        try:
            session = Session(self.RECURSIVE_SOURCE)
            report = session.optimize(inline=True)
            result = session.run("inline")
        finally:
            pipeline_module.apply_escape_optimization = original
        assert [d["stage"] for d in report.degraded_stages] == ["escape"]
        assert result.output == base.output
        assert result.heap.frame_depth == 1
