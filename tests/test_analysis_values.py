"""Unit tests for the abstract value and tag lattices."""

from repro.analysis.tags import (
    ELEM_FIELD,
    MAX_TAG_DEPTH,
    MAX_TAG_WIDTH,
    NOFIELD,
    TOP,
    TOP_SLOT,
    cap_tags,
    format_tag,
    head,
    head_slots,
    has_nofield,
    make_tag,
)
from repro.analysis.values import (
    BOTTOM,
    PRIM_BOOL,
    PRIM_FLOAT,
    PRIM_INT,
    PRIM_NIL,
    PRIM_STR,
    AbstractVal,
    const_atom,
    join,
    make_val,
    obj_val,
    prim_val,
)


class TestTags:
    def test_nofield_has_no_head(self):
        assert head(NOFIELD) is None

    def test_make_tag_prepends(self):
        slot = (3, "f")
        tag = make_tag(slot, NOFIELD)
        assert head(tag) == slot

    def test_make_tag_caps_depth(self):
        tag = NOFIELD
        for index in range(MAX_TAG_DEPTH + 3):
            tag = make_tag((index, "f"), tag)
        assert len(tag) == MAX_TAG_DEPTH
        # The most recent slot is always retained at the head.
        assert head(tag) == (MAX_TAG_DEPTH + 2, "f")

    def test_head_slots_ignores_nofield(self):
        tags = {NOFIELD, make_tag((1, "a"), NOFIELD), make_tag((2, "b"), NOFIELD)}
        assert head_slots(tags) == {(1, "a"), (2, "b")}

    def test_has_nofield(self):
        assert has_nofield({NOFIELD})
        assert not has_nofield({make_tag((1, "a"), NOFIELD)})

    def test_format_tag(self):
        assert format_tag(NOFIELD) == "NoField"
        assert "f" in format_tag(make_tag((1, "f"), NOFIELD))

    def test_cap_tags_widens(self):
        tags = frozenset(make_tag((i, "f"), NOFIELD) for i in range(MAX_TAG_WIDTH + 1))
        assert cap_tags(tags) == frozenset({TOP})

    def test_cap_tags_top_absorbs(self):
        # Monotonicity: once TOP, always exactly {TOP}.
        tags = frozenset({TOP, make_tag((1, "f"), NOFIELD)})
        assert cap_tags(tags) == frozenset({TOP})

    def test_cap_tags_under_width_unchanged(self):
        tags = frozenset({NOFIELD, make_tag((1, "f"), NOFIELD)})
        assert cap_tags(tags) == tags

    def test_top_head_is_sentinel(self):
        assert head(TOP) == TOP_SLOT

    def test_elem_field_constant(self):
        assert ELEM_FIELD.startswith("@")


class TestAbstractVal:
    def test_bottom(self):
        assert BOTTOM.is_bottom()
        assert not BOTTOM.may_be_object()

    def test_prim_val(self):
        value = prim_val(PRIM_INT, PRIM_FLOAT)
        assert value.prims() == {PRIM_INT, PRIM_FLOAT}
        assert not value.may_be_object()
        assert value.object_contours() == frozenset()

    def test_obj_val(self):
        value = obj_val(7)
        assert value.may_be_object()
        assert value.object_contours() == {7}
        assert NOFIELD in value.tags

    def test_may_be_nil(self):
        assert prim_val(PRIM_NIL).may_be_nil()
        assert not prim_val(PRIM_INT).may_be_nil()

    def test_make_val_drops_tags_on_prims(self):
        value = make_val({PRIM_INT}, {NOFIELD})
        assert value.tags == frozenset()

    def test_make_val_keeps_tags_on_objects(self):
        value = make_val({3, PRIM_NIL}, {NOFIELD})
        assert value.tags == frozenset({NOFIELD})

    def test_make_val_caps_width(self):
        tags = {make_tag((i, "f"), NOFIELD) for i in range(MAX_TAG_WIDTH + 5)}
        value = make_val({1}, tags)
        assert value.tags == frozenset({TOP})

    def test_join_unions(self):
        a = obj_val(1)
        b = obj_val(2, tags=(make_tag((9, "f"), NOFIELD),))
        joined = join(a, b)
        assert joined.object_contours() == {1, 2}
        assert NOFIELD in joined.tags
        assert make_tag((9, "f"), NOFIELD) in joined.tags

    def test_join_identity(self):
        value = obj_val(4)
        assert join(value, BOTTOM) == value
        assert join(value, value) == value

    def test_join_monotone_under_cap(self):
        wide = make_val({1}, {make_tag((i, "f"), NOFIELD) for i in range(MAX_TAG_WIDTH)})
        wider = join(wide, make_val({1}, {make_tag((99, "g"), NOFIELD)}))
        rejoined = join(wider, wide)
        assert rejoined == wider  # TOP absorbed; no oscillation

    def test_const_atom(self):
        assert const_atom(None) == PRIM_NIL
        assert const_atom(True) == PRIM_BOOL  # bool checked before int
        assert const_atom(3) == PRIM_INT
        assert const_atom(2.5) == PRIM_FLOAT
        assert const_atom("s") == PRIM_STR

    def test_hashable(self):
        assert len({obj_val(1), obj_val(1), obj_val(2)}) == 2

    def test_equality_is_structural(self):
        assert AbstractVal(frozenset({1}), frozenset({NOFIELD})) == obj_val(1)
