"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.inlining.decisions import DecisionEngine
from repro.inlining.pipeline import optimize
from repro.ir import compile_source, validate_program
from repro.runtime import run_program

#: The paper's running example (Figures 1-5), used across many tests.
RECTANGLE_SOURCE = """
class Point {
  var x_pos; var y_pos;
  def init(x, y) { this.x_pos = x; this.y_pos = y; }
  def abs() { return sqrt(this.x_pos*this.x_pos + this.y_pos*this.y_pos); }
  def area(p) { return abs(this.x_pos - p.x_pos) * abs(this.y_pos - p.y_pos); }
}
class Point3D : Point { var z_pos; }
class Rectangle {
  var inline lower_left; var inline upper_right;
  def init(ll, ur) { this.lower_left = ll; this.upper_right = ur; }
  def area() { return this.lower_left.area(this.upper_right); }
}
class List {
  var head_item; var tail;
  def init(h, t) { this.head_item = h; this.tail = t; }
}
def head(l) { return l.head_item; }
def do_rectangle(ll, ur) {
  var r = new Rectangle(ll, ur);
  print(r.area());
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  print(head(l1).abs());
  print(head(l2).abs());
}
def main() {
  var p1 = new Point(1.0, 2.0);
  var p2 = new Point(3.0, 4.0);
  do_rectangle(p1, p2);
  var p3 = new Point3D(0.0, 0.0);
  var p4 = new Point3D(5.0, 5.0);
  do_rectangle(p3, p4);
}
"""


def run_source(source: str, **kwargs):
    """Compile and interpret a source string; returns the RunResult."""
    program = compile_source(source)
    validate_program(program)
    return run_program(program, **kwargs)


def output_of(source: str) -> list[str]:
    return run_source(source).output


def optimize_source(source: str, **kwargs):
    """Compile and optimize; returns the OptimizeReport."""
    return optimize(compile_source(source), **kwargs)


def check_equivalence(source: str, **optimize_kwargs) -> tuple:
    """The backbone invariant: the transformed program must produce
    identical observable output.  Returns (base RunResult, opt RunResult,
    OptimizeReport)."""
    program = compile_source(source)
    base = run_program(program)
    report = optimize(program, **optimize_kwargs)
    validate_program(report.program)
    transformed = run_program(report.program)
    assert transformed.output == base.output, (
        f"output diverged:\n  base {base.output}\n  opt  {transformed.output}"
    )
    return base, transformed, report


def plan_for(source: str, config: AnalysisConfig | None = None):
    """Analyze a source string and return the inlining plan."""
    program = compile_source(source)
    result = analyze(program, config)
    return DecisionEngine(result).plan()


def accepted_names(plan) -> set[str]:
    return {c.describe() for c in plan.accepted()}


def rejected_names(plan) -> dict[str, str]:
    return {c.describe(): c.reject_reason for c in plan.rejected()}


@pytest.fixture(scope="session")
def bench_runs():
    """All four paper benchmarks, every build, run serially (cached)."""
    from repro.bench import BENCHMARKS, run_named

    return {name: run_named(name) for name in BENCHMARKS}


@pytest.fixture(scope="session")
def perf_runs():
    """The serial Figure-17 suite (cached; the parallel differential
    test compares against this same run)."""
    from repro.bench import run_performance_suite

    return run_performance_suite()


@pytest.fixture(scope="session")
def rectangle_program():
    return compile_source(RECTANGLE_SOURCE)


@pytest.fixture(scope="session")
def rectangle_analysis(rectangle_program):
    return analyze(rectangle_program)


@pytest.fixture(scope="session")
def rectangle_plan(rectangle_analysis):
    return DecisionEngine(rectangle_analysis).plan()
