"""Parser unit tests."""

import pytest

from repro.lang import ParseError, ast, parse_program


def parse_expr(text):
    """Parse `def main() { return <text>; }` and extract the expression."""
    program = parse_program(f"def main() {{ return {text}; }}")
    (ret,) = program.functions[0].body
    return ret.value


def parse_stmts(text):
    program = parse_program(f"def main() {{ {text} }}")
    return program.functions[0].body


class TestDeclarations:
    def test_empty_program(self):
        program = parse_program("")
        assert program.classes == ()
        assert program.functions == ()

    def test_class_with_fields_and_methods(self):
        program = parse_program(
            "class A { var x; var inline y; def m(a, b) { return a; } }"
        )
        cls = program.classes[0]
        assert cls.name == "A"
        assert cls.superclass is None
        assert [f.name for f in cls.fields] == ["x", "y"]
        assert [f.declared_inline for f in cls.fields] == [False, True]
        assert cls.methods[0].name == "m"
        assert cls.methods[0].params == ("a", "b")

    def test_subclass(self):
        program = parse_program("class A {} class B : A {}")
        assert program.classes[1].superclass == "A"

    def test_global_with_initializer(self):
        program = parse_program("var g = 5;")
        assert program.globals[0].name == "g"
        assert isinstance(program.globals[0].init, ast.IntLiteral)

    def test_global_without_initializer(self):
        program = parse_program("var g;")
        assert program.globals[0].init is None

    def test_function(self):
        program = parse_program("def f(x) { return x; }")
        assert program.find_function("f") is not None
        assert program.find_function("nope") is None
        assert program.find_class("f") is None

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def f(a, a) { }")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse_program("5 + 5;")

    def test_missing_class_body(self):
        with pytest.raises(ParseError):
            parse_program("class A")

    def test_field_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("class A { var x }")


class TestStatements:
    def test_var_decl(self):
        (stmt,) = parse_stmts("var x = 1;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_assignment_to_name(self):
        stmts = parse_stmts("var x = 1; x = 2;")
        assert isinstance(stmts[1], ast.Assign)
        assert isinstance(stmts[1].target, ast.NameRef)

    def test_assignment_to_field(self):
        (stmt,) = parse_stmts("this.f = 2;")
        assert isinstance(stmt.target, ast.FieldAccess)

    def test_assignment_to_index(self):
        stmts = parse_stmts("var a = array(3); a[0] = 2;")
        assert isinstance(stmts[1].target, ast.IndexAccess)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_stmts("1 + 2 = 3;")

    def test_if_else(self):
        (stmt,) = parse_stmts("if (1) { return 1; } else { return 2; }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        (stmt,) = parse_stmts("if (1) return 1;")
        assert stmt.else_body == ()

    def test_dangling_else_binds_to_inner_if(self):
        (stmt,) = parse_stmts("if (1) if (2) return 1; else return 2;")
        assert stmt.else_body == ()
        inner = stmt.then_body[0]
        assert isinstance(inner, ast.If)
        assert len(inner.else_body) == 1

    def test_while(self):
        (stmt,) = parse_stmts("while (1) { break; }")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body[0], ast.Break)

    def test_for_full_header(self):
        (stmt,) = parse_stmts("for (var i = 0; i < 3; i = i + 1) { continue; }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert stmt.condition is not None
        assert stmt.step is not None

    def test_for_empty_header(self):
        (stmt,) = parse_stmts("for (;;) { break; }")
        assert stmt.init is None and stmt.condition is None and stmt.step is None

    def test_return_without_value(self):
        (stmt,) = parse_stmts("return;")
        assert stmt.value is None

    def test_nested_block(self):
        (stmt,) = parse_stmts("{ var x = 1; }")
        assert isinstance(stmt, ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("var x = 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("def main() { if (1) {")


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expr("42"), ast.IntLiteral)
        assert isinstance(parse_expr("4.5"), ast.FloatLiteral)
        assert isinstance(parse_expr('"s"'), ast.StringLiteral)
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False
        assert isinstance(parse_expr("nil"), ast.NilLiteral)

    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_add_over_comparison(self):
        expr = parse_expr("1 + 2 < 3 + 4")
        assert expr.op == "<"

    def test_precedence_comparison_over_equality(self):
        expr = parse_expr("1 < 2 == 3 < 4")
        assert expr.op == "=="

    def test_precedence_equality_over_and(self):
        expr = parse_expr("1 == 2 && 3 == 4")
        assert expr.op == "&&"

    def test_precedence_and_over_or(self):
        expr = parse_expr("1 || 2 && 3")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_binds_tighter_than_mul(self):
        expr = parse_expr("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_double_negation(self):
        expr = parse_expr("!!x")
        assert isinstance(expr.operand, ast.UnaryOp)

    def test_field_access_chain(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name == "c"
        assert expr.obj.field_name == "b"

    def test_method_call(self):
        expr = parse_expr("a.m(1, 2)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method_name == "m"
        assert len(expr.args) == 2

    def test_method_call_on_call_result(self):
        expr = parse_expr("a.m().n()")
        assert expr.method_name == "n"
        assert isinstance(expr.receiver, ast.MethodCall)

    def test_index_chain(self):
        expr = parse_expr("a[0][1]")
        assert isinstance(expr, ast.IndexAccess)
        assert isinstance(expr.array, ast.IndexAccess)

    def test_mixed_postfix(self):
        expr = parse_expr("a.b[0].m()")
        assert isinstance(expr, ast.MethodCall)

    def test_new_expression(self):
        expr = parse_expr("new Point(1, 2)")
        assert isinstance(expr, ast.NewObject)
        assert expr.class_name == "Point"

    def test_new_requires_args_parens(self):
        with pytest.raises(ParseError):
            parse_expr("new Point")

    def test_super_call(self):
        program = parse_program(
            "class A { def m() { return 0; } } "
            "class B : A { def m() { return super.m(); } }"
        )
        ret = program.classes[1].methods[0].body[0]
        assert isinstance(ret.value, ast.SuperCall)

    def test_function_call_vs_name(self):
        assert isinstance(parse_expr("f(1)"), ast.FunctionCall)
        assert isinstance(parse_expr("f"), ast.NameRef)

    def test_this(self):
        assert isinstance(parse_expr("this"), ast.ThisRef)

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")
