"""The compile daemon end-to-end: protocol, caching, robustness, traces.

Every test here runs a real daemon (:class:`ServiceThread`) on a unix
socket under ``tmp_path`` and talks to it with real clients — the same
stack ``repro serve`` / ``repro loadgen`` use.
"""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.service import (
    ProtocolError,
    Request,
    Response,
    ServiceClient,
    ServiceError,
    ServiceThread,
    decode_request,
    decode_response,
)
from repro.session import CompileConfig

SOURCE = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(5)); print(c.f.v); }
"""

OTHER_SOURCE = """
class Box { var item; def init(i) { this.item = i; } }
def main() { var b = new Box(11); print(b.item); }
"""


@pytest.fixture()
def sock(tmp_path):
    return str(tmp_path / "service.sock")


@pytest.fixture()
def service(sock):
    with ServiceThread(sock, workers=2) as handle:
        yield handle


class TestProtocol:
    def test_request_roundtrip(self):
        request = Request(op="optimize", id=3, source=SOURCE, timeout=5.0)
        decoded = decode_request(request.encode())
        assert (decoded.op, decoded.id, decoded.timeout) == ("optimize", 3, 5.0)
        assert decoded.source == SOURCE

    def test_response_encoding_is_canonical(self):
        # sort_keys + fixed separators: the bit-identical-reply contract.
        a = Response(id=1, result={"b": 2, "a": 1}).encode()
        b = Response(id=1, result={"a": 1, "b": 2}).encode()
        assert a == b

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(b'{"op": "explode"}\n')

    def test_work_ops_require_source(self):
        with pytest.raises(ProtocolError, match="requires a string"):
            decode_request(b'{"op": "optimize"}\n')

    def test_bad_json_and_bad_timeout_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"not json\n")
        with pytest.raises(ProtocolError, match="timeout"):
            decode_request(b'{"op": "ping", "timeout": -1}\n')

    def test_response_roundtrip(self):
        encoded = Response(id=7, result={"x": 1}, cached=True).encode()
        decoded = decode_response(encoded)
        assert decoded.ok and decoded.cached and decoded.result == {"x": 1}

    @pytest.mark.parametrize(
        "result",
        [
            {"b": 2, "a": 1},
            {"nested": {"z": [1, 2, {"k": None}], "s": "text"}},
            [1, "two", 3.5, False],
        ],
    )
    def test_result_bytes_splice_matches_reserialization(self, result):
        """Spliced pre-encoded bytes are bit-identical to a re-encode."""
        result_bytes = json.dumps(
            result, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        for kwargs in (
            {},
            {"cached": True},
            {"cached": True, "coalesced": True, "elapsed_ms": 0.417},
        ):
            plain = Response(id=9, result=result, **kwargs).encode()
            spliced = Response(
                id=9, result_bytes=result_bytes, **kwargs
            ).encode()
            assert spliced == plain
            assert decode_response(spliced).result == result


class TestBasicOps:
    def test_ping_and_stats(self, service, sock):
        with ServiceClient(sock) as client:
            assert client.ping()
            stats = client.stats()
        assert stats["workers"] == 2
        assert stats["requests"] >= 1
        assert "store" in stats and "sessions" in stats

    def test_compile_answers_in_process(self, service, sock):
        with ServiceClient(sock) as client:
            response = client.compile(SOURCE, path="p.icc")
        assert response.result["classes"] == 2
        assert response.result["callables"] >= 3

    def test_optimize_and_run(self, service, sock):
        with ServiceClient(sock) as client:
            opt = client.optimize(SOURCE)
            run = client.run(SOURCE, build="inline")
        assert opt.result["op"] == "optimize"
        assert run.result["output"] == ["5"]
        assert run.result["cycles"] > 0

    def test_run_matches_plain_semantics(self, service, sock):
        with ServiceClient(sock) as client:
            plain = client.run(SOURCE, build="plain")
            inline = client.run(SOURCE, build="inline")
        assert plain.result["output"] == inline.result["output"] == ["5"]

    def test_error_reply_not_connection_death(self, service, sock):
        with ServiceClient(sock) as client:
            response = client.request("optimize", source="def main( {{{ broken")
            assert not response.ok and response.error
            assert client.ping()  # same connection still serves


class TestArtifactCache:
    def test_warm_reply_bit_identical_to_cold(self, service, sock):
        """The differential gate: a cache hit replays the exact payload."""
        config = CompileConfig().to_dict()
        with ServiceClient(sock) as client:
            cold = client.request("optimize", source=SOURCE, config=config)
            warm = client.request("optimize", source=SOURCE, config=config)
        assert cold.ok and not cold.cached
        assert warm.ok and warm.cached
        canonical = lambda r: json.dumps(
            r.result, sort_keys=True, separators=(",", ":")
        ).encode()
        assert canonical(cold) == canonical(warm)

    def test_warm_reply_served_from_cached_bytes(self, service, sock):
        # The warm path skips unpickle + re-encode: the store remembers
        # the canonical reply bytes and the daemon splices them in.
        config = CompileConfig().to_dict()
        with ServiceClient(sock) as client:
            cold = client.request("optimize", source=SOURCE, config=config)
            warm = client.request("optimize", source=SOURCE, config=config)
            stats = client.stats()
        assert warm.cached and warm.result == cold.result
        assert stats["store"]["reply_bytes_hits"] >= 1

    def test_cache_key_includes_config(self, service, sock):
        with ServiceClient(sock) as client:
            client.optimize(SOURCE, config=CompileConfig())
            different = client.optimize(SOURCE, config=CompileConfig(inline=False))
        assert not different.cached  # different config -> different address

    def test_cache_shared_across_connections_and_tenants(self, service, sock):
        with ServiceClient(sock, tenant="alice") as client:
            client.optimize(OTHER_SOURCE)
        with ServiceClient(sock, tenant="bob") as client:
            warm = client.optimize(OTHER_SOURCE)
        assert warm.cached

    def test_concurrent_identical_requests_compile_once(self, service, sock):
        """N identical in-flight requests coalesce into one worker dispatch."""
        replies = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def _ask():
            with ServiceClient(sock) as client:
                barrier.wait()
                response = client.request("optimize", source=OTHER_SOURCE)
            with lock:
                replies.append(response)

        threads = [threading.Thread(target=_ask) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r.ok for r in replies)
        cold = [r for r in replies if not r.cached and not r.coalesced]
        assert len(cold) == 1  # exactly one dispatch did the work
        payloads = {json.dumps(r.result, sort_keys=True) for r in replies}
        assert len(payloads) == 1  # everyone got the same answer


class TestRobustness:
    def test_request_timeout_replies_and_daemon_survives(self, service, sock):
        with ServiceClient(sock) as client:
            response = client.request(
                "optimize", source=OTHER_SOURCE, timeout=0.001
            )
            assert not response.ok
            assert "timeout" in response.error
            assert client.ping()
            # The timed-out work kept running and landed in the store:
            # the retry answers without recompiling from scratch.
            retry = client.request("optimize", source=OTHER_SOURCE)
            assert retry.ok

    def test_worker_crash_recovers(self, sock):
        with ServiceThread(sock, workers=1, allow_test_ops=True) as handle:
            with ServiceClient(sock) as client:
                response = client.request("crash", source=SOURCE)
                assert not response.ok
                assert "died twice" in response.error
                # The daemon rebuilt the pool and keeps serving.
                assert client.ping()
                assert client.optimize(SOURCE).ok
                stats = client.stats()
            assert stats["crashes"] >= 2  # original + the one requeue
            assert stats["pool_rebuilds"] >= 2
        assert handle.service.stats.crashes >= 2

    def test_crash_op_is_gated(self, service, sock):
        with ServiceClient(sock) as client:
            response = client.request("crash", source=SOURCE)
        assert not response.ok
        assert "allow-test-ops" in response.error

    def test_graceful_shutdown_drains_and_unlinks(self, sock):
        handle = ServiceThread(sock, workers=1).start()
        try:
            with ServiceClient(sock) as client:
                client.optimize(SOURCE)
                assert client.shutdown().result == "draining"
        finally:
            handle.stop()
        assert not os.path.exists(sock)
        with pytest.raises((ServiceError, OSError)):
            ServiceClient(sock).ping()


class TestServiceTracing:
    def test_run_dir_trace_renders_multi_lane_chrome(self, tmp_path, sock):
        trace_base = tmp_path / "traces"
        with ServiceThread(sock, workers=2, trace_dir=str(trace_base)) as handle:
            run_dir = handle.service.run_dir
            with ServiceClient(sock) as client:
                client.optimize(SOURCE)
                client.optimize(OTHER_SOURCE)
        trace_path = os.path.join(run_dir, "service.jsonl")
        assert os.path.exists(trace_path)

        # `repro export chrome` on the daemon's shard: no manual merging.
        out = str(tmp_path / "service.chrome.json")
        assert main(["export", "chrome", trace_path, "-o", out]) == 0
        payload = json.loads(open(out).read())
        events = payload["traceEvents"]
        work_spans = [
            e for e in events if e.get("ph") == "X" and e["name"] == "service.work"
        ]
        assert len(work_spans) >= 2
        # Each worker shard is its own lane (tid) in the rendered trace.
        assert len({e["tid"] for e in work_spans}) >= 2
        lanes = [e for e in events if e.get("ph") == "M" and e["name"] == "thread_name"]
        assert len(lanes) >= 2
        # The daemon's own request/cache events ride along as instants.
        assert any(e.get("ph") == "i" for e in events)

    def test_successive_runs_get_distinct_dirs(self, tmp_path):
        from repro.service import make_run_dir

        base = str(tmp_path / "traces")
        first = make_run_dir(base)
        second = make_run_dir(base)
        assert first != second
        assert os.path.isdir(first) and os.path.isdir(second)


class TestPercentile:
    def test_single_sample_is_every_percentile(self):
        from repro.service.loadgen import percentile

        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_median_of_two_is_the_lower_sample(self):
        # Nearest rank = ceil(0.5 * 2) = 1.  The old round(q*n + 0.5)
        # formula rounded 1.5 half-to-even up to rank 2 and reported the
        # *larger* sample as the median.
        from repro.service.loadgen import percentile

        assert percentile([1.0, 9.0], 0.5) == 1.0

    @pytest.mark.parametrize(
        "n,q,expected_rank",
        [
            (1, 0.5, 1), (1, 0.95, 1), (1, 0.99, 1),
            (2, 0.5, 1), (2, 0.95, 2), (2, 0.99, 2),
            (3, 0.5, 2), (3, 0.95, 3), (3, 0.99, 3),
            (4, 0.5, 2), (4, 0.95, 4), (4, 0.99, 4),
        ],
    )
    def test_nearest_rank_boundaries(self, n, q, expected_rank):
        from repro.service.loadgen import percentile

        samples = [float(i + 1) for i in range(n)]
        assert percentile(samples, q) == float(expected_rank)

    def test_order_does_not_matter(self):
        from repro.service.loadgen import percentile

        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_rejected(self):
        from repro.service.loadgen import percentile

        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestLoadgen:
    def test_self_hosted_loadgen_meets_slo_shape(self, tmp_path, sock):
        from repro.service import run_loadgen

        corpus = {"tiny": SOURCE, "other": OTHER_SOURCE}
        with ServiceThread(sock, workers=2):
            report = run_loadgen(
                sock, requests=24, concurrency=4, corpus=corpus
            )
        assert report.errors == 0
        assert report.latency is not None and report.latency.count == 24
        assert report.cached_replies > 0
        assert report.throughput_rps > 0
        speedup = report.warm_speedup()
        assert speedup is not None and speedup > 1.0
        assert report.server["store"]["hits"] > 0

    def test_report_feeds_perf_history(self, tmp_path, sock):
        from repro.obs.history import append_entry, load_history
        from repro.service import report_entry, run_loadgen

        with ServiceThread(sock, workers=1):
            report = run_loadgen(
                sock, requests=6, concurrency=2, corpus={"tiny": SOURCE}
            )
        entry = report_entry(report, note="unit test")
        assert entry["config"]["suite"] == "service-loadgen"
        phases = entry["benchmarks"]["service"]["optimize"]["phases"]
        assert "latency_p50" in phases and "latency_warm_p50" in phases
        ledger = str(tmp_path / "PERF_HISTORY.jsonl")
        append_entry(ledger, entry)
        loaded = load_history(ledger)
        assert len(loaded) == 1
        assert loaded[0]["config_key"] == entry["config_key"]

    def test_loadgen_cli_self_host(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # the ledger lands in cwd
        out_json = str(tmp_path / "report.json")
        code = main(
            [
                "loadgen",
                "--self-host",
                "--requests", "12",
                "--concurrency", "3",
                "--json", out_json,
                "--no-record",
            ]
        )
        assert code == 0
        rendered = capsys.readouterr().out
        assert "errors: 0" in rendered
        assert "p50" in rendered and "p99" in rendered
        payload = json.loads(open(out_json).read())
        assert payload["errors"] == 0
        assert payload["latency"]["count"] == 12


class TestChaosAndRobustness:
    """Fault injection, stale sockets, budgets: the daemon must degrade
    to clean error replies, never to wrong answers or a dead process."""

    def test_stale_socket_is_reclaimed(self, sock):
        import socket as socket_module

        # A daemon SIGKILLed mid-serve leaves its bound path on disk
        # with nothing listening behind it.
        stale = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        stale.bind(sock)
        stale.close()
        assert os.path.exists(sock)
        with ServiceThread(sock, workers=1) as handle:
            with ServiceClient(handle.socket_path) as client:
                assert client.ping()

    def test_live_socket_is_not_stolen(self, service, sock):
        import asyncio

        from repro.service.daemon import ReproService

        async def try_start():
            usurper = ReproService(sock, workers=1)
            await usurper.start()

        with pytest.raises(RuntimeError, match="already listening"):
            asyncio.run(try_start())
        # The original daemon is unharmed.
        with ServiceClient(sock) as client:
            assert client.ping()

    def test_client_connect_retry_waits_for_bind(self, sock):
        import time

        handle_box = {}

        def late_start():
            time.sleep(0.3)
            handle_box["handle"] = ServiceThread(sock, workers=1).start()

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            # Without retries this connect would FileNotFoundError
            # immediately; with backoff it outwaits the bind.
            with ServiceClient(sock, connect_retries=8) as client:
                assert client.ping()
        finally:
            starter.join()
            handle_box["handle"].stop()

    def test_injected_error_becomes_clean_error_reply(self, sock):
        from repro.service import FaultPlan

        plan = FaultPlan(error_rate=1.0)
        with ServiceThread(sock, workers=1, fault_plan=plan) as handle:
            with ServiceClient(handle.socket_path) as client:
                response = client.request("run", source=SOURCE, build="plain")
                assert not response.ok
                assert "InjectedFault" in response.error
                # The daemon itself is fine: ops that skip the worker
                # pool still answer.
                assert client.ping()

    def test_worker_crash_is_survived(self, sock):
        from repro.service import FaultPlan

        plan = FaultPlan(crash_rate=1.0)
        with ServiceThread(sock, workers=1, fault_plan=plan) as handle:
            with ServiceClient(handle.socket_path, timeout=60.0) as client:
                response = client.request("run", source=SOURCE, build="plain")
                assert not response.ok  # the request fails cleanly...
                assert client.ping()  # ...and the daemon keeps serving

    def test_corrupt_artifact_never_reaches_clients(self, sock):
        from repro.service import FaultPlan

        plan = FaultPlan(corrupt_rate=1.0)
        with ServiceThread(sock, workers=1, fault_plan=plan) as handle:
            with ServiceClient(handle.socket_path) as client:
                first = client.run(SOURCE, build="plain")
                second = client.run(SOURCE, build="plain")
                assert first.result["output"] == ["5"]
                # The poisoned store entry is detected on the warm path
                # (corrupt-pickle-as-miss) and recompiled, so the second
                # reply is correct too — just not warm.
                assert second.result["output"] == ["5"]
                stats = client.stats()
                assert stats["injected_corrupt"] >= 1

    def test_resource_budget_is_a_clean_error_reply(self, service, sock):
        with ServiceClient(sock) as client:
            response = client.request(
                "run",
                source="def main() { while (true) { } }",
                build="plain",
                max_steps=10_000,
            )
            assert not response.ok
            assert "StepLimitExceeded" in response.error
            assert client.ping()

    def test_budget_is_part_of_the_cache_key(self, service, sock):
        # Same program, different budgets: replies must not alias.
        source = "def main() { var i = 0; while (i < 100000) { i = i + 1; } print(i); }"
        with ServiceClient(sock) as client:
            tight = client.request("run", source=source, build="plain", max_steps=1_000)
            roomy = client.request("run", source=source, build="plain")
            assert not tight.ok and "StepLimitExceeded" in tight.error
            assert roomy.ok and roomy.result["output"] == ["100000"]

    def test_chaos_loadgen_has_zero_incorrect_replies(self, sock):
        from repro.service import FaultPlan, run_loadgen

        plan = FaultPlan(error_rate=0.1, corrupt_rate=0.1, seed=7)
        with ServiceThread(sock, workers=1, fault_plan=plan):
            report = run_loadgen(
                sock,
                requests=30,
                concurrency=3,
                op="run",
                build="plain",
                corpus={"a": SOURCE, "b": OTHER_SOURCE},
                verify=True,
            )
        assert report.verified
        assert report.incorrect == 0
        assert report.incorrect_samples == []
