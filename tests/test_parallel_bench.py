"""The parallel benchmark harness: (benchmark, build) pairs on a process
pool must produce figures bit-identical to the serial path, with every
worker's trace shard merged losslessly into the caller's tracer.

The cheap tests drive ``_run_matrix`` directly with tiny programs; the
full-suite differential (the acceptance bar) re-runs the Figure-17 suite
with ``jobs=4`` and compares it against the serial session fixture.
"""

import pytest

from repro.bench.figures import field_counts, figure14, figure15, figure16, figure17
from repro.bench.harness import (
    BUILDS,
    _anchor_build,
    _run_matrix,
    run_all,
    run_benchmark,
    run_performance_suite,
)
from repro.bench.metadata import BenchmarkInfo
from repro.obs import MemorySink, Tracer

TINY_A = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(4)); print(c.f.v); }
"""
TINY_B = """
class Q { var w; def init(w) { this.w = w; } }
class D { var g; def init(q) { this.g = q; } }
def main() { var d = new D(new Q(7)); print(d.g.w); print(2); }
"""

TINY_SPECS = {
    "tiny-a": (TINY_A, BenchmarkInfo(name="tiny-a", description="a", ideal_inlinable=1)),
    "tiny-b": (TINY_B, BenchmarkInfo(name="tiny-b", description="b", ideal_inlinable=1)),
}


@pytest.fixture(scope="module")
def tiny_parallel():
    tracer = Tracer(MemorySink())
    runs = _run_matrix(TINY_SPECS, BUILDS, jobs=2, tracer=tracer)
    return runs, tracer


@pytest.fixture(scope="module")
def tiny_serial():
    return {
        name: run_benchmark(name, source, info)
        for name, (source, info) in TINY_SPECS.items()
    }


class TestTinyMatrix:
    def test_results_match_serial(self, tiny_parallel, tiny_serial):
        runs, _ = tiny_parallel
        assert list(runs) == list(tiny_serial)
        for name, serial in tiny_serial.items():
            parallel = runs[name]
            assert parallel.reference_output == serial.reference_output
            assert list(parallel.builds) == list(serial.builds)
            for build in BUILDS:
                par, ser = parallel.builds[build], serial.builds[build]
                assert par.run.output == ser.run.output
                assert par.cycles == ser.cycles
                assert par.code_size == ser.code_size
                assert par.run.stats.instructions == ser.run.stats.instructions

    def test_figure17_renders_identically(self, tiny_parallel, tiny_serial):
        runs, _ = tiny_parallel
        assert figure17(runs).render() == figure17(tiny_serial).render()

    def test_field_counts_consistent_with_anchor_program(self, tiny_parallel, tiny_serial):
        # Figure 14 cross-references the candidate plan against
        # BenchmarkRun.program by instruction uid; both must come from the
        # anchor worker's compile.
        runs, _ = tiny_parallel
        for name in TINY_SPECS:
            assert (
                field_counts(runs[name]).as_row()
                == field_counts(tiny_serial[name]).as_row()
            )

    def test_phase_seconds_present_per_build(self, tiny_parallel):
        runs, _ = tiny_parallel
        for run in runs.values():
            for build in BUILDS:
                phases = run.builds[build].phase_seconds
                assert phases.get("analyze", 0.0) > 0.0
                assert "transform" in phases

    def test_anchor_is_inline_build(self):
        assert _anchor_build(BUILDS) == "inline"
        assert _anchor_build(("noinline", "manual")) == "noinline"

    def test_worker_traces_merge_into_caller(self, tiny_parallel):
        runs, tracer = tiny_parallel
        pair_count = len(TINY_SPECS) * len(BUILDS)
        assert tracer.span_totals["bench.build"][0] == pair_count
        events = tracer._sink.events
        begin_ids = [e["id"] for e in events if e["ev"] == "span_begin"]
        assert len(begin_ids) == len(set(begin_ids))  # merge remapped ids
        decisions = [
            e for e in events if e["ev"] == "event" and e["name"] == "decision"
        ]
        assert decisions  # the decision trace survives the round-trip
        builds_seen = {
            (e["meta"]["benchmark"], e["meta"]["build"])
            for e in events
            if e["ev"] == "span_begin" and e["name"] == "bench.build"
        }
        assert len(builds_seen) == pair_count

    def test_jobs_one_and_many_agree_through_public_api(self):
        # The public entry points route jobs=1 serially and jobs>1 through
        # the pool; both must agree (smoke-level: one tiny benchmark set).
        serial = _run_matrix(TINY_SPECS, BUILDS, jobs=2)
        assert figure17(serial).render() == figure17(
            {
                name: run_benchmark(name, source, info)
                for name, (source, info) in TINY_SPECS.items()
            }
        ).render()


class TestSerialSharedTracerAttribution:
    def test_per_build_phase_seconds_sum_to_merged_totals(self):
        # Every build owns a tracer; the caller's tracer sees the merged
        # totals, and per-build attribution never double-counts.
        tracer = Tracer(MemorySink())
        run = run_benchmark("tiny-a", TINY_A, tracer=tracer)
        per_build = [run.builds[b].phase_seconds.get("analyze", 0.0) for b in BUILDS]
        assert all(t >= 0.0 for t in per_build)
        merged = tracer.span_totals.get("analyze", [0, 0.0])
        assert sum(per_build) == pytest.approx(merged[1])
        assert tracer.span_totals["bench.build"][0] == len(BUILDS)


class TestFullSuiteDifferential:
    """Acceptance: the full Figure-17 suite under ``--jobs 4`` is
    bit-identical to the serial run (timings excepted, which no figure
    consumes)."""

    @pytest.fixture(scope="class")
    def parallel_perf_runs(self):
        return run_performance_suite(jobs=4)

    def test_figure17_bit_identical(self, perf_runs, parallel_perf_runs):
        assert (
            figure17(parallel_perf_runs).render() == figure17(perf_runs).render()
        )

    def test_stats_and_sizes_identical(self, perf_runs, parallel_perf_runs):
        assert list(parallel_perf_runs) == list(perf_runs)
        for name, serial in perf_runs.items():
            parallel = parallel_perf_runs[name]
            assert parallel.reference_output == serial.reference_output
            for build in BUILDS:
                par, ser = parallel.builds[build], serial.builds[build]
                assert par.cycles == ser.cycles, (name, build)
                assert par.code_size == ser.code_size, (name, build)
                assert par.run.stats.allocations == ser.run.stats.allocations
                assert par.run.stats.heap_reads == ser.run.stats.heap_reads

    def test_figures_14_to_16_bit_identical(self, bench_runs):
        parallel = run_all(jobs=4)
        for figure in (figure14, figure15, figure16):
            assert figure(parallel).render() == figure(bench_runs).render()
