"""The incremental dependency-tracked analysis engine.

Differential tests prove the incremental engine (clean-pop skipping,
dirty-register local passes, single-sweep fact recording) produces
results bit-identical to the from-scratch reference
(``AnalysisConfig(incremental=False)``) on every benchmark program, and
targeted unit tests pin the dependency-invalidation machinery: slot
writes, signature growth, and contour GC.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisCache, AnalysisConfig, analyze
from repro.analysis.engine import FlowAnalysis
from repro.bench.programs import oopack, polyover, richards, silo
from repro.ir import compile_source
from repro.obs import Tracer

from conftest import RECTANGLE_SOURCE

#: Every source program shipped by ``repro.bench.programs``.
BENCH_SOURCES = {
    "oopack": oopack.SOURCE,
    "richards": richards.SOURCE,
    "silo": silo.SOURCE,
    "polyover": polyover.SOURCE,
    "polyover_array": polyover.SOURCE_ARRAY,
    "polyover_list": polyover.SOURCE_LIST,
}


def result_snapshot(result):
    """Every observable piece of an AnalysisResult, as comparable values."""
    manager = result.manager
    return {
        "slots": result.slots,
        "globals": result.global_values,
        "edges": {
            cid: {uid: frozenset(v) for uid, v in sites.items()}
            for cid, sites in result.call_edges.items()
        },
        "allocations": result.allocations,
        "facts": result.facts,
        "stores": result.stores,
        "identity_sites": result.identity_sites,
        "method_contours": {
            cid: (c.callable_name, c.key, c.arg_values, c.ret,
                  frozenset(c.callers), c.summary)
            for cid, c in manager.method_contours.items()
        },
        "object_contours": {
            cid: (c.class_name, c.site_uid, c.creator_id, c.is_array, c.summary)
            for cid, c in manager.object_contours.items()
        },
        "widened": (
            frozenset(manager.widened_callables),
            frozenset(manager.widened_sites),
        ),
    }


def assert_identical(source: str, name: str, **config_kwargs) -> None:
    program = compile_source(source, name)
    reference = analyze(program, AnalysisConfig(incremental=False, **config_kwargs))
    incremental = analyze(program, AnalysisConfig(incremental=True, **config_kwargs))
    ref_snap = result_snapshot(reference)
    inc_snap = result_snapshot(incremental)
    for key in ref_snap:
        assert inc_snap[key] == ref_snap[key], f"{name}: {key} diverged"


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(BENCH_SOURCES))
    def test_bench_program_results_identical(self, name):
        assert_identical(BENCH_SOURCES[name], f"{name}.icc")

    def test_rectangle_identical(self):
        assert_identical(RECTANGLE_SOURCE, "rectangle.icc")

    def test_identical_under_concert_sensitivity(self):
        from repro.analysis import SENSITIVITY_CONCERT

        assert_identical(
            BENCH_SOURCES["polyover"], "polyover.icc",
            sensitivity=SENSITIVITY_CONCERT,
        )

    def test_identical_under_widening_pressure(self):
        # Tiny contour caps force widening on richards; the widen hook must
        # keep both modes converging onto the same summary state.
        assert_identical(
            BENCH_SOURCES["richards"], "richards.icc",
            max_method_contours_per_callable=4,
            max_object_contours_per_site=2,
        )

    def test_rerun_after_quiescence_skips_clean_contours(self):
        # With complete dependency tracking a first run rarely pops a clean
        # contour (enqueues only happen on growth), but re-running a
        # quiescent engine is pure skip: the entry contours pop clean and
        # every record pass hits its dirty bit.
        program = compile_source(BENCH_SOURCES["richards"], "richards.icc")
        flow = FlowAnalysis(program, AnalysisConfig(incremental=True))
        first = result_snapshot(flow.run())
        evals_before = flow._evals
        second = result_snapshot(flow.run())
        assert flow._evals == evals_before
        assert flow._eval_skips >= 2  # @global_init and main popped clean
        assert flow._record_skips >= len(flow.manager.method_contours)
        assert second == first

    def test_from_scratch_never_skips(self):
        program = compile_source(BENCH_SOURCES["oopack"], "oopack.icc")
        tracer = Tracer()
        analyze(program, AnalysisConfig(incremental=False), tracer)
        assert tracer.counters.get("analysis.eval_skips", 0) == 0


SLOT_DEP_SOURCE = """
class Box { var item; def init(v) { this.item = v; } }
def reader(b) { return b.item; }
def main() {
  var b = new Box(1);
  print(reader(b));
  b.item = 2.5;
  print(reader(b));
}
"""


def _run_flow(source: str, **config_kwargs) -> FlowAnalysis:
    program = compile_source(source, "test.icc")
    flow = FlowAnalysis(program, AnalysisConfig(**config_kwargs))
    flow.run()
    return flow


def _contour_named(flow: FlowAnalysis, name: str):
    matches = [
        c for c in flow.manager.method_contours.values() if c.callable_name == name
    ]
    assert matches, f"no live contour for {name}"
    return matches[0]


class TestDependencyInvalidation:
    def test_slot_read_registers_dependency(self):
        flow = _run_flow(SLOT_DEP_SOURCE)
        reader = _contour_named(flow, "reader")
        slots = flow._dep_slots[reader.id]
        assert any(field == "item" for _cid, field in slots)
        for slot in slots:
            assert reader.id in flow._slot_readers[slot]

    def test_slot_write_marks_reader_stale(self):
        flow = _run_flow(SLOT_DEP_SOURCE)
        reader = _contour_named(flow, "reader")
        assert not flow._contour_stale(reader)
        slot = next(s for s in flow._dep_slots[reader.id] if s[1] == "item")
        flow._slot_version[slot] = flow._bump()
        assert flow._contour_stale(reader)

    def test_signature_growth_marks_contour_stale(self):
        flow = _run_flow(SLOT_DEP_SOURCE)
        reader = _contour_named(flow, "reader")
        assert not flow._contour_stale(reader)
        reader.args_version = flow._bump()
        assert flow._contour_stale(reader)

    def test_callee_return_growth_marks_caller_stale(self):
        flow = _run_flow(SLOT_DEP_SOURCE)
        main = _contour_named(flow, "main")
        reader = _contour_named(flow, "reader")
        assert reader.id in flow._dep_callees[main.id]
        assert not flow._contour_stale(main)
        reader.ret_version = flow._bump()
        assert flow._contour_stale(main)

    def test_global_read_registers_dependency(self):
        source = """
        var counter;
        def bump() { counter = counter + 1; return counter; }
        def main() { counter = 0; print(bump()); }
        """
        flow = _run_flow(source)
        bump = _contour_named(flow, "bump")
        assert "counter" in flow._dep_globals[bump.id]
        flow._global_version["counter"] = flow._bump()
        assert flow._contour_stale(bump)

    def test_missing_callee_counts_as_stale(self):
        flow = _run_flow(SLOT_DEP_SOURCE)
        main = _contour_named(flow, "main")
        callee_id = next(iter(flow._dep_callees[main.id]))
        del flow.manager.method_contours[callee_id]
        assert flow._contour_stale(main)

    def test_contour_gc_clears_engine_state(self):
        # Polymorphic signatures leave stale narrower contours behind; the
        # final pruning must scrub every engine-side cache for them.
        source = """
        def twice(x) { return x + x; }
        def main() { print(twice(1)); print(twice(2.5)); }
        """
        flow = _run_flow(source)
        live = set(flow.manager.method_contours)
        for table in (
            flow._cached_regs, flow._eval_version, flow._dep_slots,
            flow._dep_globals, flow._dep_callees, flow.call_edges,
            flow.allocations,
        ):
            assert set(table) <= live

    def test_retired_revival_differential(self):
        # Signature growth retires narrow contours mid-analysis; later calls
        # revive them.  Both modes must agree on the survivors.
        source = """
        class A { var v; def init(x) { this.v = x; } def get() { return this.v; } }
        def use(a) { return a.get(); }
        def main() {
          var i = 0; var acc = 0;
          while (i < 3) { acc = acc + use(new A(i)); i = i + 1; }
          acc = acc + use(new A(2.5));
          print(acc);
        }
        """
        assert_identical(source, "revival.icc")


class TestRecordDirtyBit:
    def test_second_record_pass_skips_clean_contours(self):
        program = compile_source(SLOT_DEP_SOURCE, "test.icc")
        flow = FlowAnalysis(program, AnalysisConfig())
        result = flow.run()
        assert flow._record_skips == 0
        before = dict(flow._facts)
        for contour in list(flow.manager.method_contours.values()):
            flow._record_contour(contour)
        assert flow._record_skips == len(flow.manager.method_contours)
        assert flow._facts == before
        assert result.facts == before

    def test_rerecord_after_growth_replaces_not_duplicates(self):
        program = compile_source(SLOT_DEP_SOURCE, "test.icc")
        flow = FlowAnalysis(program, AnalysisConfig())
        flow.run()
        reader = _contour_named(flow, "reader")
        stores_before = {
            cid: list(entries) for cid, entries in flow._stores.items()
        }
        # Touch the contour so its dirty bit trips, then re-record.
        flow._eval_version[reader.id] = flow._bump()
        flow._record_contour(reader)
        assert flow._stores == stores_before  # replaced, not appended


class TestAnalysisCache:
    def test_same_program_same_config_hits(self):
        program = compile_source(SLOT_DEP_SOURCE, "test.icc")
        cache = AnalysisCache()
        config = AnalysisConfig()
        first = analyze(program, config)
        cache.put(program, config, first)
        assert cache.get(program, config) is first
        assert cache.hits == 1

    def test_distinct_config_misses(self):
        program = compile_source(SLOT_DEP_SOURCE, "test.icc")
        cache = AnalysisCache()
        config = AnalysisConfig()
        cache.put(program, config, analyze(program, config))
        other = AnalysisConfig(max_local_passes=31)
        assert cache.get(program, other) is None

    def test_discard_drops_program_entries(self):
        program = compile_source(SLOT_DEP_SOURCE, "test.icc")
        cache = AnalysisCache()
        config = AnalysisConfig()
        cache.put(program, config, analyze(program, config))
        cache.discard(program)
        assert cache.get(program, config) is None
        assert len(cache) == 0

    def test_optimize_shares_analysis_across_builds(self):
        from repro.inlining.pipeline import optimize

        program = compile_source(BENCH_SOURCES["oopack"], "oopack.icc")
        cache = AnalysisCache()
        inline = optimize(program, inline=True, analysis_cache=cache)
        manual = optimize(program, manual_only=True, analysis_cache=cache)
        assert manual.analysis is inline.analysis
        assert cache.hits >= 1

    def test_cached_reuse_preserves_program_output(self):
        from repro.inlining.pipeline import optimize
        from repro.runtime import run_program

        program = compile_source(BENCH_SOURCES["polyover_list"], "p.icc")
        reference = run_program(program).output
        cache = AnalysisCache()
        for kwargs in ({"inline": True}, {"manual_only": True}, {"inline": False}):
            report = optimize(program, analysis_cache=cache, **kwargs)
            assert run_program(report.program).output == reference
