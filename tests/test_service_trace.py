"""Trace-context propagation: client → daemon → worker, one tree.

Every request mints a W3C-shaped trace id client-side; the daemon binds
its accept/cache/dispatch spans to it and threads it into the worker's
task, so loading the client's trace *together with* the daemon's
``service.jsonl`` must reconstruct each request as one connected tree
rooted at the client span — including the awkward paths: coalesced
requests (marker spans linking to the shared dispatch) and crash-requeue
(the dispatch span survives even when no worker span ever happened).
"""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.obs import tracer_to_file
from repro.obs.export import SpanNode, _load_many, build_span_forest
from repro.service import ServiceClient, ServiceError, ServiceThread

SOURCE = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(5)); print(c.f.v); }
"""

OTHER_SOURCE = """
class Box { var item; def init(i) { this.item = i; } }
def main() { var b = new Box(11); print(b.item); }
"""


@pytest.fixture()
def sock(tmp_path):
    return str(tmp_path / "service.sock")


def _forest(*paths):
    return build_span_forest(_load_many([str(p) for p in paths]))


def _reachable(node: SpanNode) -> list[SpanNode]:
    out, stack = [], [node]
    while stack:
        current = stack.pop()
        out.append(current)
        stack.extend(current.children)
    return out


def _client_roots(forest, trace_id):
    return [
        r
        for r in forest.roots
        if r.name == "service.client" and r.meta.get("trace_id") == trace_id
    ]


class TestRequestTree:
    def test_cold_request_is_one_tree_rooted_at_client(self, tmp_path, sock):
        client_trace = tmp_path / "client.jsonl"
        with ServiceThread(sock, workers=1, trace_dir=str(tmp_path / "t")) as handle:
            run_dir = handle.service.run_dir
            tracer = tracer_to_file(str(client_trace))
            with ServiceClient(sock, tracer=tracer) as client:
                assert client.optimize(SOURCE).ok
                trace_id = client.last_trace_id
            tracer.close()
        assert trace_id and len(trace_id) == 32

        forest = _forest(client_trace, os.path.join(run_dir, "service.jsonl"))
        roots = _client_roots(forest, trace_id)
        assert len(roots) == 1
        reached = _reachable(roots[0])
        names = {n.name for n in reached}
        # client -> accept -> {cache, and via dispatch: the worker span}.
        assert {"service.accept", "service.cache", "service.dispatch", "service.work"} <= names
        # Completeness: every span stamped with this trace id is in the
        # tree — nothing tagged to the request dangles as its own root.
        tagged = [
            n
            for n in forest.by_id.values()
            if n.meta.get("trace_id") == trace_id
        ]
        reached_ids = {n.id for n in reached}
        assert all(n.id in reached_ids for n in tagged)

    def test_warm_request_tree_has_no_dispatch(self, tmp_path, sock):
        client_trace = tmp_path / "client.jsonl"
        with ServiceThread(sock, workers=1, trace_dir=str(tmp_path / "t")) as handle:
            run_dir = handle.service.run_dir
            tracer = tracer_to_file(str(client_trace))
            with ServiceClient(sock, tracer=tracer) as client:
                assert client.optimize(SOURCE).ok  # cold fill
                warm = client.optimize(SOURCE)
                assert warm.ok and warm.cached
                warm_trace_id = client.last_trace_id
            tracer.close()

        forest = _forest(client_trace, os.path.join(run_dir, "service.jsonl"))
        roots = _client_roots(forest, warm_trace_id)
        assert len(roots) == 1
        names = {n.name for n in _reachable(roots[0])}
        assert {"service.accept", "service.cache"} <= names
        # The warm path never dispatches, so its tree must not claim to.
        assert "service.dispatch" not in names
        assert "service.work" not in names

    def test_coalesced_requests_link_to_the_shared_dispatch(self, tmp_path, sock):
        concurrency = 4
        client_traces = [tmp_path / f"client-{i}.jsonl" for i in range(concurrency)]
        replies = []
        lock = threading.Lock()
        with ServiceThread(sock, workers=2, trace_dir=str(tmp_path / "t")) as handle:
            run_dir = handle.service.run_dir
            barrier = threading.Barrier(concurrency)

            def _ask(i):
                tracer = tracer_to_file(str(client_traces[i]))
                try:
                    with ServiceClient(sock, tracer=tracer) as client:
                        barrier.wait()
                        response = client.request("optimize", source=OTHER_SOURCE)
                    with lock:
                        replies.append(response)
                finally:
                    tracer.close()

            threads = [
                threading.Thread(target=_ask, args=(i,)) for i in range(concurrency)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert all(r.ok for r in replies)
        coalesced = sum(1 for r in replies if r.coalesced)
        assert coalesced >= 1  # barrier-released identical requests share one dispatch

        service_trace = os.path.join(run_dir, "service.jsonl")
        forest = _forest(*client_traces, service_trace)
        dispatch_hexes = {
            n.meta.get("span_id")
            for n in forest.by_id.values()
            if n.name == "service.dispatch"
        }
        markers = [
            n for n in forest.by_id.values() if n.name == "service.coalesce"
        ]
        assert len(markers) == coalesced
        # Every coalesce marker links to a real dispatch span's hex id.
        assert all(m.meta.get("link_span") in dispatch_hexes for m in markers)

        # The chrome export renders those links as flow events (s -> f).
        out = str(tmp_path / "stitched.chrome.json")
        argv = ["export", "chrome", *map(str, client_traces), service_trace, "-o", out]
        assert main(argv) == 0
        events = json.loads(open(out).read())["traceEvents"]
        flows = [e for e in events if e.get("ph") in ("s", "f")]
        assert sum(1 for e in flows if e["ph"] == "s") == coalesced
        assert sum(1 for e in flows if e["ph"] == "f") == coalesced
        assert all(e.get("cat") == "coalesce" for e in flows)

    def test_crash_requeue_keeps_the_tree_connected(self, tmp_path, sock):
        client_trace = tmp_path / "client.jsonl"
        with ServiceThread(
            sock, workers=1, allow_test_ops=True, trace_dir=str(tmp_path / "t")
        ) as handle:
            run_dir = handle.service.run_dir
            tracer = tracer_to_file(str(client_trace))
            with ServiceClient(sock, tracer=tracer) as client:
                response = client.request("crash", source=SOURCE)
                assert not response.ok and "died twice" in response.error
                trace_id = client.last_trace_id
            tracer.close()

        forest = _forest(client_trace, os.path.join(run_dir, "service.jsonl"))
        roots = _client_roots(forest, trace_id)
        assert len(roots) == 1
        names = {n.name for n in _reachable(roots[0])}
        # No worker span ever existed (the process died), but the daemon
        # side of the request still hangs together under the client root.
        assert {"service.accept", "service.dispatch"} <= names
        assert "service.work" not in names


class TestStitching:
    def test_daemon_only_trace_roots_at_accept(self, tmp_path, sock):
        # Without the client's shard the accept span's parent hex is
        # unresolvable — it must stay a root, not get dropped or misfiled.
        with ServiceThread(sock, workers=1, trace_dir=str(tmp_path / "t")) as handle:
            run_dir = handle.service.run_dir
            with ServiceClient(sock) as client:
                assert client.optimize(SOURCE).ok
        forest = _forest(os.path.join(run_dir, "service.jsonl"))
        accept_roots = [r for r in forest.roots if r.name == "service.accept"]
        assert len(accept_roots) == 1
        names = {n.name for n in _reachable(accept_roots[0])}
        assert {"service.cache", "service.dispatch", "service.work"} <= names

    def test_untraced_client_still_gets_correlation_ids(self, sock):
        with ServiceThread(sock, workers=1) as handle:
            with ServiceClient(sock) as client:
                assert client.optimize(SOURCE).ok
                assert client.last_trace_id and len(client.last_trace_id) == 32
                assert client.last_traceparent.startswith("00-")

    def test_shutdown_event_carries_final_snapshot(self, tmp_path, sock):
        with ServiceThread(sock, workers=1, trace_dir=str(tmp_path / "t")) as handle:
            run_dir = handle.service.run_dir
            with ServiceClient(sock) as client:
                assert client.optimize(SOURCE).ok
        events, _ = _events_of(os.path.join(run_dir, "service.jsonl"))
        stops = [
            e for e in events if e.get("ev") == "event" and e.get("name") == "service.shutdown"
        ]
        assert len(stops) == 1
        data = stops[0]["data"]
        assert data["requests"] >= 1
        assert data["uptime_s"] > 0
        assert data["drain_s"] >= 0
        assert data["store"]["misses"] >= 1
        digest = data["metrics"]
        assert digest["requests"] >= 1
        assert digest["cache_hit_rate"] >= 0.0


def _events_of(path):
    from repro.obs.export import load_trace_events

    return load_trace_events(path)
