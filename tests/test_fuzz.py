"""The fuzzing rig end to end: generator, oracle, reducer, seeded bugs.

The acceptance loop this file pins down: a seeded transform bug is (a)
caught by the differential oracle, (b) shrunk by the reducer to a
minimal reproducer, and (c) — for crashing/invalid stages — survived by
the pipeline's stage brackets with output bit-identical to the base
build and a ``stage.degraded`` trace event on the wire.
"""

import json
import os

import pytest

from repro.fuzz import (
    FUZZ_BUILDS,
    CheckResult,
    GenConfig,
    check_program,
    count_nodes,
    generate_source,
    reduce_source,
    run_fuzz,
    seeded_bug,
)
from repro.lang import parse_program
from repro.lang.unparse import unparse_program
from repro.obs.tracer import MemorySink, Tracer
from repro.session import BUILD_CONFIGS, Session

#: A small program with optimization surface (an inlinable chain plus
#: arithmetic for the const-flip bug to corrupt) used where generated
#: programs would be needlessly slow to chase.
SEEDED_SOURCE = """
class P {
    var x;
    def init(x) { this.x = x; }
    def get() { return this.x; }
}
class B {
    var inline p;
    def init(v) { this.p = new P(v); }
    def total() { return this.p.get() + 10; }
}
def helper(n) { return n * 3; }
def main() {
    var b = new B(4);
    var acc = 0;
    for (var i = 0; i < 3; i = i + 1) {
        acc = acc + b.total() + helper(i);
    }
    print(acc);
    print(b.total());
}
"""


class TestGenerator:
    def test_deterministic(self):
        assert generate_source(11) == generate_source(11)

    def test_seeds_differ(self):
        assert generate_source(1) != generate_source(2)

    def test_generated_programs_parse_and_run(self):
        for seed in range(6):
            source = generate_source(seed)
            session = Session(source, path=f"<gen:{seed}>")
            result = session.run("plain", max_steps=2_000_000)
            assert result.output  # every program prints its accumulators

    def test_config_is_honored(self):
        config = GenConfig(allow_arrays=False, allow_recursion=False)
        for seed in range(6):
            source = generate_source(seed, config)
            assert "array(" not in source


class TestUnparser:
    def test_round_trip_preserves_semantics(self):
        for seed in (0, 3, 5):
            source = generate_source(seed)
            text = unparse_program(parse_program(source))
            original = Session(source).run("plain", max_steps=2_000_000)
            round_tripped = Session(text).run("plain", max_steps=2_000_000)
            assert round_tripped.output == original.output

    def test_unparse_is_a_fixpoint(self):
        source = generate_source(4)
        once = unparse_program(parse_program(source))
        twice = unparse_program(parse_program(once))
        assert once == twice


class TestOracle:
    def test_clean_seeds_report_clean(self):
        report = run_fuzz(seeds=6)
        assert report.ok
        assert report.seeds_run == 6
        assert report.clean + report.skipped == 6

    def test_fuzz_builds_cover_the_matrix(self):
        assert set(FUZZ_BUILDS) == set(BUILD_CONFIGS)

    def test_step_budget_on_base_is_an_explained_skip(self):
        result = check_program(generate_source(0), seed=0, max_steps=10)
        assert isinstance(result, CheckResult)
        assert result.skipped is not None
        assert not result.divergences

    def test_triage_key_normalizes_run_specific_noise(self):
        with seeded_bug("const-flip"):
            a = check_program(generate_source(3), seed=3)
            b = check_program(generate_source(9), seed=9)
        keys_a = {d.triage_key for d in a.divergences}
        keys_b = {d.triage_key for d in b.divergences}
        assert keys_a & keys_b  # one bug, one bucket across seeds


class TestSeededBugs:
    def test_miscompile_is_caught_by_the_oracle(self):
        # (a) of the acceptance loop: valid-IR wrong-output bug — no
        # validator can see it; only differential execution does.
        with seeded_bug("const-flip"):
            result = check_program(SEEDED_SOURCE, seed=0)
        kinds = {d.kind for d in result.divergences}
        assert "output-mismatch" in kinds

    def test_corpus_archives_replayable_reproducers(self, tmp_path):
        corpus = tmp_path / "corpus"
        with seeded_bug("const-flip"):
            report = run_fuzz(seeds=2, corpus_dir=str(corpus))
        assert not report.ok
        assert report.archived >= 1
        archived = [
            os.path.join(root, name)
            for root, _, names in os.walk(corpus)
            for name in names
        ]
        sources = [p for p in archived if p.endswith(".icc")]
        sidecars = [p for p in archived if p.endswith(".json")]
        assert sources and sidecars
        # The archived program replays: it parses and runs standalone.
        with open(sources[0], encoding="utf-8") as handle:
            Session(handle.read()).run("plain", max_steps=2_000_000)
        with open(sidecars[0], encoding="utf-8") as handle:
            meta = json.load(handle)
        assert {"seed", "kind", "build", "triage_key"} <= set(meta)

    def test_reducer_shrinks_to_minimal_reproducer(self):
        # (b) of the acceptance loop: ≤ 25 AST nodes.
        with seeded_bug("const-flip"):
            reduced = reduce_source(SEEDED_SOURCE, "output-mismatch")
            assert count_nodes(parse_program(reduced)) <= 25
            # Still a reproducer after reduction.
            result = check_program(reduced)
            assert any(d.kind == "output-mismatch" for d in result.divergences)

    @pytest.mark.parametrize("bug", ["crash-loadcse", "invalid-dce"])
    def test_stage_rollback_keeps_output_bit_identical(self, bug):
        # (c) of the acceptance loop: a crashing or invalid-IR stage is
        # rolled back, the build completes, and output matches base.
        base = Session(SEEDED_SOURCE).run("plain").output
        sink = MemorySink()
        with seeded_bug(bug):
            session = Session(SEEDED_SOURCE, tracer=Tracer(sink))
            report = session.optimize(inline=True)
            output = session.run("inline").output
        assert output == base
        assert report.degraded_stages, "the bracket must record the failure"
        degraded = [e for e in sink.events if e.get("name") == "stage.degraded"]
        assert degraded, "a stage.degraded trace event must be emitted"
        stages = {e["data"]["stage"] for e in degraded}
        expected = "loadcse" if bug == "crash-loadcse" else "dce"
        assert expected in stages

    def test_degraded_build_passes_the_oracle(self):
        # Degradation is invisible to the differential oracle: the build
        # is slower, never wrong.
        with seeded_bug("crash-loadcse"):
            result = check_program(SEEDED_SOURCE, seed=0)
        assert not result.divergences

    def test_unknown_bug_name_rejected(self):
        with pytest.raises(ValueError, match="unknown seeded bug"):
            with seeded_bug("nonsense"):
                pass


class TestCountNodes:
    def test_counts_are_positive_and_monotone(self):
        small = parse_program("def main() { print(1); }")
        large = parse_program(SEEDED_SOURCE)
        assert 0 < count_nodes(small) < count_nodes(large)
