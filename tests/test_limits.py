"""The paper's §6.1 known limitations, as targeted micro-programs.

Each test reproduces one structure the paper reports the analysis cannot
inline, and checks both that it is rejected and that the transformed
program still runs correctly.
"""

from conftest import accepted_names, check_equivalence, plan_for, rejected_names


class TestSiloEventListLimit:
    """'Our analysis cannot inline cons cells of the global event list,
    because it cannot tell that a given event is in the list at most
    once.'  Event recycling makes the stored value flow from a field
    read, which assignment specialization rejects."""

    SOURCE = """
class Event { var t; def fill(t) { this.t = t; return this; } }
class Cell { var ev; var next; def init(e, n) { this.ev = e; this.next = n; } }
var free_list = nil;
var sched = nil;
def alloc_event() {
  if (free_list == nil) { return new Event(); }
  var cell = free_list;
  free_list = cell.next;
  return cell.ev;
}
def recycle(e) { free_list = new Cell(e, free_list); }
def push(t) { sched = new Cell(alloc_event().fill(t), sched); }
def main() {
  push(1); push(2);
  var total = 0;
  while (sched != nil) {
    var e = sched.ev;
    total = total + e.t;
    recycle(e);
    sched = sched.next;
  }
  push(3);
  total = total + sched.ev.t;
  print(total);
}
"""

    def test_event_cell_rejected(self):
        plan = plan_for(self.SOURCE)
        assert "Cell.ev" in rejected_names(plan)

    def test_program_still_correct(self):
        base, _, _ = check_equivalence(self.SOURCE)
        assert base.output == ["6"]


class TestRichardsPolymorphicArrayLimit:
    """'An array of pointers to tasks ... is polymorphic and our analysis
    does not distinguish different array elements.'"""

    SOURCE = """
class Task { var id; def init(id) { this.id = id; } def run() { return 0; } }
class DevTask : Task { def run() { return this.id * 2; } }
class IdleTask : Task { def run() { return this.id + 1; } }
def main() {
  var tab = array(2);
  tab[0] = new DevTask(3);
  tab[1] = new IdleTask(4);
  var total = 0;
  for (var i = 0; i < 2; i = i + 1) { total = total + tab[i].run(); }
  print(total);
}
"""

    def test_array_rejected_for_polymorphism(self):
        plan = plan_for(self.SOURCE)
        reasons = rejected_names(plan)
        key = next(name for name in reasons if name.startswith("array-site"))
        assert "polymorphic" in reasons[key]

    def test_program_still_correct(self):
        base, _, _ = check_equivalence(self.SOURCE)
        assert base.output == ["11"]


class TestPolyoverLoopListLimit:
    """'A list cannot be blocked because it is constructed in a loop' —
    our analog: a summary list built from values read back out of other
    containers cannot prove ownership."""

    SOURCE = """
class P { var v; def init(v) { this.v = v; } }
class Src { var item; def init(p) { this.item = p; } }
class Out { var data; var next; def init(d, n) { this.data = d; this.next = n; } }
def main() {
  var sources = array(3);
  for (var i = 0; i < 3; i = i + 1) { sources[i] = new Src(new P(i + 1)); }
  var summary = nil;
  for (var j = 0; j < 3; j = j + 1) {
    summary = new Out(sources[j].item, summary);
  }
  var total = 0;
  var s = summary;
  while (s != nil) { total = total + s.data.v; s = s.next; }
  print(total);
}
"""

    def test_summary_list_data_rejected(self):
        plan = plan_for(self.SOURCE)
        reasons = rejected_names(plan)
        assert "Out.data" in reasons
        assert "passable by value" in reasons["Out.data"]

    def test_outer_structure_still_inlines(self):
        # The Src objects inline into the sources array (the outer
        # candidate wins when structures nest); only the summary list's
        # data stays a reference.
        plan = plan_for(self.SOURCE)
        assert any(n.startswith("array-site") for n in accepted_names(plan))
        reasons = rejected_names(plan)
        assert "itself inlined" in reasons["Src.item"]

    def test_program_still_correct(self):
        base, _, _ = check_equivalence(self.SOURCE)
        assert base.output == ["6"]


class TestRecursiveStructures:
    """Self-referential cells (cons.next) must never inline — the layout
    would be infinite."""

    SOURCE = """
class Cons { var v; var next; def init(v, n) { this.v = v; this.next = n; } }
def main() {
  var l = nil;
  for (var i = 0; i < 5; i = i + 1) { l = new Cons(i, l); }
  var total = 0;
  while (l != nil) { total = total + l.v; l = l.next; }
  print(total);
}
"""

    def test_next_rejected(self):
        plan = plan_for(self.SOURCE)
        assert "Cons.next" in rejected_names(plan)

    def test_program_still_correct(self):
        base, _, _ = check_equivalence(self.SOURCE)
        assert base.output == ["10"]


class TestConsDataMergeStillWorks:
    """The positive side of the Silo/polyover story: cons cells *can*
    merge with freshly created data."""

    SOURCE = """
class Rec { var a; var b; def init(a, b) { this.a = a; this.b = b; } }
class Cons { var data; var next; def init(d, n) { this.data = d; this.next = n; } }
def main() {
  var l = nil;
  for (var i = 0; i < 4; i = i + 1) { l = new Cons(new Rec(i, i * 2), l); }
  var total = 0;
  while (l != nil) { total = total + l.data.a + l.data.b; l = l.next; }
  print(total);
}
"""

    def test_data_accepted_next_rejected(self):
        plan = plan_for(self.SOURCE)
        assert "Cons.data" in accepted_names(plan)
        assert "Cons.next" in rejected_names(plan)

    def test_allocation_halved(self):
        # With the escape stage ablated: 4 cons + 4 recs -> 4 cons +
        # 4 stack temps (the paper's transform alone).
        base, opt, _ = check_equivalence(self.SOURCE, escape_pass=False)
        assert base.stats.allocations == 8
        assert opt.stats.allocations == 4
        assert opt.stats.stack_allocations == 4

    def test_escape_stage_dissolves_the_stack_temps(self):
        # The full pipeline goes further: the Rec temps never escape the
        # loop body, so scalar replacement turns them into registers.
        _, opt, _ = check_equivalence(self.SOURCE)
        assert opt.stats.allocations == 4
        assert opt.stats.stack_allocations == 0

    def test_program_still_correct(self):
        base, _, _ = check_equivalence(self.SOURCE)
        assert base.output == ["18"]
