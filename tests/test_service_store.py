"""The content-addressed artifact store and its hashing contract."""

import os
import pickle
import subprocess
import sys

import pytest

import repro
from repro.service import ArtifactKey, ArtifactStore
from repro.session import CompileConfig, source_key

SOURCE = """
class P { var v; def init(v) { this.v = v; } }
def main() { var p = new P(7); print(p.v); }
"""


def _key(kind="optimize", source=SOURCE, config=None, extra=""):
    return ArtifactKey.for_request(kind, source, config or CompileConfig(), extra)


class TestAddressing:
    def test_same_request_same_key(self):
        assert _key() == _key()

    def test_kind_source_config_all_discriminate(self):
        base = _key()
        assert _key(kind="analyze") != base
        assert _key(source=SOURCE + "\n// changed") != base
        assert _key(config=CompileConfig(inline=False)) != base

    def test_run_build_facet_lands_in_config_half(self):
        plain = _key(kind="run")
        assert _key(kind="run", extra="inline") != plain
        assert _key(kind="run", extra="inline") == _key(kind="run", extra="inline")

    def test_key_ignores_who_asked(self):
        # No tenant, connection, or request id in the address: two
        # clients sending the same compile share one artifact.
        fields = {f for f in ArtifactKey.__dataclass_fields__}
        assert fields == {"kind", "source_key", "config_key"}

    def test_config_key_matches_session_memo_key(self):
        # One canonical hashing scheme across the store, Session
        # memoization, and the perf-history ledger.
        config = CompileConfig(inline=False, max_rounds=2)
        assert _key(config=config).config_key == config.content_key()

    def test_hash_stable_across_processes(self):
        """The address must not depend on PYTHONHASHSEED or process state."""
        script = (
            "from repro.service import ArtifactKey\n"
            "from repro.session import CompileConfig\n"
            "import sys\n"
            "key = ArtifactKey.for_request('optimize', sys.stdin.read(), CompileConfig())\n"
            "print(key.source_key, key.config_key)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONHASHSEED"] = "12345"
        child = subprocess.run(
            [sys.executable, "-c", script],
            input=SOURCE,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        ours = _key()
        assert child.stdout.split() == [ours.source_key, ours.config_key]

    def test_source_key_is_text_hash(self):
        assert source_key(SOURCE) == source_key(SOURCE)
        assert source_key(SOURCE) != source_key(SOURCE + " ")
        assert len(source_key(SOURCE)) == 16


class TestLRU:
    def test_roundtrip(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put(key, {"reply": 42})
        assert store.get(key) == {"reply": 42}
        assert (store.hits, store.misses) == (1, 0)
        assert store.hit_rate == 1.0

    def test_miss_counts(self):
        store = ArtifactStore(max_entries=4)
        assert store.get(_key()) is None
        assert (store.hits, store.misses) == (0, 1)

    def test_entry_cap_evicts_least_recent(self):
        store = ArtifactStore(max_entries=2)
        a, b, c = _key(kind="a"), _key(kind="b"), _key(kind="c")
        store.put(a, 1)
        store.put(b, 2)
        store.put(c, 3)  # a is the oldest -> evicted
        assert a not in store and b in store and c in store
        assert store.evictions == 1

    def test_get_refreshes_recency(self):
        store = ArtifactStore(max_entries=2)
        a, b, c = _key(kind="a"), _key(kind="b"), _key(kind="c")
        store.put(a, 1)
        store.put(b, 2)
        assert store.get(a) == 1  # a is now the most recent
        store.put(c, 3)  # so b is evicted instead
        assert a in store and b not in store and c in store

    def test_byte_cap_evicts(self):
        store = ArtifactStore(max_entries=64, max_bytes=200)
        keys = [_key(kind=f"k{i}") for i in range(8)]
        for key in keys:
            store.put_bytes(key, b"x" * 64)
        assert len(store) < 8
        assert store.evictions >= 1
        assert store.stats()["bytes"] <= 200 + 64  # one entry always kept

    def test_overwrite_replaces_without_double_count(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put_bytes(key, b"x" * 100)
        store.put_bytes(key, b"y" * 10)
        assert len(store) == 1
        assert store.stats()["bytes"] == 10

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)


class TestCorruption:
    def test_corrupt_blob_is_a_miss_not_a_crash(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put_bytes(key, b"this is not a pickle")
        assert store.get(key) is None
        assert (store.hits, store.misses, store.corrupt) == (0, 1, 1)
        # The damaged entry is gone: the next put repopulates cleanly.
        assert key not in store
        store.put(key, "fresh")
        assert store.get(key) == "fresh"

    def test_truncated_pickle_is_a_miss(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put_bytes(key, pickle.dumps({"big": list(range(100))})[:7])
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_stats_shape(self):
        store = ArtifactStore(max_entries=4)
        stats = store.stats()
        assert set(stats) == {
            "entries", "bytes", "max_entries", "max_bytes",
            "hits", "misses", "reply_bytes_hits", "hit_rate",
            "evictions", "corrupt",
        }


class TestReplyBytes:
    def test_hit_serves_bytes_and_counts_once(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put_bytes(key, pickle.dumps({"reply": 1}), reply_bytes=b'{"x":1}')
        assert store.get_reply_bytes(key) == b'{"x":1}'
        assert (store.hits, store.misses, store.reply_bytes_hits) == (1, 0, 1)

    def test_absent_entry_probes_without_counting_a_miss(self):
        # The caller falls back to get(), which does the counting — a
        # warm-path probe must not double-book the outcome.
        store = ArtifactStore(max_entries=4)
        assert store.get_reply_bytes(_key()) is None
        assert (store.hits, store.misses, store.reply_bytes_hits) == (0, 0, 0)

    def test_entry_without_bytes_probes_without_counting(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put(key, {"reply": 1})  # no reply_bytes (pre-upgrade producer)
        assert store.get_reply_bytes(key) is None
        assert (store.hits, store.misses, store.reply_bytes_hits) == (0, 0, 0)
        assert store.get(key) == {"reply": 1}
        assert store.hits == 1

    def test_reply_bytes_count_toward_the_byte_cap(self):
        store = ArtifactStore(max_entries=4)
        key = _key()
        store.put_bytes(key, b"x" * 10, reply_bytes=b"y" * 30)
        assert store.stats()["bytes"] == 40
        store.put_bytes(key, b"x" * 10)  # overwrite drops the reply bytes
        assert store.stats()["bytes"] == 10

    def test_hit_refreshes_recency(self):
        store = ArtifactStore(max_entries=2)
        a, b, c = _key(kind="a"), _key(kind="b"), _key(kind="c")
        store.put_bytes(a, b"1", reply_bytes=b"ra")
        store.put_bytes(b, b"2", reply_bytes=b"rb")
        assert store.get_reply_bytes(a) == b"ra"
        store.put_bytes(c, b"3")  # b is now the oldest -> evicted
        assert a in store and b not in store
