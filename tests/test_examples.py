"""The shipped examples must run and demonstrate what they claim."""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "inlined" in out
        assert "speedup" in out
        assert "Rectangle$1" in out

    def test_complex_kernel(self):
        out = run_example("complex_kernel.py", "64")
        assert "checksum" in out
        assert "speedup" in out
        assert "array-site" in out

    def test_event_sim(self):
        out = run_example("event_sim.py")
        assert "Cell.ticket" in out and "MERGED" in out
        assert "AuditCell.ticket" in out
        assert "allocations" in out

    def test_polymorphic_records(self):
        out = run_example("polymorphic_records.py")
        assert "Task$1" in out and "Task$2" in out and "Task$3" in out
        assert "priv__period" in out

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "complex_kernel.py",
            "event_sim.py",
            "polymorphic_records.py",
        } <= names
