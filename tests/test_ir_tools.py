"""IR printer and validator tests."""

import pytest

from repro.ir import (
    ValidationError,
    compile_source,
    format_callable,
    format_instr,
    format_program,
    validate_callable,
    validate_program,
)
from repro.ir import model as ir
from repro.lang.errors import UNKNOWN_LOCATION


def instr(cls, **kwargs):
    return ir.make_instr(cls, UNKNOWN_LOCATION, **kwargs)


class TestPrinter:
    def test_every_instruction_kind_formats(self):
        samples = [
            instr(ir.Const, dest=0, value=1),
            instr(ir.Move, dest=0, src=1),
            instr(ir.UnOp, dest=0, op="-", src=1),
            instr(ir.BinOp, dest=0, op="+", lhs=1, rhs=2),
            instr(ir.New, dest=0, class_name="A", args=(1,)),
            instr(ir.New, dest=0, class_name="A", args=(), on_stack=True, skip_init=True),
            instr(ir.NewArray, dest=0, size=1),
            instr(ir.NewArray, dest=0, size=1, inline_layout="P@e", parallel_layout=True),
            instr(ir.GetField, dest=0, obj=1, field_name="f"),
            instr(ir.SetField, obj=0, field_name="f", src=1),
            instr(ir.GetFieldIndexed, dest=0, obj=1, base_field="d__0", length=4, index=2),
            instr(ir.SetFieldIndexed, obj=0, base_field="d__0", length=4, index=1, src=2),
            instr(ir.GetIndex, dest=0, array=1, index=2),
            instr(ir.SetIndex, array=0, index=1, src=2),
            instr(ir.ArrayLen, dest=0, array=1),
            instr(ir.CallMethod, dest=0, recv=1, method_name="m", args=(2,)),
            instr(ir.CallStatic, dest=0, recv=1, class_name="A", method_name="m", args=()),
            instr(ir.CallFunction, dest=0, func_name="f", args=(1, 2)),
            instr(ir.CallBuiltin, dest=0, builtin_name="print", args=()),
            instr(ir.GetGlobal, dest=0, name="g"),
            instr(ir.SetGlobal, name="g", src=0),
            instr(ir.MakeView, dest=0, array=1, index=2, class_name="P@e"),
            instr(ir.Jump, target=0),
            instr(ir.Branch, cond=0, then_target=1, else_target=2),
            instr(ir.Return, src=None),
            instr(ir.Return, src=0),
        ]
        for sample in samples:
            text = format_instr(sample)
            assert isinstance(text, str) and text

    def test_stack_and_skip_markers(self):
        text = format_instr(
            instr(ir.New, dest=0, class_name="A", args=(), on_stack=True, skip_init=True)
        )
        assert "[stack]" in text and "[skip-init]" in text

    def test_format_program_includes_classes_and_functions(self):
        program = compile_source(
            "class A { var x; def m() { return this.x; } } def main() { }"
        )
        text = format_program(program)
        assert "class A" in text
        assert "A::m" in text
        assert "main" in text

    def test_format_callable_shows_blocks(self):
        program = compile_source("def main() { if (1) { print(1); } }")
        text = format_callable(program.functions["main"])
        assert "B0:" in text and "B1:" in text


class TestValidator:
    def make_callable(self, blocks):
        return ir.IRCallable(
            name="f", params=(), num_regs=4, blocks=blocks, is_method=False
        )

    def test_valid_program_passes(self, rectangle_program):
        validate_program(rectangle_program)

    def test_empty_block_rejected(self):
        callable_ = self.make_callable([ir.Block()])
        with pytest.raises(ValidationError, match="empty"):
            validate_callable(callable_)

    def test_missing_terminator_rejected(self):
        block = ir.Block()
        block.instrs.append(instr(ir.Const, dest=0, value=1))
        with pytest.raises(ValidationError, match="terminator"):
            validate_callable(self.make_callable([block]))

    def test_terminator_mid_block_rejected(self):
        block = ir.Block()
        block.instrs.append(instr(ir.Return, src=None))
        block.instrs.append(instr(ir.Return, src=None))
        with pytest.raises(ValidationError, match="mid-block"):
            validate_callable(self.make_callable([block]))

    def test_register_out_of_range_rejected(self):
        block = ir.Block()
        block.instrs.append(instr(ir.Move, dest=0, src=99))
        block.instrs.append(instr(ir.Return, src=None))
        with pytest.raises(ValidationError, match="out of range"):
            validate_callable(self.make_callable([block]))

    def test_jump_target_out_of_range_rejected(self):
        block = ir.Block()
        block.instrs.append(instr(ir.Jump, target=7))
        with pytest.raises(ValidationError, match="target"):
            validate_callable(self.make_callable([block]))

    def test_duplicate_uids_rejected(self):
        shared = instr(ir.Return, src=None)
        a = ir.Block(); a.instrs.append(instr(ir.Jump, target=1))
        b = ir.Block(); b.instrs.append(shared)
        callable_ = self.make_callable([a, b])
        callable_.blocks[0].instrs[0] = ir.Jump(shared.uid, UNKNOWN_LOCATION, 1)
        with pytest.raises(ValidationError, match="duplicate uid"):
            validate_callable(callable_)

    def test_unknown_class_reference_rejected(self):
        program = compile_source("class A { } def main() { print(new A()); }")
        main = program.functions["main"]
        for block in main.blocks:
            block.instrs = [
                instr(ir.New, dest=i.dest, class_name="Ghost", args=())
                if isinstance(i, ir.New) else i
                for i in block.instrs
            ]
        with pytest.raises(ValidationError, match="unknown class"):
            validate_program(program)

    def test_unknown_global_rejected(self):
        program = compile_source("var g; def main() { print(g); }")
        main = program.functions["main"]
        for block in main.blocks:
            block.instrs = [
                instr(ir.GetGlobal, dest=i.dest, name="ghost")
                if isinstance(i, ir.GetGlobal) else i
                for i in block.instrs
            ]
        with pytest.raises(ValidationError, match="unknown global"):
            validate_program(program)


class TestProgramModel:
    def test_superclass_chain(self, rectangle_program):
        assert rectangle_program.superclass_chain("Point3D") == ["Point3D", "Point"]

    def test_layout_inherited_first(self, rectangle_program):
        assert rectangle_program.layout("Point3D") == ["x_pos", "y_pos", "z_pos"]

    def test_resolve_method_walks_chain(self, rectangle_program):
        defining, method = rectangle_program.resolve_method("Point3D", "abs")
        assert defining == "Point"
        assert method.method_name == "abs"

    def test_resolve_missing_method(self, rectangle_program):
        assert rectangle_program.resolve_method("Point", "fly") is None

    def test_subclasses(self, rectangle_program):
        assert rectangle_program.subclasses("Point") == ["Point3D"]

    def test_lookup_callable(self, rectangle_program):
        assert rectangle_program.lookup_callable("Point::abs") is not None
        assert rectangle_program.lookup_callable("head") is not None
        assert rectangle_program.lookup_callable("Ghost::m") is None
