"""Property-based tests for the array-inlining path.

Random programs over arrays of objects with hazards that flip element
inlining on and off (polymorphic elements, nil slots, identity compares,
views escaping into other structures, slot overwrites): output must be
preserved in every build regardless.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.inlining.pipeline import optimize
from repro.ir import compile_source, validate_program
from repro.runtime import run_program

_HAZARDS = (
    "none",
    "polymorphic",
    "nil_slot",
    "identity",
    "escape_view",
    "overwrite_slot",
    "embedded",
)


@st.composite
def array_programs(draw):
    size = draw(st.integers(min_value=1, max_value=6))
    hazard = draw(st.sampled_from(_HAZARDS))
    num_fields = draw(st.integers(min_value=1, max_value=3))
    rounds = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=50))

    fields = [f"f{i}" for i in range(num_fields)]
    params = ", ".join(f"p{i}" for i in range(num_fields))
    assigns = " ".join(f"this.{f} = p{i};" for i, f in enumerate(fields))
    total = " + ".join(f"this.{f}" for f in fields)

    lines = [f"class Elem {{ {' '.join('var ' + f + ';' for f in fields)}"]
    lines.append(f"  def init({params}) {{ {assigns} }}")
    lines.append(f"  def total() {{ return {total}; }}")
    lines.append("}")
    if hazard == "polymorphic":
        lines.append("class Elem2 : Elem { def total() { return 99; } }")
    if hazard == "escape_view":
        lines.append("class Keeper { var item; def init(i) { this.item = i; } }")
    if hazard == "embedded":
        lines.append(
            "class Holder { var d;\n"
            "  def init() {\n"
            f"    var a = array({size});\n"
            f"    for (var i = 0; i < {size}; i = i + 1) {{ a[i] = i + {seed}; }}\n"
            "    this.d = a;\n"
            "  }\n"
            "  def sum() { var a = this.d; var t = 0;\n"
            "    for (var i = 0; i < len(a); i = i + 1) { t = t + a[i]; }\n"
            "    return t; }\n"
            "}"
        )

    args = ", ".join(f"i + {seed + j}" for j in range(num_fields))
    lines.append("def main() {")
    lines.append("  var acc = 0;")
    lines.append(f"  var a = array({size});")
    lines.append(f"  for (var i = 0; i < {size}; i = i + 1) {{")
    if hazard == "polymorphic":
        lines.append(f"    if (i % 2 == 0) {{ a[i] = new Elem({args}); }}")
        lines.append(f"    else {{ a[i] = new Elem2({args}); }}")
    elif hazard == "nil_slot":
        lines.append(f"    if (i % 2 == 0) {{ a[i] = new Elem({args}); }}")
        lines.append("    else { a[i] = nil; }")
    else:
        lines.append(f"    a[i] = new Elem({args});")
    lines.append("  }")
    lines.append(f"  for (var r = 0; r < {rounds}; r = r + 1) {{")
    lines.append(f"    for (var j = 0; j < {size}; j = j + 1) {{")
    if hazard == "nil_slot":
        lines.append("      if (a[j] != nil) { acc = acc + a[j].total(); }")
    elif hazard == "identity":
        lines.append("      if (a[j] == a[j]) { acc = acc + a[j].total(); }")
    else:
        lines.append("      acc = acc + a[j].total();")
    lines.append("    }")
    lines.append("  }")
    if hazard == "escape_view":
        lines.append("  var k = new Keeper(a[0]);")
        lines.append("  acc = acc + k.item.total();")
    if hazard == "overwrite_slot":
        lines.append(f"  a[0] = new Elem({args.replace('i +', '7 +')});")
        lines.append("  acc = acc + a[0].total();")
    if hazard == "embedded":
        lines.append("  var h = new Holder();")
        lines.append("  acc = acc + h.sum();")
    lines.append("  print(acc);")
    lines.append("}")
    return "\n".join(lines)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=array_programs())
def test_array_inlining_preserves_output(source):
    program = compile_source(source)
    base = run_program(program)
    for kwargs in ({"inline": True}, {"inline": False}):
        report = optimize(program, **kwargs)
        validate_program(report.program)
        result = run_program(report.program)
        assert result.output == base.output, (kwargs, source)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=array_programs())
def test_array_hazard_rejections_are_sound(source):
    """Whatever the plan accepted, the VM-visible heap behaviour of the
    transformed program stays consistent (allocation counts only shrink,
    outputs match — covered above — and validation holds)."""
    program = compile_source(source)
    base = run_program(program)
    report = optimize(program)
    result = run_program(report.program)
    assert result.stats.allocations <= base.stats.allocations
