"""CLI driver tests."""

import pytest

from repro.cli import main

PROGRAM = """
class P { var v; def init(v) { this.v = v; } }
class C { var f; def init(p) { this.f = p; } }
def main() { var c = new C(new P(5)); print(c.f.v); }
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.icc"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_plain_run(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_inline_run_same_output(self, program_file, capsys):
        assert main(["run", program_file, "--inline"]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_noinline_run(self, program_file, capsys):
        assert main(["run", program_file, "--noinline"]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_manual_run(self, program_file, capsys):
        assert main(["run", program_file, "--manual"]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_stats_flag(self, program_file, capsys):
        assert main(["run", program_file, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "cycles" in err

    def test_conflicting_flags_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--inline", "--manual"])


class TestAnalyze:
    def test_analyze_reports_candidates(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "C.f" in out
        assert "ACCEPT" in out
        assert "method contours" in out


class TestIRAndCodegen:
    def test_ir_dump(self, program_file, capsys):
        assert main(["ir", program_file]) == 0
        out = capsys.readouterr().out
        assert "main" in out and "new C" in out

    def test_ir_dump_optimized_shows_variant(self, program_file, capsys):
        assert main(["ir", program_file, "--inline"]) == 0
        assert "C$1" in capsys.readouterr().out

    def test_codegen(self, program_file, capsys):
        assert main(["codegen", program_file]) == 0
        captured = capsys.readouterr()
        assert "struct C" in captured.out
        assert "bytes" in captured.err


class TestGracefulNoData:
    """`repro trace` / `repro heatmap` degrade to messages, not tracebacks."""

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no trace data" in out
        assert "record with --trace" in out

    def test_heatmap_missing_file(self, tmp_path, capsys):
        assert main(["heatmap", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_heatmap_trace_without_locality(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", program_file, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["heatmap", trace]) == 0
        assert "no locality data" in capsys.readouterr().out

    def test_heatmap_diff_missing_second_file(self, program_file, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["run", program_file, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["heatmap", trace, str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err
