#!/usr/bin/env python3
"""Merging cons cells with their data: the Silo scenario.

A small discrete-event shop: jobs queue at a counter, each enqueue wraps
a freshly created ticket record in a list cell.  C++ cannot declare a
list cell's data field inline (a list node conceptually *refers to* its
data), but the automatic optimizer proves each ticket is owned by its
cell and merges them — halving allocations on the queue path.

It also shows a limitation faithfully: tickets placed into the recycled
"audit trail" are aliased, so those cells keep their reference.

Run:  python examples/event_sim.py
"""

from repro import compile_source, optimize, run_program

SOURCE = """
class Ticket {
  var job_id; var stamped_at;
  def init(job_id, stamped_at) {
    this.job_id = job_id;
    this.stamped_at = stamped_at;
  }
  def age(now) { return now - this.stamped_at; }
}

class Cell {
  var ticket;   // merged with its data by object inlining
  var next;
  def init(t, n) { this.ticket = t; this.next = n; }
}

class AuditCell {
  var ticket;   // aliased with live tickets: stays a reference
  var next;
  def init(t, n) { this.ticket = t; this.next = n; }
}

var queue_head = nil;
var queue_tail = nil;
var audit = nil;
var served = 0;
var waited = 0;

def enqueue(job_id, now) {
  var cell = new Cell(new Ticket(job_id, now), nil);
  if (queue_tail == nil) { queue_head = cell; } else { queue_tail.next = cell; }
  queue_tail = cell;
}

def serve(now) {
  var cell = queue_head;
  queue_head = cell.next;
  if (queue_head == nil) { queue_tail = nil; }
  var t = cell.ticket;
  served = served + 1;
  waited = waited + t.age(now);
  // The audited ticket flows out of a field: not merged (by design).
  audit = new AuditCell(t, audit);
}

def main() {
  var now = 0;
  for (var wave = 0; wave < 40; wave = wave + 1) {
    for (var j = 0; j < 5; j = j + 1) { enqueue(wave * 5 + j, now); now = now + 1; }
    for (var s = 0; s < 5; s = s + 1) { serve(now); now = now + 2; }
  }
  var audits = 0;
  var a = audit;
  while (a != nil) { audits = audits + 1; a = a.next; }
  print("served", served, "total wait", waited, "audited", audits);
}
"""


def main() -> None:
    program = compile_source(SOURCE, "event_sim.icc")
    base = run_program(program)
    report = optimize(program)
    optimized = run_program(report.program)
    assert optimized.output == base.output

    print("simulation output:", base.output[0])
    print()
    for candidate in report.plan.candidates.values():
        verdict = "MERGED" if candidate.accepted else f"reference ({candidate.reject_reason})"
        print(f"  {candidate.describe():22s} {verdict}")
    print()
    print(
        f"allocations: {base.stats.allocations} -> {optimized.stats.allocations} "
        f"(+{optimized.stats.stack_allocations} stack)"
    )
    print(f"speedup: {base.stats.cycles() / optimized.stats.cycles():.2f}x")


if __name__ == "__main__":
    main()
