#!/usr/bin/env python3
"""Quickstart: the paper's Point/Rectangle example, end to end.

Compiles the running example from §2 of *Automatic Inline Allocation of
Objects* (Dolby, PLDI 1997), runs the object-inlining optimizer, shows
what the analysis decided, and compares the two builds on the VM.

Run:  python examples/quickstart.py
"""

from repro import compile_source, optimize, run_program
from repro.ir import format_callable

SOURCE = """
class Point {
  var x_pos; var y_pos;
  def init(x, y) { this.x_pos = x; this.y_pos = y; }
  def abs() { return sqrt(this.x_pos*this.x_pos + this.y_pos*this.y_pos); }
  def area(p) { return abs(this.x_pos - p.x_pos) * abs(this.y_pos - p.y_pos); }
}
class Rectangle {
  var lower_left; var upper_right;
  def init(ll, ur) { this.lower_left = ll; this.upper_right = ur; }
  def area() { return this.lower_left.area(this.upper_right); }
}
class List {
  var head_item; var tail;
  def init(h, t) { this.head_item = h; this.tail = t; }
}
def head(l) { return l.head_item; }
def do_rectangle(ll, ur) {
  var r = new Rectangle(ll, ur);
  print(r.area());
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  print(head(l1).abs());
  print(head(l2).abs());
}
def main() {
  var p1 = new Point(1.0, 2.0);
  var p2 = new Point(3.0, 4.0);
  do_rectangle(p1, p2);
}
"""


def main() -> None:
    program = compile_source(SOURCE, "quickstart.icc")

    print("=== running the uniform-model program ===")
    base = run_program(program)
    for line in base.output:
        print(" ", line)

    print("\n=== object inlining decisions ===")
    report = optimize(program)
    for candidate in report.plan.candidates.values():
        verdict = "inlined" if candidate.accepted else f"kept as reference ({candidate.reject_reason})"
        print(f"  {candidate.describe():25s} -> {verdict}")

    print("\n=== transformed Rectangle layout ===")
    for name, cls in report.program.classes.items():
        if cls.source_name == "Rectangle" and name != "Rectangle":
            print(f"  class {name}: fields = {cls.fields}")

    print("\n=== specialized Rectangle::area clone ===")
    for name, cls in report.program.classes.items():
        if cls.source_name == "Rectangle" and "area" in cls.methods:
            print(format_callable(cls.methods["area"]))
            break

    print("\n=== performance on the instrumented VM ===")
    optimized = run_program(report.program)
    assert optimized.output == base.output, "outputs must match!"
    for label, stats in (("uniform", base.stats), ("inlined", optimized.stats)):
        print(
            f"  {label:8s} cycles={stats.cycles():6d}  heap allocs={stats.allocations}"
            f"  stack allocs={stats.stack_allocations}"
            f"  heap reads={stats.heap_reads}  dispatches={stats.dynamic_dispatches}"
        )
    print(f"\n  speedup: {base.stats.cycles() / optimized.stats.cycles():.2f}x")


if __name__ == "__main__":
    main()
