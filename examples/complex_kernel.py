#!/usr/bin/env python3
"""Arrays of objects → inline (parallel) arrays: the OOPACK scenario.

A numeric kernel over arrays of complex-number objects.  In the uniform
object model every element is a heap object behind a reference; object
inlining converts the arrays to structure-of-arrays layout (the paper's
Fortran-style parallel arrays), elides the per-element allocations, and
turns element access into plain address arithmetic.

Run:  python examples/complex_kernel.py [N]
"""

import sys

from repro import compile_source, optimize, run_program

TEMPLATE = """
class Complex {
  var re; var im;
  def init(re, im) { this.re = re; this.im = im; }
  def norm() { return this.re * this.re + this.im * this.im; }
}

var N = %(n)d;

def axpy(alpha, x, y, n) {
  // y[i] = alpha * x[i] + y[i], complex.
  for (var i = 0; i < n; i = i + 1) {
    var xi = x[i];
    var yi = y[i];
    y[i] = new Complex(alpha * xi.re + yi.re, alpha * xi.im + yi.im);
  }
}

def main() {
  var x = inline_array(N);
  var y = inline_array(N);
  for (var i = 0; i < N; i = i + 1) {
    x[i] = new Complex(float(i), float(N - i));
    y[i] = new Complex(0.5, -0.5);
  }
  for (var round = 0; round < 4; round = round + 1) {
    axpy(0.25, x, y, N);
  }
  var total = 0.0;
  for (var j = 0; j < N; j = j + 1) { total = total + y[j].norm(); }
  print("checksum", total);
}
"""


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    program = compile_source(TEMPLATE % {"n": n}, "complex_kernel.icc")

    base = run_program(program)
    report = optimize(program)
    optimized = run_program(report.program)
    assert optimized.output == base.output

    print("output:", base.output[0])
    print()
    accepted = [c.describe() for c in report.plan.accepted()]
    print("inlined locations:", ", ".join(accepted))
    print()
    header = f"{'':10s} {'cycles':>10s} {'allocs':>8s} {'stack':>7s} {'misses':>8s} {'miss rate':>10s}"
    print(header)
    for label, stats in (("uniform", base.stats), ("inlined", optimized.stats)):
        print(
            f"{label:10s} {stats.cycles():>10d} {stats.allocations:>8d} "
            f"{stats.stack_allocations:>7d} {stats.cache.misses:>8d} "
            f"{stats.cache.miss_rate:>10.4f}"
        )
    print(f"\nspeedup: {base.stats.cycles() / optimized.stats.cycles():.2f}x")
    print(
        "\nThe element state now lives inside the arrays themselves "
        "(structure-of-arrays for two-field elements), so the kernel "
        "streams memory instead of chasing references."
    )


if __name__ == "__main__":
    main()
