#!/usr/bin/env python3
"""Inlining a polymorphic private-data field: the Richards scenario.

Each task subclass stores a different record type behind one ``priv``
field — ``void*`` in the C++ original, so *impossible* to declare inline
there.  The optimizer splits the Task class per subclass (class cloning)
and inlines each record independently, which is the paper's flagship
"better than C++" example.

Run:  python examples/polymorphic_records.py
"""

from repro import compile_source, optimize, run_program

SOURCE = """
class TimerRec {
  var period; var remaining;
  def init(period) { this.period = period; this.remaining = period; }
  def tick() {
    this.remaining = this.remaining - 1;
    if (this.remaining == 0) { this.remaining = this.period; return 1; }
    return 0;
  }
}
class CounterRec {
  var count;
  def init() { this.count = 0; }
  def tick() { this.count = this.count + 1; return 0; }
}
class LoggerRec {
  var lines; var last;
  def init() { this.lines = 0; this.last = 0; }
  def note(v) { this.lines = this.lines + 1; this.last = v; }
}

class Task {
  var id;
  var priv;     // void* in C++: a different record per subclass
  def init(id, priv) { this.id = id; this.priv = priv; }
}
class TimerTask : Task {
  def step(now) { return this.priv.tick(); }
}
class CounterTask : Task {
  def step(now) { return this.priv.tick(); }
}
class LoggerTask : Task {
  def step(now) { this.priv.note(now); return 0; }
}

def main() {
  var tasks = array(3);
  tasks[0] = new TimerTask(0, new TimerRec(7));
  tasks[1] = new CounterTask(1, new CounterRec());
  tasks[2] = new LoggerTask(2, new LoggerRec());
  var fired = 0;
  for (var now = 0; now < 100; now = now + 1) {
    for (var t = 0; t < 3; t = t + 1) {
      fired = fired + tasks[t].step(now);
    }
  }
  print("fired", fired);
}
"""


def main() -> None:
    program = compile_source(SOURCE, "polymorphic_records.icc")
    base = run_program(program)
    report = optimize(program)
    optimized = run_program(report.program)
    assert optimized.output == base.output

    print("output:", base.output[0])
    print()
    print("decisions:")
    for candidate in report.plan.candidates.values():
        verdict = "inlined" if candidate.accepted else f"reference ({candidate.reject_reason})"
        print(f"  {candidate.describe():22s} {verdict}")
    print()
    print("class variants created (one Task layout per record type):")
    for name, cls in sorted(report.program.classes.items()):
        if cls.source_name in ("Task", "TimerTask", "CounterTask", "LoggerTask") \
                and name != cls.source_name:
            print(f"  {name:18s} fields = {cls.fields}")
    print()
    print(
        f"heap reads: {base.stats.heap_reads} -> {optimized.stats.heap_reads}  "
        f"(each priv access is one dereference shorter)"
    )
    print(f"speedup: {base.stats.cycles() / optimized.stats.cycles():.2f}x")


if __name__ == "__main__":
    main()
