"""Observability: phase spans, counters, decision traces, JSONL export.

See docs/OBSERVABILITY.md for the event schema and a worked example.
"""

from .summary import (
    PhaseStat,
    TraceSummary,
    read_events,
    render_file,
    render_summary,
    summarize_events,
    summarize_file,
    summarize_files,
)
from .tracer import (
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullTracer,
    Tracer,
    TraceShard,
    tracer_to_file,
)

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "PhaseStat",
    "Tracer",
    "TraceShard",
    "TraceSummary",
    "read_events",
    "render_file",
    "render_summary",
    "summarize_events",
    "summarize_file",
    "summarize_files",
    "tracer_to_file",
]
