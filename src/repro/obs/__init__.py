"""Observability: phase spans, counters, decision traces, JSONL export.

See docs/OBSERVABILITY.md for the event schema and a worked example.
"""

from .summary import (
    PhaseStat,
    TraceSummary,
    read_events,
    render_file,
    render_summary,
    summarize_events,
    summarize_file,
)
from .tracer import (
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullTracer,
    Tracer,
    tracer_to_file,
)

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "PhaseStat",
    "Tracer",
    "TraceSummary",
    "read_events",
    "render_file",
    "render_summary",
    "summarize_events",
    "summarize_file",
    "tracer_to_file",
]
