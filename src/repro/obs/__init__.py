"""Observability: phase spans, counters, decision traces, JSONL export.

See docs/OBSERVABILITY.md for the event schema and a worked example.
"""

from .heatmap import (
    LocalityReport,
    collect_locality,
    label_display_name,
    locality_from_file,
    misses_by_field,
    render_heatmap,
    render_locality_diff,
    report_from_stats,
)
from .summary import (
    PhaseStat,
    TraceSummary,
    read_events,
    render_file,
    render_summary,
    summarize_events,
    summarize_file,
    summarize_files,
)
from .tracer import (
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    NullTracer,
    Tracer,
    TraceShard,
    tracer_to_file,
)

__all__ = [
    "JsonlSink",
    "LocalityReport",
    "MemorySink",
    "NULL_TRACER",
    "NullTracer",
    "PhaseStat",
    "Tracer",
    "TraceShard",
    "TraceSummary",
    "collect_locality",
    "label_display_name",
    "locality_from_file",
    "misses_by_field",
    "read_events",
    "render_file",
    "render_heatmap",
    "render_locality_diff",
    "render_summary",
    "report_from_stats",
    "summarize_events",
    "summarize_file",
    "summarize_files",
    "tracer_to_file",
]
