"""Structured tracing for the compiler pipeline.

The tracer records three kinds of facts:

- **Spans** — nested wall-clock timers around pipeline phases
  (``analyze``, ``plan``, ``transform``, the scalar passes, ...).  A span
  also captures the delta of every counter that moved while it was open,
  so "the second replan round created 14 contours" falls out for free.
- **Counters** — monotonic named totals (worklist steps, contour
  creations, partitions, VM statistics).  Incrementing a counter is a
  dict update; nothing is emitted until a span closes or the tracer is.
- **Events** — point-in-time records with a structured payload; the
  inlining decision trace (every candidate acceptance/rejection with its
  stage and reason) is emitted this way.

Everything flows to a :class:`Sink` as plain dicts — one JSON object per
line when the sink is a :class:`JsonlSink` (see docs/OBSERVABILITY.md for
the schema), or an in-memory list for tests and the bench harness.

The default tracer everywhere is :data:`NULL_TRACER`, whose every method
is an inert no-op (no allocation, no I/O, no timestamping), so
uninstrumented runs pay nothing beyond an attribute load per phase.

Concurrency model: a :class:`Tracer` is **single-owner** — exactly one
thread (or process) opens and closes its spans.  Concurrent workloads
give every worker its own tracer (:meth:`Tracer.child` in-process, a
fresh ``Tracer(MemorySink())`` in a worker process) and fold the results
back with :meth:`Tracer.merge`, which re-emits the worker's events with
freshly allocated span ids so merged streams never collide.  The sinks
themselves *are* thread-safe: emits are serialized by a lock, so one
JSONL file fed by a merging parent never interleaves partial lines.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Callable


class MemorySink:
    """Collects events into a list (tests, bench phase timings).

    ``emit`` appends under a lock, so several tracers/threads may share
    one sink without tearing the event list.
    """

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        self.closed = True

    # Locks don't pickle; analysis results reference their tracer (and
    # thus its sink), so drop the lock on the way out and rebuild it.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class JsonlSink:
    """Writes one compact JSON object per line to a path or file object.

    Each line is serialized and written atomically under a lock, so
    concurrent emitters cannot interleave partial lines.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        # default=repr: a degraded pipeline stage may surface arbitrary
        # exception payloads in its event fields; a trace sink must never
        # be the thing that crashes the compile.
        line = json.dumps(event, separators=(",", ":"), default=repr) + "\n"
        with self._lock:
            self._file.write(line)

    def close(self) -> None:
        with self._lock:
            self._file.flush()
            if self._owns_file:
                self._file.close()


@dataclass(slots=True)
class TraceShard:
    """A picklable snapshot of one tracer's output, for cross-process merge.

    Worker processes cannot hand their :class:`Tracer` back to the parent
    (sinks hold locks and file handles), so they ship a shard — the
    buffered events plus the in-memory aggregates — and the parent folds
    it in with :meth:`Tracer.merge`.
    """

    events: list[dict] = field(default_factory=list)
    span_totals: dict[str, list[float]] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)


class _NullSpan:
    """The span of the no-op tracer; a reusable, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    Kept deliberately branch-free so instrumentation hooks can call it
    unconditionally from hot paths.
    """

    enabled = False

    def span(self, name: str, **meta: object) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, delta: int = 1) -> None:
        pass

    def event(self, name: str, **data: object) -> None:
        pass

    def child(self) -> "NullTracer":
        return self

    def merge(self, other: object) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared inert tracer instance; the default for every instrumented API.
NULL_TRACER = NullTracer()


class _Span:
    """One live span: emits begin/end events and diffs the counters."""

    __slots__ = ("_tracer", "name", "id", "meta", "_counters_at_entry")

    def __init__(self, tracer: "Tracer", name: str, meta: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.meta = meta
        self.id = 0
        self._counters_at_entry: dict[str, int] = {}

    def __enter__(self) -> "_Span":
        self._tracer._begin_span(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._end_span(self)
        return False


class Tracer:
    """Records spans, counters, and events to a :class:`Sink`.

    ``sink`` may be ``None``: the tracer then only accumulates the
    in-memory aggregates (``counters`` and ``span_totals``), which is what
    the bench harness uses to time phases without materializing a file.
    The clock is injectable for deterministic tests.

    A tracer is **single-owner**: its span stack assumes one thread opens
    and closes spans.  Concurrent work units each get their own tracer —
    :meth:`child` for an in-process unit sharing this tracer's clock and
    epoch, or a fresh ``Tracer(MemorySink())`` in a worker process — and
    are folded back with :meth:`merge` when the unit joins.
    """

    enabled = True

    def __init__(
        self,
        sink: MemorySink | JsonlSink | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._t0 = clock()
        self._next_span_id = 1
        self._stack: list[_Span] = []
        #: Monotonic totals; emitted as a final ``counters`` event on close.
        self.counters: dict[str, int] = {}
        #: name -> [occurrences, total seconds], aggregated live.
        self.span_totals: dict[str, list[float]] = {}
        self._span_started_at: dict[int, float] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Public API (mirrors NullTracer).

    def span(self, name: str, **meta: object) -> _Span:
        return _Span(self, name, meta)

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def event(self, name: str, **data: object) -> None:
        self._emit({"ev": "event", "ts": self._now(), "name": name, "data": data})

    def close(self) -> None:
        """Emit the final counter totals and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.counters:
            self._emit({"ev": "counters", "ts": self._now(), "counters": dict(self.counters)})
        if self._sink is not None:
            self._sink.close()

    # ------------------------------------------------------------------
    # Concurrency: per-unit child tracers and the merge API.

    def child(self) -> "Tracer":
        """A fresh single-owner tracer for one concurrent work unit.

        The child shares this tracer's clock and epoch, so its timestamps
        are directly comparable to the parent's after :meth:`merge`.  It
        buffers events in its own :class:`MemorySink` (or records
        aggregates only, when this tracer has no sink) — nothing reaches
        the parent's sink until the unit joins and is merged.
        """
        twin = Tracer(
            MemorySink() if self._sink is not None else None, clock=self._clock
        )
        twin._t0 = self._t0
        return twin

    def shard(self) -> TraceShard:
        """Snapshot this tracer's output for transport to another process.

        Events are only recoverable from a :class:`MemorySink`; a tracer
        writing straight to JSONL shards its aggregates alone.
        """
        events = (
            list(self._sink.events) if isinstance(self._sink, MemorySink) else []
        )
        return TraceShard(
            events=events,
            span_totals={name: list(t) for name, t in self.span_totals.items()},
            counters=dict(self.counters),
        )

    def merge(self, other: "Tracer | TraceShard") -> None:
        """Fold a finished child tracer (or its shard) into this tracer.

        Span totals and counters are summed; the child's buffered events
        are re-emitted to this tracer's sink with freshly allocated span
        ids (begin/end pairing and parent links preserved), so events
        merged from many workers never collide.  The child's roots stay
        roots — merged spans are not reparented under whatever span this
        tracer currently has open.  The child's final ``counters`` event,
        if any, is dropped: this tracer re-emits grand totals at close.
        """
        shard = other.shard() if isinstance(other, Tracer) else other
        if self._sink is not None:
            id_map: dict[int, int] = {}
            for event in shard.events:
                if event.get("ev") == "counters":
                    continue
                record = dict(event)
                span_id = record.get("id")
                if span_id is not None:
                    if span_id not in id_map:
                        id_map[span_id] = self._next_span_id
                        self._next_span_id += 1
                    record["id"] = id_map[span_id]
                if record.get("parent") is not None:
                    record["parent"] = id_map.get(record["parent"])
                self._emit(record)
        for name, (count, seconds) in shard.span_totals.items():
            total = self.span_totals.setdefault(name, [0, 0.0])
            total[0] += count
            total[1] += seconds
        for name, value in shard.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    # Span plumbing.

    def _now(self) -> float:
        return self._clock() - self._t0

    def _emit(self, event: dict) -> None:
        if self._sink is not None:
            self._sink.emit(event)

    def _begin_span(self, span: _Span) -> None:
        span.id = self._next_span_id
        self._next_span_id += 1
        span._counters_at_entry = dict(self.counters)
        now = self._now()
        self._span_started_at[span.id] = now
        record = {
            "ev": "span_begin",
            "ts": now,
            "id": span.id,
            "parent": self._stack[-1].id if self._stack else None,
            "name": span.name,
        }
        if span.meta:
            record["meta"] = span.meta
        self._stack.append(span)
        self._emit(record)

    def _end_span(self, span: _Span) -> None:
        now = self._now()
        duration = now - self._span_started_at.pop(span.id, now)
        # Tolerate mispaired exits defensively: unwind to this span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        total = self.span_totals.setdefault(span.name, [0, 0.0])
        total[0] += 1
        total[1] += duration
        deltas = {
            name: value - span._counters_at_entry.get(name, 0)
            for name, value in self.counters.items()
            if value != span._counters_at_entry.get(name, 0)
        }
        record = {
            "ev": "span_end",
            "ts": now,
            "id": span.id,
            "name": span.name,
            "dur": duration,
        }
        if deltas:
            record["counters"] = deltas
        self._emit(record)


def tracer_to_file(path: str) -> Tracer:
    """Convenience: a tracer writing JSONL to ``path``."""
    return Tracer(JsonlSink(path))
