"""Live metrics for the compile service: counters, gauges, histograms.

The tracer (:mod:`repro.obs.tracer`) answers *"what happened during this
run"* — a post-hoc, per-request record.  This module answers *"what is
the daemon doing right now"*: always-on aggregates cheap enough to leave
enabled in production, scraped over the wire via the ``metrics`` op and
rendered by ``repro metrics`` (plain, ``--prom``, or ``--watch``).

Design mirrors the tracer deliberately:

- **Instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  are registered once on a :class:`MetricsRegistry` and bound to label
  children with :meth:`~_Family.labels`.  Children are memoized, so the
  hot path is one dict update — no allocation, no locking (CPython dict
  ops are atomic enough for monotonic counters, the same bet
  ``Tracer.count`` makes).
- **Snapshot/merge** parallels :class:`~repro.obs.tracer.TraceShard`:
  worker processes cannot ship the registry itself, so they ship
  :meth:`MetricsRegistry.to_dict` and the daemon folds it in with
  :meth:`MetricsRegistry.merge_snapshot` (counters and histogram buckets
  sum; gauges are last-writer-wins).
- **The disabled path is free.**  :data:`NULL_METRICS` hands back one
  shared inert instrument whose ``inc``/``set``/``observe`` are no-ops
  and whose ``labels()`` returns itself — zero allocation, matching the
  :data:`~repro.obs.tracer.NULL_TRACER` contract.  Call sites that would
  otherwise build kwargs guard with ``if metrics.enabled:``.

Naming follows Prometheus conventions: ``snake_case``, unit suffix
(``_seconds``, ``_bytes``), ``_total`` for counters.  Keep label sets
tiny and closed (op names, stage names, fault kinds — never request ids,
sources, or paths): every label combination materializes a child.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field


#: Latency buckets (seconds): 1ms .. 10s, roughly log-spaced.  Chosen so
#: the service SLO targets (tens to hundreds of ms) land mid-range and
#: the loadgen percentile cross-check has boundaries to agree on.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Artifact-size buckets (bytes): 1 KiB .. 16 MiB, powers of four.
DEFAULT_SIZE_BUCKETS = (
    1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)


class _NullInstrument:
    """The inert instrument: every mutator is a no-op, ``labels`` is identity."""

    __slots__ = ()

    def labels(self, **kw: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The default registry: hands out the shared inert instrument."""

    enabled = False

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
        labels: tuple = (),
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass


#: Shared inert registry; the default for every instrumented API.
NULL_METRICS = NullMetrics()


class _Child:
    """One labeled series of a counter or gauge family."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Family", key: tuple) -> None:
        self._family = family
        self._key = key

    def inc(self, amount: float = 1) -> None:
        values = self._family.values
        values[self._key] = values.get(self._key, 0) + amount

    def dec(self, amount: float = 1) -> None:
        values = self._family.values
        values[self._key] = values.get(self._key, 0) - amount

    def set(self, value: float) -> None:
        self._family.values[self._key] = value

    @property
    def value(self) -> float:
        return self._family.values.get(self._key, 0)


class _HistogramChild:
    """One labeled histogram series: per-bucket counts + sum + count.

    Buckets store *non-cumulative* counts internally (mergeable by plain
    addition); exposition cumulates them on the way out.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: tuple) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1


class _Family:
    """A registered metric family: fixed type, help, label names."""

    __slots__ = ("name", "type", "help", "label_names", "buckets", "values", "_children")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        label_names: tuple,
        buckets: tuple | None = None,
    ) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self.buckets = buckets
        #: counter/gauge: label-tuple -> number.
        #: histogram: label-tuple -> _HistogramChild.
        self.values: dict[tuple, object] = {}
        self._children: dict[tuple, object] = {}

    def labels(self, **kw: str) -> object:
        key = tuple(str(kw[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child(key)
            self._children[key] = child
        return child

    def _make_child(self, key: tuple) -> object:
        if self.type == "histogram":
            series = self.values.get(key)
            if series is None:
                series = _HistogramChild(self.buckets)
                self.values[key] = series
            return series
        return _Child(self, key)

    # Unlabeled families are used directly as the instrument.
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """Sum across all series (counters/gauges); tests and digests."""
        return sum(v for v in self.values.values() if isinstance(v, (int, float)))


class MetricsRegistry:
    """Holds metric families; snapshot/merge across processes.

    Re-registering a name returns the existing family; a type, label-set,
    or bucket mismatch raises ``ValueError`` — a silent merge of
    incompatible series would corrupt the exposition.
    """

    enabled = True

    def __init__(self) -> None:
        self.families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Registration.

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> _Family:
        return self._register(name, "counter", help, tuple(labels), None)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> _Family:
        return self._register(name, "gauge", help, tuple(labels), None)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple = DEFAULT_LATENCY_BUCKETS,
        labels: tuple = (),
    ) -> _Family:
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs at least one bucket boundary")
        return self._register(name, "histogram", help, tuple(labels), boundaries)

    def _register(
        self, name: str, type_: str, help_: str, labels: tuple, buckets: tuple | None
    ) -> _Family:
        family = self.families.get(name)
        if family is not None:
            if family.type != type_ or family.label_names != labels or (
                buckets is not None and family.buckets != buckets
            ):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"type/labels/buckets"
                )
            if not family.help and help_:
                family.help = help_
            return family
        family = _Family(name, type_, help_, labels, buckets)
        self.families[name] = family
        return family

    # ------------------------------------------------------------------
    # Snapshot / merge (the TraceShard of metrics).

    def to_dict(self) -> dict:
        """A canonical, JSON-serializable snapshot of every family."""
        out: dict = {}
        for name in sorted(self.families):
            family = self.families[name]
            series = []
            for key in sorted(family.values):
                labels = dict(zip(family.label_names, key))
                value = family.values[key]
                if family.type == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "counts": list(value.counts),
                            "sum": value.sum,
                            "count": value.count,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": value})
            entry: dict = {
                "type": family.type,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
            if family.buckets is not None:
                entry["buckets"] = list(family.buckets)
            out[name] = entry
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` payload in: sum counters and histogram
        buckets, last-writer-wins gauges.  Unknown families are created
        from the snapshot's own type info, so a worker-only family (e.g.
        pipeline stage timings) surfaces in the daemon registry."""
        for name, entry in snapshot.items():
            type_ = entry.get("type", "counter")
            labels = tuple(entry.get("labels", ()))
            buckets = tuple(entry.get("buckets", ())) or None
            if type_ == "histogram":
                family = self.histogram(
                    name, entry.get("help", ""), buckets or DEFAULT_LATENCY_BUCKETS, labels
                )
            elif type_ == "gauge":
                family = self.gauge(name, entry.get("help", ""), labels)
            else:
                family = self.counter(name, entry.get("help", ""), labels)
            for item in entry.get("series", ()):
                key = tuple(str(item["labels"].get(n, "")) for n in family.label_names)
                if family.type == "histogram":
                    child = family.values.get(key)
                    if child is None:
                        child = _HistogramChild(family.buckets)
                        family.values[key] = child
                    counts = item.get("counts", ())
                    if len(counts) == len(child.counts):
                        for i, c in enumerate(counts):
                            child.counts[i] += c
                        child.sum += item.get("sum", 0.0)
                        child.count += item.get("count", 0)
                elif family.type == "gauge":
                    family.values[key] = item.get("value", 0)
                else:
                    family.values[key] = family.values.get(key, 0) + item.get("value", 0)


# ----------------------------------------------------------------------
# Derivations and exposition.


def quantile_from_buckets(boundaries: list, counts: list, q: float) -> float | None:
    """The histogram-derived ``q``-quantile: the upper boundary of the
    bucket containing the target rank (``counts`` non-cumulative, with a
    trailing +Inf bucket).  Observations in the overflow bucket report
    the highest finite boundary — the best the histogram can say.
    Returns ``None`` for an empty series."""
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    seen = 0.0
    for i, count in enumerate(counts):
        seen += count
        if seen >= rank and count:
            return float(boundaries[i]) if i < len(boundaries) else float(boundaries[-1])
    return float(boundaries[-1])


def bucket_index(boundaries: list, value: float) -> int:
    """Which bucket a value falls into (len(boundaries) = +Inf overflow)."""
    return bisect_left([float(b) for b in boundaries], value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_str(labels: dict, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prom(snapshot: dict) -> str:
    """Prometheus text exposition (version 0.0.4) of a registry snapshot.

    Histogram buckets are cumulated here and closed with ``+Inf``, so
    ``histogram_quantile()`` works out of the box.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        type_ = entry.get("type", "counter")
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {type_}")
        for item in entry.get("series", ()):
            labels = item.get("labels", {})
            if type_ == "histogram":
                boundaries = entry.get("buckets", [])
                counts = item.get("counts", [])
                cumulative = 0
                for boundary, count in zip(boundaries, counts):
                    cumulative += count
                    le = _label_str(labels, f'le="{_format_value(float(boundary))}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += counts[len(boundaries)] if len(counts) > len(boundaries) else 0
                inf_label = _label_str(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_label} {cumulative}")
                lines.append(f"{name}_sum{_label_str(labels)} {_format_value(item.get('sum', 0.0))}")
                lines.append(f"{name}_count{_label_str(labels)} {item.get('count', 0)}")
            else:
                lines.append(f"{name}{_label_str(labels)} {_format_value(item.get('value', 0))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Digest helpers shared by `repro metrics` (watch mode) and chaos triage.


def _series_value(snapshot: dict, name: str, match: dict | None = None) -> float:
    entry = snapshot.get(name)
    if not entry:
        return 0.0
    total = 0.0
    for item in entry.get("series", ()):
        labels = item.get("labels", {})
        if match is not None and any(labels.get(k) != v for k, v in match.items()):
            continue
        total += item.get("value", 0)
    return total


def _histogram_series(snapshot: dict, name: str, match: dict | None = None):
    """Merged (boundaries, counts, sum, count) across matching series."""
    entry = snapshot.get(name)
    if not entry or entry.get("type") != "histogram":
        return None
    boundaries = entry.get("buckets", [])
    counts = [0] * (len(boundaries) + 1)
    total_sum, total_count = 0.0, 0
    for item in entry.get("series", ()):
        labels = item.get("labels", {})
        if match is not None and any(labels.get(k) != v for k, v in match.items()):
            continue
        for i, c in enumerate(item.get("counts", ())):
            if i < len(counts):
                counts[i] += c
        total_sum += item.get("sum", 0.0)
        total_count += item.get("count", 0)
    if total_count == 0:
        return None
    return boundaries, counts, total_sum, total_count


@dataclass(slots=True)
class MetricsDigest:
    """The handful of numbers a human wants first (watch mode, triage)."""

    uptime_s: float = 0.0
    requests: float = 0.0
    errors: float = 0.0
    req_per_s: float = 0.0
    error_rate: float = 0.0
    p50_s: float | None = None
    p95_s: float | None = None
    p99_s: float | None = None
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    hit_rate: float = 0.0
    faults: dict = field(default_factory=dict)
    slo_p99_s: float | None = None
    slo_error_rate: float | None = None

    def to_dict(self) -> dict:
        return {
            "uptime_s": round(self.uptime_s, 3),
            "requests": self.requests,
            "errors": self.errors,
            "req_per_s": round(self.req_per_s, 2),
            "error_rate": round(self.error_rate, 4),
            "p50_ms": None if self.p50_s is None else round(self.p50_s * 1e3, 3),
            "p95_ms": None if self.p95_s is None else round(self.p95_s * 1e3, 3),
            "p99_ms": None if self.p99_s is None else round(self.p99_s * 1e3, 3),
            "cache_hit_rate": round(self.hit_rate, 4),
            "faults": dict(self.faults),
        }


def digest(snapshot: dict) -> MetricsDigest:
    """Summarize a registry snapshot into a :class:`MetricsDigest`."""
    d = MetricsDigest()
    d.uptime_s = _series_value(snapshot, "service_uptime_seconds")
    d.requests = _series_value(snapshot, "service_requests_total")
    d.errors = _series_value(snapshot, "service_errors_total")
    if d.uptime_s > 0:
        d.req_per_s = d.requests / d.uptime_s
    if d.requests > 0:
        d.error_rate = d.errors / d.requests
    merged = _histogram_series(snapshot, "service_request_seconds", {"code": "ok"})
    if merged is None:
        merged = _histogram_series(snapshot, "service_request_seconds")
    if merged is not None:
        boundaries, counts, _, _ = merged
        d.p50_s = quantile_from_buckets(boundaries, counts, 0.50)
        d.p95_s = quantile_from_buckets(boundaries, counts, 0.95)
        d.p99_s = quantile_from_buckets(boundaries, counts, 0.99)
    d.cache_hits = _series_value(snapshot, "service_store_hits_total")
    d.cache_misses = _series_value(snapshot, "service_store_misses_total")
    looked = d.cache_hits + d.cache_misses
    if looked > 0:
        d.hit_rate = d.cache_hits / looked
    faults_entry = snapshot.get("service_faults_total", {})
    for item in faults_entry.get("series", ()):
        kind = item.get("labels", {}).get("kind", "?")
        d.faults[kind] = d.faults.get(kind, 0) + item.get("value", 0)
    slo_p99 = _series_value(snapshot, "service_slo_p99_seconds")
    slo_err = _series_value(snapshot, "service_slo_error_rate")
    d.slo_p99_s = slo_p99 or None
    d.slo_error_rate = slo_err or None
    return d


def render_digest(snapshot: dict) -> str:
    """The human-readable metrics panel (plain `repro metrics`, --watch)."""
    d = digest(snapshot)

    def _ms(v: float | None) -> str:
        return "-" if v is None else f"{v * 1e3:.1f}ms"

    lines = [
        f"uptime      {d.uptime_s:.1f}s",
        f"requests    {d.requests:.0f}  ({d.req_per_s:.1f} req/s)",
        f"errors      {d.errors:.0f}  ({d.error_rate * 100:.2f}%)",
        f"latency     p50 {_ms(d.p50_s)}  p95 {_ms(d.p95_s)}  p99 {_ms(d.p99_s)}",
        f"cache       {d.cache_hits:.0f} hits / {d.cache_misses:.0f} misses"
        f"  ({d.hit_rate * 100:.1f}% hit rate)",
    ]
    if d.faults:
        injected = "  ".join(f"{k}={v:.0f}" for k, v in sorted(d.faults.items()))
        lines.append(f"faults      {injected}")
    if d.slo_p99_s is not None or d.slo_error_rate is not None:
        burn = []
        if d.slo_p99_s is not None and d.p99_s is not None:
            ratio = d.p99_s / d.slo_p99_s if d.slo_p99_s else 0.0
            state = "OK" if d.p99_s <= d.slo_p99_s else "BURNING"
            burn.append(f"p99 {ratio * 100:.0f}% of {d.slo_p99_s * 1e3:.0f}ms [{state}]")
        if d.slo_error_rate is not None:
            state = "OK" if d.error_rate <= d.slo_error_rate else "BURNING"
            burn.append(
                f"errors {d.error_rate * 100:.2f}% vs {d.slo_error_rate * 100:.2f}% [{state}]"
            )
        if burn:
            lines.append("slo         " + "  ".join(burn))
    depth = _series_value(snapshot, "service_queue_depth")
    inflight = _series_value(snapshot, "service_inflight_dispatches")
    coalesced = _series_value(snapshot, "service_coalesced_total")
    lines.append(
        f"work        queue {depth:.0f}  inflight {inflight:.0f}  coalesced {coalesced:.0f}"
    )
    return "\n".join(lines)
