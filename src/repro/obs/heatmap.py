"""Locality reports: address-space heatmaps and per-field miss diffs.

This is the consumer side of the cache simulator's attribution mode
(:class:`repro.runtime.cache.LocalityStats`).  A traced run with
``attribute_locality=True`` emits bounded ``run.locality`` and
``run.heatmap`` events; this module aggregates them back into a
:class:`LocalityReport` and renders:

* an ASCII address-space heatmap (one row per address bucket, bar length
  proportional to misses) plus a per-``(class, field)`` miss table —
  ``repro heatmap TRACE``;
* a side-by-side locality diff of two traces that names the fields whose
  misses a layout change (e.g. inline allocation) eliminated —
  ``repro heatmap BEFORE AFTER``.

Labels collapse to display names before comparison (``Complex.re``,
``Complex[]``, ``new Complex``) so a field access through a uniform
object and the same field through an inline-array view line up in the
diff even though their raw ``(kind, class, field, site)`` labels differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .summary import read_events

#: Shades used for the heatmap bar, light to dark.
_BAR_CHAR = "#"


@dataclass(slots=True)
class LocalityReport:
    """Aggregated locality data from one trace (possibly several runs)."""

    #: Aggregated label entries: display name -> {kind, class, field,
    #: sites, reads, writes, misses, accesses}.
    labels: dict[str, dict] = field(default_factory=dict)
    #: bucket index -> {"base": int, "misses": int, "accesses": int}.
    buckets: dict[int, dict] = field(default_factory=dict)
    bucket_bytes: int = 0
    total_misses: int = 0
    total_accesses: int = 0
    #: Labels/buckets dropped at trace time by the top-K bound.
    truncated_labels: int = 0
    truncated_buckets: int = 0
    #: Number of ``run.locality`` events folded in.
    runs: int = 0

    @property
    def has_data(self) -> bool:
        return self.runs > 0

    def misses_of(self, name: str) -> int:
        entry = self.labels.get(name)
        return entry["misses"] if entry else 0


def label_display_name(kind: str, cls: str | None, fld: str | None) -> str:
    """Collapse a raw attribution label to a layout-independent name.

    Element accesses become ``cls[]``, allocation touches ``new cls``,
    field accesses ``cls.fld`` — whether the field lives in a standalone
    object (``kind == "field"``) or an inline array (``"inline_field"``).
    Clone-variant suffixes (``Complex@elem1``) are stripped so a field
    read through an inline-array view lines up with the same field of
    the uniform layout in before/after diffs.
    """
    cls = cls or "?"
    if "@" in cls:
        base, _, rest = cls.partition("@")
        cls = base + ("[]" if rest.endswith("[]") else "")
    if kind == "element":
        return f"{cls}[]"
    if kind == "alloc":
        return f"new {cls}"
    if fld:
        return f"{cls}.{fld}"
    return cls


def collect_locality(events: list[dict]) -> LocalityReport:
    """Fold all ``run.locality`` / ``run.heatmap`` events into one report."""
    report = LocalityReport()
    for record in events:
        if record.get("ev") != "event":
            continue
        name = record.get("name")
        data = record.get("data", {})
        if name == "run.locality":
            report.runs += 1
            report.truncated_labels += int(data.get("truncated", 0))
            for entry in data.get("labels", []):
                display = label_display_name(
                    entry.get("kind", "other"),
                    entry.get("class"),
                    entry.get("field"),
                )
                slot = report.labels.setdefault(
                    display,
                    {
                        "kind": entry.get("kind", "other"),
                        "class": entry.get("class"),
                        "field": entry.get("field"),
                        "sites": set(),
                        "reads": 0,
                        "writes": 0,
                        "misses": 0,
                        "accesses": 0,
                    },
                )
                if entry.get("site"):
                    slot["sites"].add(entry["site"])
                slot["reads"] += int(entry.get("reads", 0))
                slot["writes"] += int(entry.get("writes", 0))
                slot["misses"] += int(entry.get("misses", 0))
                slot["accesses"] += int(entry.get("accesses", 0))
        elif name == "run.heatmap":
            report.bucket_bytes = int(data.get("bucket_bytes", 0)) or report.bucket_bytes
            report.total_misses += int(data.get("total_misses", 0))
            report.total_accesses += int(data.get("total_accesses", 0))
            report.truncated_buckets += int(data.get("truncated", 0))
            for bucket in data.get("buckets", []):
                index = int(bucket.get("index", 0))
                slot = report.buckets.setdefault(
                    index, {"base": int(bucket.get("base", 0)), "misses": 0, "accesses": 0}
                )
                slot["misses"] += int(bucket.get("misses", 0))
                slot["accesses"] += int(bucket.get("accesses", 0))
    return report


def locality_from_file(path: str) -> LocalityReport:
    with open(path, "r", encoding="utf-8") as handle:
        events, _malformed = read_events(handle)
    return collect_locality(events)


def report_from_stats(locality) -> LocalityReport:
    """Build a report straight from a live :class:`LocalityStats`.

    Used by in-process callers (``repro run --locality``) that have the
    stats object in hand and need no JSONL round-trip.  Passes
    ``top_k=None``-equivalent bounds by asking for everything.
    """
    label_summary = locality.label_summary(top_k=len(locality.by_label) or 1)
    heatmap_summary = locality.heatmap_summary(top_k=len(locality.bucket_misses) or 1)
    events = [
        {"ev": "event", "name": "run.locality", "data": label_summary},
        {"ev": "event", "name": "run.heatmap", "data": heatmap_summary},
    ]
    return collect_locality(events)


def misses_by_field(report: LocalityReport) -> dict[str, int]:
    """Display name -> miss count, restricted to field-kind labels."""
    return {
        name: entry["misses"]
        for name, entry in report.labels.items()
        if entry["kind"] in ("field", "inline_field")
    }


def _bar(value: int, peak: int, width: int) -> str:
    if peak <= 0 or value <= 0:
        return ""
    length = max(1, round(value / peak * width))
    return _BAR_CHAR * min(length, width)


def render_heatmap(report: LocalityReport, top: int = 20, width: int = 40) -> str:
    """ASCII address-space heatmap plus the per-label miss table."""
    lines: list[str] = []
    if not report.has_data:
        return (
            "no locality data in trace "
            "(run with --locality / attribute_locality=True)"
        )

    lines.append(
        f"address-space heatmap: {report.total_misses} misses / "
        f"{report.total_accesses} accesses, bucket = {report.bucket_bytes} bytes"
    )
    ordered = sorted(report.buckets.items())
    peak = max((b["misses"] for _, b in ordered), default=0)
    lines.append(f"{'bucket base':>14s} {'misses':>8s} {'accesses':>9s}")
    for _index, bucket in ordered:
        lines.append(
            f"{bucket['base']:>#14x} {bucket['misses']:>8d} {bucket['accesses']:>9d} "
            f"{_bar(bucket['misses'], peak, width)}"
        )
    if report.truncated_buckets:
        lines.append(f"({report.truncated_buckets} bucket(s) truncated at trace time)")

    lines.append("")
    lines.append(f"{'label':32s} {'kind':>12s} {'misses':>8s} {'accesses':>9s} {'sites'}")
    ranked = sorted(
        report.labels.items(), key=lambda kv: (-kv[1]["misses"], -kv[1]["accesses"], kv[0])
    )
    for name, entry in ranked[:top]:
        sites = ", ".join(sorted(entry["sites"])) or "-"
        lines.append(
            f"{name:32s} {entry['kind']:>12s} {entry['misses']:>8d} "
            f"{entry['accesses']:>9d} {sites}"
        )
    if len(ranked) > top:
        lines.append(f"... and {len(ranked) - top} more labels")
    if report.truncated_labels:
        lines.append(f"({report.truncated_labels} label(s) truncated at trace time)")
    return "\n".join(lines)


def render_locality_diff(
    before: LocalityReport,
    after: LocalityReport,
    top: int = 20,
    names: tuple[str, str] = ("before", "after"),
) -> str:
    """Side-by-side per-label miss comparison of two traces.

    Rows sort by miss reduction, so the fields whose misses the second
    build (e.g. inline allocation) eliminated lead the table.  A summary
    line names every field-kind label whose misses dropped.
    """
    if not before.has_data or not after.has_data:
        missing = names[0] if not before.has_data else names[1]
        return f"no locality data in {missing} trace (run with --locality)"

    lines: list[str] = []
    lines.append(
        f"locality diff: {names[0]} {before.total_misses} misses -> "
        f"{names[1]} {after.total_misses} misses "
        f"(delta {after.total_misses - before.total_misses:+d})"
    )
    lines.append("")
    lines.append(
        f"{'label':32s} {names[0][:14]:>14s} {names[1][:14]:>14s} {'delta':>10s}"
    )
    all_names = set(before.labels) | set(after.labels)
    rows = []
    for name in all_names:
        b = before.misses_of(name)
        a = after.misses_of(name)
        rows.append((name, b, a, a - b))
    rows.sort(key=lambda r: (r[3], -r[1], r[0]))
    for name, b, a, delta in rows[:top]:
        lines.append(f"{name:32s} {b:>14d} {a:>14d} {delta:>+10d}")
    if len(rows) > top:
        lines.append(f"... and {len(rows) - top} more labels")

    improved = [
        (name, b, a)
        for name, b, a, delta in rows
        if delta < 0
        and (
            before.labels.get(name, {}).get("kind") in ("field", "inline_field")
            or after.labels.get(name, {}).get("kind") in ("field", "inline_field")
        )
    ]
    lines.append("")
    if improved:
        lines.append(f"fields with fewer misses in {names[1]}:")
        for name, b, a in improved:
            drop = "eliminated" if a == 0 else f"{b} -> {a}"
            lines.append(f"  {name}: {drop}")
    else:
        lines.append(f"no field saw fewer misses in {names[1]}")
    return "\n".join(lines)
