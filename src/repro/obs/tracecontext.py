"""W3C-traceparent-shaped request correlation ids.

The tracer's span ids are *local* integers — :meth:`Tracer.merge`
remaps them freely, so they cannot name a span across processes.  For
request correlation the service stack instead stamps globally-unique hex
ids into span **meta** (which merge preserves verbatim):

- ``trace_id``  — 32 hex chars, minted once per client request.
- ``span_id``   — 16 hex chars, minted by whichever process opens the
  span (client, daemon accept, daemon dispatch, worker).
- ``parent_span`` — the hex ``span_id`` of the causal parent, possibly
  in another process.

On the wire this travels as a single ``traceparent`` request field in
the W3C shape ``00-{trace_id}-{parent_span_id}-01``.  The parse is
deliberately lenient (returns ``None`` on anything malformed): tracing
must never fail a request.

``repro export chrome`` stitches the per-process lanes back into one
tree by resolving ``parent_span`` hex ids across all loaded events — see
:func:`repro.obs.export.build_span_forest`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_HEX = set("0123456789abcdef")


def mint_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def mint_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass(slots=True, frozen=True)
class TraceContext:
    """A request's correlation identity at one hop."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.span_id)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-{trace}-{span}-01`` (version 00, sampled flag set)."""
    return f"00-{trace_id}-{span_id}-01"


def _is_hex(value: str, length: int) -> bool:
    return len(value) == length and all(c in _HEX for c in value)


def parse_traceparent(value: object) -> TraceContext | None:
    """Parse a traceparent header value; ``None`` on anything malformed.

    Accepts any version field and ignores the flags — the ids are all we
    use.  All-zero ids are invalid per the W3C spec and rejected.
    """
    if not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) < 3:
        return None
    trace_id, span_id = parts[1], parts[2]
    if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)
