"""Read a JSONL trace back and summarize it.

This is the consumer side of :mod:`repro.obs.tracer`: ``repro trace
FILE`` parses the event stream and renders a per-phase wall-time table,
the top counters, and the inlining decision audit.  The parser is
deliberately tolerant — unknown event kinds and malformed lines are
skipped, so traces stay readable across schema additions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable


@dataclass(slots=True)
class PhaseStat:
    """Aggregated timings of one span name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(slots=True)
class TraceSummary:
    """Everything ``repro trace`` reports about one JSONL trace."""

    phases: dict[str, PhaseStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    decisions: list[dict] = field(default_factory=list)
    #: Intermediate per-round verdicts (``decision.round`` events), tagged
    #: with ``round`` (replan round) and ``nested_round``.
    round_decisions: list[dict] = field(default_factory=list)
    #: One entry per ``run.stats`` event — the VM counter snapshot of each
    #: traced run, including the float ratios (``cache_miss_rate``) that
    #: the integer counter table cannot carry.
    run_stats: list[dict] = field(default_factory=list)
    #: ``run.locality`` / ``run.heatmap`` payloads (locality attribution).
    localities: list[dict] = field(default_factory=list)
    heatmaps: list[dict] = field(default_factory=list)
    events: int = 0
    malformed_lines: int = 0
    #: Total time of top-level spans (parent is null) — the denominator
    #: for the share column.
    root_seconds: float = 0.0

    def accepted_decisions(self) -> list[dict]:
        return [d for d in self.decisions if d.get("accepted")]

    def rejected_decisions(self) -> list[dict]:
        return [d for d in self.decisions if not d.get("accepted")]

    def merge(self, other: "TraceSummary") -> "TraceSummary":
        """Fold another summary into this one (for per-worker trace files).

        Phase occurrences/durations, root time, event and malformed-line
        counts are summed; counters are summed too, which is correct for
        the monotonic totals each worker reports independently.
        """
        for name, stat in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStat(name))
            mine.count += stat.count
            mine.total_seconds += stat.total_seconds
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.decisions.extend(other.decisions)
        self.round_decisions.extend(other.round_decisions)
        self.run_stats.extend(other.run_stats)
        self.localities.extend(other.localities)
        self.heatmaps.extend(other.heatmaps)
        self.events += other.events
        self.malformed_lines += other.malformed_lines
        self.root_seconds += other.root_seconds
        return self


def read_events(lines: Iterable[str]) -> tuple[list[dict], int]:
    """Parse JSONL lines; returns (events, number of malformed lines)."""
    events: list[dict] = []
    malformed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            malformed += 1
            continue
        if isinstance(record, dict):
            events.append(record)
        else:
            malformed += 1
    return events, malformed


def summarize_events(events: list[dict], malformed: int = 0) -> TraceSummary:
    summary = TraceSummary(malformed_lines=malformed)
    roots: set[int] = set()
    for record in events:
        kind = record.get("ev")
        if kind == "span_begin":
            if record.get("parent") is None and isinstance(record.get("id"), int):
                roots.add(record["id"])
        elif kind == "span_end":
            name = record.get("name", "?")
            duration = float(record.get("dur", 0.0))
            stat = summary.phases.setdefault(name, PhaseStat(name))
            stat.count += 1
            stat.total_seconds += duration
            if record.get("id") in roots:
                summary.root_seconds += duration
        elif kind == "counters":
            # Final totals win over any intermediate snapshot.
            for name, value in record.get("counters", {}).items():
                summary.counters[name] = value
        elif kind == "event":
            summary.events += 1
            if record.get("name") == "decision":
                summary.decisions.append(record.get("data", {}))
            elif record.get("name") == "decision.round":
                summary.round_decisions.append(record.get("data", {}))
            elif record.get("name") == "run.stats":
                summary.run_stats.append(record.get("data", {}))
            elif record.get("name") == "run.locality":
                summary.localities.append(record.get("data", {}))
            elif record.get("name") == "run.heatmap":
                summary.heatmaps.append(record.get("data", {}))
    if not summary.root_seconds and summary.phases:
        summary.root_seconds = max(s.total_seconds for s in summary.phases.values())
    return summary


def summarize_file(path: str) -> TraceSummary:
    with open(path, "r", encoding="utf-8") as handle:
        events, malformed = read_events(handle)
    return summarize_events(events, malformed)


def summarize_files(paths: Iterable[str]) -> TraceSummary:
    """Merged summary of several trace files (e.g. one per bench worker)."""
    merged = TraceSummary()
    for path in paths:
        merged.merge(summarize_file(path))
    return merged


#: Columns of the multi-run compact table, in display order.
_RUN_TABLE_COLUMNS = (
    "instructions",
    "heap_reads",
    "allocations",
    "cache_misses",
    "cache_miss_rate",
    "cycles",
)


def _format_stat(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, int):
        return str(value)
    return str(value)


def _render_run_stats(run_stats: list[dict]) -> list[str]:
    """Render ``run.stats`` payloads.

    A single traced run gets the full key/value block (the only place
    float ratios like ``cache_miss_rate`` appear — the counters channel is
    integer-only).  Several runs in one trace (e.g. a bench matrix)
    collapse into a compact comparison table.
    """
    lines: list[str] = []
    if len(run_stats) == 1:
        lines.append("runtime stats:")
        for key, value in run_stats[0].items():
            lines.append(f"  {key:32s} {_format_stat(value):>14s}")
        return lines
    lines.append(f"runtime stats ({len(run_stats)} runs):")
    header = f"  {'run':>4s}"
    for column in _RUN_TABLE_COLUMNS:
        header += f" {column:>15s}"
    lines.append(header)
    for i, stats in enumerate(run_stats):
        row = f"  {i:>4d}"
        for column in _RUN_TABLE_COLUMNS:
            row += f" {_format_stat(stats.get(column, '-')):>15s}"
        lines.append(row)
    return lines


def _render_locality_brief(summary: TraceSummary, top_labels: int = 8) -> list[str]:
    """A short locality digest: top miss labels aggregated across runs.

    The full per-bucket heatmap and the two-trace diff live in
    ``repro heatmap``; this section just proves attribution data is in
    the trace and names the worst offenders.
    """
    misses: dict[tuple, dict] = {}
    truncated = 0
    for payload in summary.localities:
        truncated += int(payload.get("truncated", 0))
        for entry in payload.get("labels", []):
            key = (
                entry.get("kind"),
                entry.get("class"),
                entry.get("field"),
                entry.get("site"),
            )
            slot = misses.setdefault(key, {"misses": 0, "accesses": 0})
            slot["misses"] += int(entry.get("misses", 0))
            slot["accesses"] += int(entry.get("accesses", 0))
    lines = [f"locality: {len(misses)} labels across {len(summary.localities)} run(s)"]
    ranked = sorted(misses.items(), key=lambda kv: (-kv[1]["misses"], str(kv[0])))
    for (kind, cls, fld, site), agg in ranked[:top_labels]:
        name = f"{cls}.{fld}" if fld else (cls or kind)
        site_text = f" @ {site}" if site else ""
        lines.append(
            f"  {name:32s} {agg['misses']:>10d} misses "
            f"/ {agg['accesses']:>10d} accesses [{kind}]{site_text}"
        )
    if len(ranked) > top_labels:
        lines.append(f"  ... and {len(ranked) - top_labels} more labels")
    if truncated:
        lines.append(f"  ({truncated} label(s) truncated at trace time)")
    if summary.heatmaps:
        total_misses = sum(int(h.get("total_misses", 0)) for h in summary.heatmaps)
        total_buckets = sum(int(h.get("total_buckets", 0)) for h in summary.heatmaps)
        lines.append(
            f"  heatmap: {total_misses} misses over {total_buckets} address "
            f"bucket(s) — run `repro heatmap <trace>` for the address-space view"
        )
    return lines


def render_summary(summary: TraceSummary, top_counters: int = 20) -> str:
    """Human-readable report: phase table, counters, decision audit."""
    lines: list[str] = []
    total = summary.root_seconds or 1e-12

    lines.append(f"{'phase':32s} {'count':>6s} {'total ms':>10s} {'mean ms':>10s} {'share':>7s}")
    ordered = sorted(
        summary.phases.values(), key=lambda s: s.total_seconds, reverse=True
    )
    for stat in ordered:
        lines.append(
            f"{stat.name:32s} {stat.count:>6d} {stat.total_seconds * 1e3:>10.2f} "
            f"{stat.mean_seconds * 1e3:>10.3f} {stat.total_seconds / total:>6.1%}"
        )
    if not ordered:
        lines.append("(no spans recorded)")

    if summary.counters:
        lines.append("")
        lines.append(f"{'counter':44s} {'value':>12s}")
        by_value = sorted(summary.counters.items(), key=lambda kv: -kv[1])
        for name, value in by_value[:top_counters]:
            lines.append(f"{name:44s} {value:>12d}")
        if len(by_value) > top_counters:
            lines.append(f"... and {len(by_value) - top_counters} more counters")

    if summary.run_stats:
        lines.append("")
        lines.extend(_render_run_stats(summary.run_stats))

    if summary.localities:
        lines.append("")
        lines.extend(_render_locality_brief(summary))

    if summary.decisions:
        accepted = summary.accepted_decisions()
        rejected = summary.rejected_decisions()
        lines.append("")
        lines.append(
            f"decisions: {len(accepted)} accepted, {len(rejected)} rejected"
        )
        for decision in accepted:
            lines.append(f"  ACCEPT {decision.get('candidate', '?')}")
        for decision in rejected:
            lines.append(
                f"  reject {decision.get('candidate', '?'):28s} "
                f"[{decision.get('stage', '?')}] {decision.get('reason', '')}"
            )

    # Round-by-round audit of multi-round runs (replanning / nesting).
    by_round: dict[tuple[int, int], list[dict]] = {}
    for decision in summary.round_decisions:
        key = (decision.get("nested_round", 1), decision.get("round", 1))
        by_round.setdefault(key, []).append(decision)
    if len(by_round) > 1:
        lines.append("")
        lines.append("intermediate verdicts by round:")
        for (nested, replan), batch in sorted(by_round.items()):
            accepted = sum(1 for d in batch if d.get("accepted"))
            lines.append(
                f"  nested {nested} replan {replan}: "
                f"{accepted} accepted, {len(batch) - accepted} rejected"
            )

    if summary.malformed_lines:
        lines.append("")
        lines.append(f"warning: skipped {summary.malformed_lines} malformed line(s)")
    return "\n".join(lines)


def render_file(path: str, top_counters: int = 20) -> str:
    return render_summary(summarize_file(path), top_counters)
