"""Export span JSONL traces to external profiler formats.

Two targets, both derived from the same span stream
(:mod:`repro.obs.tracer` schema — ``span_begin`` / ``span_end`` /
``event`` records):

- **Chrome trace-event JSON** (``repro export chrome``) — the
  ``{"traceEvents": [...]}`` shape that Perfetto (https://ui.perfetto.dev)
  and ``chrome://tracing`` load directly.  Every paired span becomes one
  ``"X"`` complete event with microsecond timestamps.  Lanes (``tid``)
  are allocated per root span tree: a trace merged from N bench worker
  shards keeps each shard's spans as distinct roots (see
  ``Tracer.merge``), so each worker lands on its own timeline lane
  instead of one interleaved mess.  Point events become ``"i"`` instant
  events on the lane of the innermost open span; ``"M"`` metadata events
  name the process and each lane after its root span.
- **Collapsed stacks** (``repro export flame``) — the
  ``root;child;leaf <self-µs>`` line format consumed by speedscope
  (https://speedscope.app) and Brendan Gregg's ``flamegraph.pl``.  The
  weight of each line is *self* time — the span's inclusive duration
  minus the inclusive durations of its direct children, clamped at zero
  (clock jitter can make children momentarily outweigh the parent) — so
  stacking the lines reconstructs the inclusive profile without double
  counting.  :func:`parse_collapsed` reads the format back; tests use it
  to pin the round-trip.

Both exporters tolerate the streams real traces contain: unpaired
``span_begin`` records (a crashed run) are dropped, ``counters`` records
and malformed lines are skipped, and merged shards — whose span ids were
remapped at merge time — need no special casing because pairing is by
span id, not by nesting order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from .summary import read_events

#: Synthetic pid for the single-process trace; Perfetto requires one.
TRACE_PID = 1


def _microseconds(seconds: object) -> int:
    return int(round(float(seconds) * 1e6))


# ----------------------------------------------------------------------
# Span-tree reconstruction (shared by both exporters).


@dataclass(slots=True)
class SpanNode:
    """One paired span recovered from a begin/end event stream."""

    id: int
    name: str
    parent: int | None
    start: float
    duration: float
    meta: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        childsum = sum(child.duration for child in self.children)
        return max(self.duration - childsum, 0.0)


@dataclass(slots=True)
class SpanForest:
    """All paired spans of a trace, linked into root trees."""

    roots: list[SpanNode] = field(default_factory=list)
    by_id: dict[int, SpanNode] = field(default_factory=dict)
    #: Spans carrying a hex ``span_id`` in their meta (the service's
    #: cross-process correlation ids) indexed by that hex id.
    by_hex: dict[str, SpanNode] = field(default_factory=dict)
    unpaired: int = 0


def build_span_forest(events: Iterable[dict]) -> SpanForest:
    """Pair ``span_begin``/``span_end`` records into trees.

    Pairing is by span id — merge-remapped ids are globally unique, so
    shard-interleaved streams reconstruct correctly.  Begins without an
    end (crashed or still-running spans) are counted in ``unpaired`` and
    excluded, as are ends without a begin.

    A second, cross-process stitch pass then runs: a span that would be
    a root but carries a hex ``parent_span`` meta naming another loaded
    span's ``span_id`` meta is reparented under it.  This is how the
    service's per-process lanes (client, daemon accept/dispatch, worker)
    reassemble into one tree per request — local integer parent links
    can't cross a ``Tracer.merge`` (ids are remapped), but meta travels
    verbatim (see :mod:`repro.obs.tracecontext`).
    """
    forest = SpanForest()
    open_spans: dict[int, SpanNode] = {}
    for record in events:
        kind = record.get("ev")
        span_id = record.get("id")
        if not isinstance(span_id, int):
            continue
        if kind == "span_begin":
            node = SpanNode(
                id=span_id,
                name=str(record.get("name", "?")),
                parent=record.get("parent"),
                start=float(record.get("ts", 0.0)),
                duration=0.0,
                meta=record.get("meta") or {},
            )
            open_spans[span_id] = node
        elif kind == "span_end":
            node = open_spans.pop(span_id, None)
            if node is None:
                forest.unpaired += 1
                continue
            node.duration = float(record.get("dur", 0.0))
            forest.by_id[node.id] = node
    forest.unpaired += len(open_spans)
    for node in forest.by_id.values():
        hex_id = node.meta.get("span_id")
        if isinstance(hex_id, str) and hex_id:
            forest.by_hex.setdefault(hex_id, node)
    for node in forest.by_id.values():
        if node.parent is None or node.parent not in forest.by_id:
            hex_parent = node.meta.get("parent_span")
            stitched = (
                forest.by_hex.get(hex_parent)
                if isinstance(hex_parent, str)
                else None
            )
            if stitched is not None and stitched is not node:
                # Refuse a stitch that would create a cycle (malformed
                # meta in a hand-edited trace must not hang the walkers).
                ancestor, cyclic = stitched, False
                while ancestor is not None:
                    if ancestor is node:
                        cyclic = True
                        break
                    ancestor = (
                        forest.by_id.get(ancestor.parent)
                        if ancestor.parent is not None
                        else None
                    )
                if not cyclic:
                    # Rewrite the local link too, so lane resolution
                    # (_lane_of) and flamegraph walks see one tree.
                    node.parent = stitched.id
    for node in forest.by_id.values():
        parent = forest.by_id.get(node.parent) if node.parent is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            forest.roots.append(node)
    for node in forest.by_id.values():
        node.children.sort(key=lambda child: child.start)
    forest.roots.sort(key=lambda root: root.start)
    return forest


def _lane_of(node: SpanNode, forest: SpanForest, lanes: dict[int, int]) -> int:
    """The lane (tid) of a span = the lane of its root."""
    seen: set[int] = set()
    while node.parent is not None and node.parent in forest.by_id:
        if node.id in seen:  # defensive: cyclic parent links in a bad trace
            break
        seen.add(node.id)
        node = forest.by_id[node.parent]
    return lanes.get(node.id, 0)


# ----------------------------------------------------------------------
# Chrome trace-event exporter.


def chrome_trace_events(events: Iterable[dict]) -> list[dict]:
    """Translate a span event stream into Chrome trace-event dicts.

    Returns the ``traceEvents`` list: ``"M"`` metadata events first
    (process name, one thread name per lane), then ``"X"`` complete
    events for every paired span and ``"i"`` instant events for point
    events, in timestamp order.
    """
    events = list(events)
    forest = build_span_forest(events)

    # One lane per root tree, in start order; lane 0 is the first root
    # (the serial pipeline), later roots are merged worker shards.
    lanes = {root.id: lane for lane, root in enumerate(forest.roots)}

    out: list[dict] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for root in forest.roots:
        lane = lanes[root.id]
        out.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": lane,
                "name": "thread_name",
                "args": {"name": f"lane {lane}: {root.name}"},
            }
        )

    body: list[dict] = []
    for node in forest.by_id.values():
        record = {
            "ph": "X",
            "pid": TRACE_PID,
            "tid": _lane_of(node, forest, lanes),
            "name": node.name,
            "cat": "span",
            "ts": _microseconds(node.start),
            "dur": _microseconds(node.duration),
        }
        if node.meta:
            record["args"] = dict(node.meta)
        body.append(record)

    # Coalesced requests link to the one shared dispatch span they
    # joined: meta ``link_span`` names the dispatch's hex id.  Chrome
    # flow events ("s" start at the linking span, "f" finish at the
    # dispatch) draw the arrow without pretending a parent/child edge.
    flow_id = 0
    for node in forest.by_id.values():
        link_hex = node.meta.get("link_span")
        if not isinstance(link_hex, str):
            continue
        target = forest.by_hex.get(link_hex)
        if target is None or target is node:
            continue
        flow_id += 1
        common = {"cat": "coalesce", "name": "coalesced", "pid": TRACE_PID, "id": flow_id}
        body.append(
            {
                **common,
                "ph": "s",
                "tid": _lane_of(node, forest, lanes),
                "ts": _microseconds(node.start),
            }
        )
        body.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "tid": _lane_of(target, forest, lanes),
                "ts": _microseconds(target.start + target.duration),
            }
        )

    # Instant events land on the lane of the innermost span open at their
    # position in stream order (one tracer's — or one merged shard's —
    # events are contiguous and ordered, so stream order is enough).
    current_lane = 0
    for record in events:
        kind = record.get("ev")
        if kind == "span_begin":
            node = forest.by_id.get(record.get("id"))
            if node is not None:
                current_lane = _lane_of(node, forest, lanes)
        elif kind == "event":
            data = record.get("data") or {}
            body.append(
                {
                    "ph": "i",
                    "pid": TRACE_PID,
                    "tid": current_lane,
                    "name": str(record.get("name", "?")),
                    "cat": "event",
                    "ts": _microseconds(record.get("ts", 0.0)),
                    "s": "t",
                    "args": data if isinstance(data, dict) else {"value": data},
                }
            )
    body.sort(key=lambda ev: ev["ts"])
    out.extend(body)
    return out


def write_chrome_trace(path: str, events: Iterable[dict]) -> int:
    """Write ``{"traceEvents": [...]}`` to ``path``; returns event count."""
    trace_events = chrome_trace_events(events)
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(trace_events)


# ----------------------------------------------------------------------
# Collapsed-stack flamegraph exporter.


def collapsed_stacks(events: Iterable[dict]) -> dict[tuple[str, ...], int]:
    """``{(root, ..., leaf): self-µs}`` aggregated over all paired spans.

    Identical stacks (a span name recurring under the same path — e.g.
    ``analyze`` once per benchmark) accumulate into one entry, which is
    what flamegraph consumers expect.  Zero-self entries are kept only if
    the whole profile would otherwise be empty.
    """
    forest = build_span_forest(events)
    stacks: dict[tuple[str, ...], int] = {}

    def walk(node: SpanNode, prefix: tuple[str, ...]) -> None:
        path = prefix + (node.name,)
        self_us = _microseconds(node.self_seconds)
        if self_us > 0:
            stacks[path] = stacks.get(path, 0) + self_us
        for child in node.children:
            walk(child, path)

    for root in forest.roots:
        walk(root, ())
    if not stacks and forest.roots:
        # All-zero durations (fake clocks in tests): keep the shape.
        for root in forest.roots:
            stacks[(root.name,)] = stacks.get((root.name,), 0)
    return stacks


def render_collapsed(stacks: dict[tuple[str, ...], int]) -> str:
    """Collapsed-stack text: one ``a;b;c <weight>`` line per stack."""
    lines = [
        ";".join(path) + f" {weight}"
        for path, weight in sorted(stacks.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Inverse of :func:`render_collapsed` (also reads flamegraph.pl input).

    The weight is the last whitespace-separated token; everything before
    it is the ``;``-joined stack.  Malformed lines are skipped.
    """
    stacks: dict[tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, weight_text = line.rpartition(" ")
        if not stack_text:
            continue
        try:
            weight = int(weight_text)
        except ValueError:
            continue
        path = tuple(stack_text.split(";"))
        stacks[path] = stacks.get(path, 0) + weight
    return stacks


def write_collapsed(path: str, events: Iterable[dict]) -> int:
    """Write collapsed stacks to ``path``; returns the stack count."""
    stacks = collapsed_stacks(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_collapsed(stacks))
    return len(stacks)


# ----------------------------------------------------------------------
# File-level conveniences (CLI entry points).


def load_trace_events(path: str) -> tuple[list[dict], int]:
    """Events and malformed-line count of one JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_events(handle)


def _load_many(trace_paths: str | Iterable[str]) -> list[dict]:
    """Concatenated events of one or many trace files.

    Multi-file input exists for cross-process stitching: a client trace
    plus the daemon's ``service.jsonl`` loaded together lets the hex-id
    pass connect the client span to the daemon/worker tree.
    """
    if isinstance(trace_paths, str):
        trace_paths = [trace_paths]
    events: list[dict] = []
    offset = 0
    for path in trace_paths:
        loaded, _ = load_trace_events(path)
        # Each file numbers its spans locally from 1, so concatenating
        # raw streams would collide ids across files (breaking begin/end
        # pairing).  Shift every file's ids past the previous maximum —
        # the same globally-unique-ids move Tracer.merge makes in-process.
        max_id = offset
        for record in loaded:
            span_id = record.get("id")
            if isinstance(span_id, int):
                record["id"] = span_id + offset
                parent = record.get("parent")
                if isinstance(parent, int):
                    record["parent"] = parent + offset
                if record["id"] > max_id:
                    max_id = record["id"]
        offset = max_id
        events.extend(loaded)
    return events


def export_chrome_file(trace_path: str | Iterable[str], out_path: str) -> int:
    return write_chrome_trace(out_path, _load_many(trace_path))


def export_collapsed_file(trace_path: str | Iterable[str], out_path: str) -> int:
    return write_collapsed(out_path, _load_many(trace_path))
