"""The performance-history ledger and its statistical regression check.

One-shot snapshots cannot carry a throughput claim: a single sample per
phase says nothing about run-to-run noise, and the old baseline gate
(``max(baseline, 10ms) * 1.3``) had to be re-recorded by hand after
every intentional change.  This module replaces that with a durable,
append-only record of every measured run plus a distribution-aware
verdict:

- **Ledger** — ``PERF_HISTORY.jsonl`` at the repo root, one JSON object
  per ``repro bench`` / ``repro perf record`` run.  An entry holds
  per-(benchmark, build) simulated cycles, per-phase wall-time samples
  (one per ``--repeat``), locality summaries, and environment metadata
  (git revision, python version, hostname, ``--jobs``), keyed by a
  content hash of the measurement configuration so only comparable runs
  are ever pooled.
- **Check** — ``repro bench --check`` estimates each phase's noise from
  the ledger's recent window (median + MAD, the robust estimators) and
  issues a pass/regressed/improved verdict per (benchmark, build,
  phase), quoting the measured distribution.  Wall-time verdicts gate;
  cycle verdicts are deterministic (the VM is simulated) and reported
  as informational deltas.  With too little history the check falls
  back to the single-sample ``BENCH_BASELINE.json`` gate, so a fresh
  clone is still protected.
- **Reports** — ``repro perf list`` / ``diff REV1 REV2`` /
  ``trend METRIC``: the ledger rendered as tables, a jitdiff-style
  base-vs-diff comparison between two recorded revisions, and ASCII
  sparklines of any metric across the ledger.

The ledger is plain JSONL: unknown keys and malformed lines are
skipped on read, so the schema can grow additively (same contract as
the trace format, docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field

#: Default ledger location (repo root, next to BENCH_BASELINE.json).
DEFAULT_HISTORY_PATH = "PERF_HISTORY.jsonl"

#: Ledger schema version, bumped on incompatible changes.
LEDGER_VERSION = 1

#: How many recent comparable entries the check pools noise from.
RECENT_WINDOW = 20

#: Minimum pooled wall-time samples before the statistical verdict is
#: trusted; below this the check falls back to the baseline gate.
MIN_HISTORY_SAMPLES = 3

#: MAD -> sigma for normally distributed noise.
MAD_SIGMA = 1.4826

#: Sigma multiplier of the regression margin.
SIGMA_K = 4.0

#: Relative slack: a phase must also move by this fraction of the
#: history median before it can flag (absorbs drift the MAD understates
#: on very stable histories).
REL_SLACK = 0.25

#: Absolute slack in seconds: sub-5ms wiggles never flag.
ABS_SLACK = 0.005


# ----------------------------------------------------------------------
# Robust statistics.


def median(values: list[float]) -> float:
    if not values:
        raise ValueError("median of empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float]) -> float:
    """Median absolute deviation (robust spread; 0.0 for n <= 1)."""
    if len(values) <= 1:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def regression_margin(history: list[float]) -> float:
    """How far a measured median may sit above the history median.

    ``max(K * sigma, REL_SLACK * median, ABS_SLACK)`` — the MAD-derived
    sigma scales with real noise, the relative slack absorbs drift on
    suspiciously quiet histories, and the absolute slack keeps
    microsecond phases from ever flagging on timer jitter.
    """
    center = median(history)
    sigma = MAD_SIGMA * mad(history)
    return max(SIGMA_K * sigma, REL_SLACK * center, ABS_SLACK)


# ----------------------------------------------------------------------
# Entries: construction, hashing, persistence.


def config_key(config: dict) -> str:
    """Content hash of the measurement configuration.

    Hashes the canonical JSON of ``config`` (benchmark set, builds,
    phase list, suite name — everything that decides *what* was
    measured, not *how fast* it ran), so entries pool only with entries
    that measured the same thing.  ``--jobs`` is deliberately not part
    of the key: it lives in the environment metadata and the check
    filters on it separately, because parallel wall times are not
    comparable to serial ones while every figure-visible quantity is.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(cwd: str | None = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def environment(jobs: int = 1) -> dict:
    """The run's environment metadata (recorded, never hashed)."""
    return {
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "hostname": socket.gethostname(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "jobs": jobs,
    }


def make_entry(
    benchmarks: dict,
    config: dict,
    env: dict,
    repeat: int = 1,
    note: str | None = None,
) -> dict:
    """Assemble one ledger entry (see the module docstring for fields)."""
    entry = {
        "v": LEDGER_VERSION,
        "at": time.time(),
        "config_key": config_key(config),
        "config": config,
        "repeat": repeat,
        "env": env,
        "benchmarks": benchmarks,
    }
    if note:
        entry["note"] = note
    return entry


def append_entry(path: str, entry: dict) -> str:
    """Append one entry to the ledger (creates the file if missing)."""
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return path


def load_history(path: str) -> list[dict]:
    """All well-formed entries, oldest first; missing file reads empty."""
    if not os.path.exists(path):
        return []
    entries: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(record.get("benchmarks"), dict):
                entries.append(record)
    return entries


def comparable_entries(
    entries: list[dict], key: str, jobs: int | None = None
) -> list[dict]:
    """Entries whose config hash (and, if given, ``--jobs`` mode) match."""
    picked = [e for e in entries if e.get("config_key") == key]
    if jobs is not None:
        picked = [e for e in picked if e.get("env", {}).get("jobs") == jobs]
    return picked


# ----------------------------------------------------------------------
# The statistical check.


@dataclass(slots=True)
class Verdict:
    """One (benchmark, build, metric) comparison against history."""

    benchmark: str
    build: str
    metric: str  # phase name, "cycles", "optimize_seconds", ...
    verdict: str  # "pass" | "regressed" | "improved" | "no-history"
    measured: float
    measured_n: int
    history_median: float | None = None
    history_mad: float | None = None
    history_n: int = 0
    margin: float | None = None
    #: Whether this verdict participates in the gate's exit status.
    #: Wall-time phases gate; deterministic cycle deltas inform.
    gates: bool = True
    #: "history" (statistical), "baseline" (compat fallback), or "none".
    source: str = "history"

    @property
    def failed(self) -> bool:
        return self.gates and self.verdict == "regressed"

    def describe(self) -> str:
        """One line quoting the measured value against the distribution."""
        where = f"{self.benchmark}/{self.build}/{self.metric}"
        if self.metric == "cycles":
            base = self.history_median
            delta = ""
            if base:
                delta = f" ({(self.measured - base) / base:+.2%} vs median {base:.0f})"
            return f"{where}: {self.verdict} — {self.measured:.0f} cycles{delta}"
        measured = f"{self.measured * 1e3:.2f}ms (median of {self.measured_n})"
        if self.source == "baseline":
            return (
                f"{where}: {self.verdict} — {measured} vs single-sample "
                f"baseline {self.history_median * 1e3:.2f}ms (compat gate; "
                f"<{MIN_HISTORY_SAMPLES} ledger samples)"
            )
        if self.history_n == 0 or self.history_median is None:
            return f"{where}: {self.verdict} — {measured}, no comparable history"
        return (
            f"{where}: {self.verdict} — {measured} vs history "
            f"{self.history_median * 1e3:.2f}ms ±{(self.history_mad or 0.0) * 1e3:.2f}ms MAD "
            f"(n={self.history_n}, margin {self.margin * 1e3:.2f}ms)"
        )


def _pooled_phase_samples(
    history: list[dict], benchmark: str, build: str, phase: str
) -> list[float]:
    samples: list[float] = []
    for entry in history:
        build_data = entry.get("benchmarks", {}).get(benchmark, {}).get(build, {})
        for value in build_data.get("phases", {}).get(phase, []):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples.append(float(value))
    return samples


def _history_cycles(history: list[dict], benchmark: str, build: str) -> list[float]:
    values: list[float] = []
    for entry in history:
        build_data = entry.get("benchmarks", {}).get(benchmark, {}).get(build, {})
        for value in build_data.get("cycles", []):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
    return values


def _baseline_verdict(
    benchmark: str, build: str, phase: str, measured: float, n: int, baseline: dict
) -> Verdict | None:
    """The old single-sample gate, applied to one phase (compat fallback)."""
    from ..bench.baseline import phase_gate

    expected = (
        baseline.get("phases", {}).get(benchmark, {}).get(build, {}).get(phase)
    )
    if expected is None:
        return None
    gate, noise_floor = phase_gate(baseline, expected)
    verdict = "regressed" if (measured > gate and measured > noise_floor) else "pass"
    return Verdict(
        benchmark=benchmark,
        build=build,
        metric=phase,
        verdict=verdict,
        measured=measured,
        measured_n=n,
        history_median=float(expected),
        history_n=1,
        margin=gate - float(expected),
        source="baseline",
    )


def check_entry(
    entry: dict,
    history: list[dict],
    baseline: dict | None = None,
    window: int = RECENT_WINDOW,
    min_samples: int = MIN_HISTORY_SAMPLES,
) -> list[Verdict]:
    """Compare a fresh (not yet appended) entry against the ledger.

    Pools each phase's wall-time samples from the last ``window``
    comparable entries (same config hash, same ``--jobs``), estimates
    noise as median + MAD, and issues a verdict per (benchmark, build,
    phase).  Phases with fewer than ``min_samples`` pooled samples fall
    back to ``baseline`` (the legacy single-sample gate) when one is
    given, else pass as ``no-history``.  Cycle verdicts are computed
    against the history median but never gate — the simulated VM is
    deterministic, so any cycle change is an intentional code change,
    not noise; the deltas are surfaced for the reviewer.
    """
    recent = comparable_entries(
        history, entry.get("config_key", ""), entry.get("env", {}).get("jobs")
    )[-window:]
    verdicts: list[Verdict] = []
    for benchmark, builds in sorted(entry.get("benchmarks", {}).items()):
        for build, data in sorted(builds.items()):
            # Wall-time phases: the gating, noise-aware comparison.
            for phase, samples in sorted(data.get("phases", {}).items()):
                if not samples:
                    continue
                measured = median([float(s) for s in samples])
                pooled = _pooled_phase_samples(recent, benchmark, build, phase)
                if len(pooled) < min_samples:
                    fallback = None
                    if baseline is not None:
                        fallback = _baseline_verdict(
                            benchmark, build, phase, measured, len(samples), baseline
                        )
                    verdicts.append(
                        fallback
                        or Verdict(
                            benchmark=benchmark,
                            build=build,
                            metric=phase,
                            verdict="no-history",
                            measured=measured,
                            measured_n=len(samples),
                            history_n=len(pooled),
                            source="none",
                        )
                    )
                    continue
                center = median(pooled)
                spread = mad(pooled)
                margin = regression_margin(pooled)
                if measured > center + margin:
                    verdict = "regressed"
                elif measured < center - margin:
                    verdict = "improved"
                else:
                    verdict = "pass"
                verdicts.append(
                    Verdict(
                        benchmark=benchmark,
                        build=build,
                        metric=phase,
                        verdict=verdict,
                        measured=measured,
                        measured_n=len(samples),
                        history_median=center,
                        history_mad=spread,
                        history_n=len(pooled),
                        margin=margin,
                    )
                )
            # Cycles: deterministic, informational.
            cycles = [float(c) for c in data.get("cycles", [])]
            if cycles:
                measured = median(cycles)
                pooled = _history_cycles(recent, benchmark, build)
                if pooled:
                    center = median(pooled)
                    verdict = (
                        "pass"
                        if measured == center
                        else ("regressed" if measured > center else "improved")
                    )
                else:
                    center, verdict = None, "no-history"
                verdicts.append(
                    Verdict(
                        benchmark=benchmark,
                        build=build,
                        metric="cycles",
                        verdict=verdict,
                        measured=measured,
                        measured_n=len(cycles),
                        history_median=center,
                        history_n=len(pooled),
                        gates=False,
                        source="history" if pooled else "none",
                    )
                )
    return verdicts


def render_verdicts(verdicts: list[Verdict]) -> str:
    """The ``repro bench --check`` report: failures first, then the rest."""
    lines: list[str] = []
    failures = [v for v in verdicts if v.failed]
    improved = [v for v in verdicts if v.gates and v.verdict == "improved"]
    informational = [v for v in verdicts if not v.gates and v.verdict != "pass"]
    checked = [v for v in verdicts if v.gates]
    passed = len(checked) - len(failures) - len(improved)
    lines.append(
        f"perf check: {len(checked)} phase comparisons — "
        f"{passed} pass, {len(improved)} improved, {len(failures)} regressed"
    )
    for verdict in failures:
        lines.append(f"  REGRESSED {verdict.describe()}")
    for verdict in improved:
        lines.append(f"  improved  {verdict.describe()}")
    if informational:
        lines.append("cycle deltas (deterministic; informational):")
        for verdict in informational:
            lines.append(f"  {verdict.describe()}")
    no_history = [v for v in checked if v.verdict == "no-history"]
    fallback = [v for v in checked if v.source == "baseline"]
    if fallback:
        lines.append(
            f"({len(fallback)} phase(s) gated by the BENCH_BASELINE.json "
            f"compat fallback — fewer than {MIN_HISTORY_SAMPLES} ledger samples)"
        )
    if no_history:
        lines.append(
            f"({len(no_history)} phase(s) passed ungated — no comparable "
            "history yet; they gate once the ledger grows)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Ledger reports: list, diff, trend.


def _entry_cycles_total(entry: dict, build: str = "inline") -> int:
    total = 0
    for builds in entry.get("benchmarks", {}).values():
        cycles = builds.get(build, {}).get("cycles", [])
        if cycles:
            total += int(cycles[0])
    return total


def _format_when(timestamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))


def render_history_list(entries: list[dict], limit: int = 20) -> str:
    """``repro perf list``: one row per recorded run, newest last."""
    if not entries:
        return "perf history is empty (run `repro perf record` or `repro bench --check`)"
    lines = [
        f"{'#':>4s} {'recorded at':19s} {'git rev':>12s} {'jobs':>4s} "
        f"{'rep':>3s} {'benchmarks':>10s} {'inline cycles':>14s}"
    ]
    start = max(0, len(entries) - limit)
    for index in range(start, len(entries)):
        entry = entries[index]
        env = entry.get("env", {})
        lines.append(
            f"{index:>4d} {_format_when(float(entry.get('at', 0.0))):19s} "
            f"{str(env.get('git_rev', '?'))[:12]:>12s} "
            f"{env.get('jobs', '?'):>4} {entry.get('repeat', 1):>3} "
            f"{len(entry.get('benchmarks', {})):>10d} "
            f"{_entry_cycles_total(entry):>14d}"
        )
    if start:
        lines.append(f"... ({start} older entr{'y' if start == 1 else 'ies'} not shown)")
    return "\n".join(lines)


def resolve_rev(entries: list[dict], token: str) -> dict:
    """An entry named by index (``0``, ``-1``) or git-revision prefix.

    Revision prefixes resolve to the *latest* matching entry, so
    ``repro perf diff REV1 REV2`` compares the freshest measurement of
    each revision.
    """
    if not entries:
        raise ValueError("perf history is empty")
    try:
        index = int(token)
    except ValueError:
        matches = [
            e
            for e in entries
            if str(e.get("env", {}).get("git_rev", "")).startswith(token)
        ]
        if not matches:
            raise ValueError(
                f"no ledger entry with git revision prefix {token!r} "
                "(see `repro perf list`)"
            ) from None
        return matches[-1]
    try:
        return entries[index]
    except IndexError:
        raise ValueError(
            f"ledger index {index} out of range ({len(entries)} entries)"
        ) from None


def _entry_label(entry: dict) -> str:
    rev = str(entry.get("env", {}).get("git_rev", "?"))[:12]
    return f"{rev} @ {_format_when(float(entry.get('at', 0.0)))}"


def _phase_median(data: dict, phase: str) -> float | None:
    samples = [
        float(s)
        for s in data.get("phases", {}).get(phase, [])
        if isinstance(s, (int, float)) and not isinstance(s, bool)
    ]
    return median(samples) if samples else None


def render_entry_diff(base: dict, diff: dict, phase_threshold: float = 0.10) -> str:
    """Jitdiff-style base-vs-diff report between two ledger entries.

    Cycles (deterministic) lead: every (benchmark, build) with its
    base/diff counts and ratio.  Wall-time phases follow, showing only
    phases whose median moved more than ``phase_threshold`` relative —
    the CoreCLR jitdiff idiom of leading with totals and calling out
    the biggest movers.
    """
    lines = [
        f"perf diff: base {_entry_label(base)}",
        f"           diff {_entry_label(diff)}",
        "",
        f"{'benchmark':24s} {'build':>9s} {'base cycles':>12s} "
        f"{'diff cycles':>12s} {'ratio':>7s}",
    ]
    base_benches = base.get("benchmarks", {})
    diff_benches = diff.get("benchmarks", {})
    regressions = improvements = 0
    for benchmark in sorted(set(base_benches) | set(diff_benches)):
        builds = sorted(
            set(base_benches.get(benchmark, {})) | set(diff_benches.get(benchmark, {}))
        )
        for build in builds:
            base_cycles = base_benches.get(benchmark, {}).get(build, {}).get("cycles", [])
            diff_cycles = diff_benches.get(benchmark, {}).get(build, {}).get("cycles", [])
            if not base_cycles or not diff_cycles:
                missing = "base" if not base_cycles else "diff"
                lines.append(
                    f"{benchmark:24s} {build:>9s} (missing from {missing} entry)"
                )
                continue
            b, d = int(base_cycles[0]), int(diff_cycles[0])
            ratio = d / b if b else float("inf")
            marker = ""
            if d > b:
                marker = "  <- regressed"
                regressions += 1
            elif d < b:
                marker = "  <- improved"
                improvements += 1
            lines.append(
                f"{benchmark:24s} {build:>9s} {b:>12d} {d:>12d} {ratio:>7.3f}{marker}"
            )
    lines.append("")
    lines.append(
        f"cycles: {improvements} (benchmark, build) pairs improved, "
        f"{regressions} regressed"
    )

    moved: list[str] = []
    for benchmark in sorted(set(base_benches) & set(diff_benches)):
        for build in sorted(
            set(base_benches[benchmark]) & set(diff_benches[benchmark])
        ):
            base_data = base_benches[benchmark][build]
            diff_data = diff_benches[benchmark][build]
            phases = sorted(
                set(base_data.get("phases", {})) | set(diff_data.get("phases", {}))
            )
            for phase in phases:
                b = _phase_median(base_data, phase)
                d = _phase_median(diff_data, phase)
                if b is None or d is None or b == 0:
                    continue
                rel = (d - b) / b
                if abs(rel) >= phase_threshold and abs(d - b) >= 0.001:
                    moved.append(
                        f"  {benchmark}/{build}/{phase}: "
                        f"{b * 1e3:.2f}ms -> {d * 1e3:.2f}ms ({rel:+.1%})"
                    )
    if moved:
        lines.append("")
        lines.append(
            f"phase medians moved >= {phase_threshold:.0%} (wall time; noisy):"
        )
        lines.extend(moved)
    return "\n".join(lines)


#: Eight shades, worst to best resolution the terminal gives us.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Map a series onto ▁▂▃▄▅▆▇█ (empty string for no data)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return SPARK_CHARS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        step = int((value - low) / span * (len(SPARK_CHARS) - 1))
        chars.append(SPARK_CHARS[step])
    return "".join(chars)


def metric_series(
    entries: list[dict], benchmark: str, build: str, metric: str
) -> list[float]:
    """``metric`` over the ledger for one (benchmark, build), oldest first.

    ``"cycles"`` reads the deterministic cycle count; any other name is
    a phase (``analyze``, ``opt.dce``, ...) or per-build timing bucket
    (``optimize_seconds``, ``run_seconds``) whose per-entry median is
    used.  Entries lacking the metric are skipped.
    """
    series: list[float] = []
    for entry in entries:
        data = entry.get("benchmarks", {}).get(benchmark, {}).get(build)
        if not data:
            continue
        if metric == "cycles":
            cycles = data.get("cycles", [])
            if cycles:
                series.append(float(cycles[0]))
            continue
        if metric in ("optimize_seconds", "run_seconds"):
            samples = [float(s) for s in data.get(metric, [])]
            if samples:
                series.append(median(samples))
            continue
        value = _phase_median(data, metric)
        if value is not None:
            series.append(value)
    return series


def render_trend(
    entries: list[dict],
    metric: str,
    build: str = "inline",
    last: int = 40,
) -> str:
    """``repro perf trend METRIC``: one sparkline per benchmark."""
    if not entries:
        return "perf history is empty (run `repro perf record` or `repro bench --check`)"
    entries = entries[-last:]
    benchmarks = sorted({name for e in entries for name in e.get("benchmarks", {})})
    unit = "" if metric == "cycles" else " ms"
    scale = 1.0 if metric == "cycles" else 1e3
    lines = [f"trend of {metric} ({build} build, {len(entries)} entr"
             f"{'y' if len(entries) == 1 else 'ies'}):"]
    plotted = 0
    for benchmark in benchmarks:
        series = metric_series(entries, benchmark, build, metric)
        if not series:
            continue
        plotted += 1
        latest = series[-1] * scale
        low, high = min(series) * scale, max(series) * scale
        lines.append(
            f"  {benchmark:24s} {sparkline(series):40s} "
            f"latest {latest:.4g}{unit} (min {low:.4g}, max {high:.4g}, n={len(series)})"
        )
    if not plotted:
        lines.append(
            f"  no data for metric {metric!r} on build {build!r} "
            "(try `cycles`, a phase name like `analyze`, or `optimize_seconds`)"
        )
    return "\n".join(lines)
