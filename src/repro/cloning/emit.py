"""Method cloning and program emission (§3.2.2, §5 of the paper).

The pipeline here is:

1. **Partition refinement** — contours of each callable are grouped by
   their decision vectors; the vectors are then extended with the
   partition ids of each call site's callees and re-grouped until stable.
   This is the paper's iterative caller-splitting: when cloning a callee
   would re-introduce a dynamic dispatch, the callers split too.
2. **Naming** — each partition needs a method/function name; dynamic
   dispatch sites demand that specific partitions own the plain name on
   specific class variants.  Unsatisfiable demands are *conflicts*: the
   responsible candidates are reported for rejection and the whole
   transformation re-plans.
3. **Emission** — class variants and view classes are materialized, clone
   bodies are rewritten according to their partition's actions (field
   redirection, copy expansion, allocation variants, call binding), and a
   new :class:`~repro.ir.model.IRProgram` is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.results import AnalysisResult
from ..inlining.decisions import CandidateKey, InlinePlan
from ..ir import model as ir
from ..obs.tracer import NULL_TRACER
from .variants import VariantMap
from .vectors import VectorBuilder, VectorResult


class TransformInternalError(Exception):
    """An invariant of the transformation was violated (a compiler bug)."""


@dataclass(slots=True)
class CloneStats:
    """Reporting counters for Figures 15/16 style tables."""

    method_partitions: int = 0
    function_partitions: int = 0
    class_variants: int = 0
    view_classes: int = 0
    installed_methods: int = 0


@dataclass(slots=True)
class TransformOutcome:
    """Either a transformed program or the candidates to reject."""

    program: ir.IRProgram | None
    conflicts: set[CandidateKey]
    stats: CloneStats = field(default_factory=CloneStats)


@dataclass(slots=True)
class _Partition:
    pid: int
    callable_name: str
    contours: list[int]

    @property
    def representative(self) -> int:
        return self.contours[0]


class Transformer:
    """Runs partitioning, naming, and emission for one plan."""

    def __init__(
        self,
        result: AnalysisResult,
        plan: InlinePlan,
        devirtualize: bool = True,
        tracer=NULL_TRACER,
    ) -> None:
        self.result = result
        self.plan = plan
        self.program = result.program
        self.devirtualize = devirtualize
        self.tracer = tracer
        self.variants = VariantMap(result, plan)
        self.conflicts: set[CandidateKey] = set()
        self.vectors: VectorResult | None = None
        self.partitions: dict[int, _Partition] = {}
        self.partition_of: dict[int, int] = {}  # contour id -> pid
        #: pid -> list of (install class, final name); methods only.
        self.installs: dict[int, list[tuple[str, str]]] = {}
        #: (class, name) -> pid, for installed methods.
        self._slot_owner: dict[tuple[str, str], int] = {}
        self._function_names: dict[int, str] = {}
        self.stats = CloneStats()

    # ------------------------------------------------------------------
    # Entry point.

    def run(self) -> TransformOutcome:
        tracer = self.tracer
        with tracer.span("transform.vectors"):
            builder = VectorBuilder(
                self.result, self.plan, self.variants, self.devirtualize
            )
            self.vectors = builder.build()
        self.conflicts |= builder.conflicts
        if self.conflicts:
            tracer.count("transform.conflicts", len(self.conflicts))
            return TransformOutcome(program=None, conflicts=self.conflicts)

        with tracer.span("transform.partition"):
            self._partition()
        with tracer.span("transform.naming"):
            self._assign_names()
        if self.conflicts:
            tracer.count("transform.conflicts", len(self.conflicts))
            return TransformOutcome(program=None, conflicts=self.conflicts)
        with tracer.span("transform.emit"):
            program = self._emit()
        if self.conflicts:
            tracer.count("transform.conflicts", len(self.conflicts))
            return TransformOutcome(program=None, conflicts=self.conflicts)
        self.stats.class_variants = len(self.variants.variants)
        self.stats.view_classes = len(self.variants.view_classes)
        tracer.count("transform.partitions", len(self.partitions))
        tracer.count("transform.method_partitions", self.stats.method_partitions)
        tracer.count("transform.function_partitions", self.stats.function_partitions)
        tracer.count("transform.class_variants", self.stats.class_variants)
        tracer.count("transform.view_classes", self.stats.view_classes)
        tracer.count("transform.installed_methods", self.stats.installed_methods)
        return TransformOutcome(program=program, conflicts=set(), stats=self.stats)

    # ------------------------------------------------------------------
    # Phase 1: partition refinement.

    def _base_vector(self, contour_id: int) -> tuple:
        actions = self.vectors.actions.get(contour_id, {})
        return tuple(sorted(actions.items()))

    def _partition(self) -> None:
        # Initial grouping by base vector, per callable.
        groups: dict[tuple, list[int]] = {}
        for contour in self.result.manager.method_contours.values():
            key = (contour.callable_name, self._base_vector(contour.id))
            groups.setdefault(key, []).append(contour.id)

        pid = 0
        for key in sorted(groups, key=repr):
            members = sorted(groups[key])
            self.partitions[pid] = _Partition(pid, key[0], members)
            for cid in members:
                self.partition_of[cid] = pid
            pid += 1

        # Refine by callee partitions until stable.
        while True:
            refined: dict[tuple, list[int]] = {}
            for partition in self.partitions.values():
                for cid in partition.contours:
                    edges = self.result.call_edges.get(cid, {})
                    callee_sig = tuple(
                        (site, frozenset(self.partition_of[c] for c in callees))
                        for site, callees in sorted(edges.items())
                    )
                    key = (partition.callable_name, self._base_vector(cid), callee_sig)
                    refined.setdefault(key, []).append(cid)
            if len(refined) == len(self.partitions):
                break
            self.partitions.clear()
            pid = 0
            for key in sorted(refined, key=repr):
                members = sorted(refined[key])
                self.partitions[pid] = _Partition(pid, key[0], members)
                for cid in members:
                    self.partition_of[cid] = pid
                pid += 1

    # ------------------------------------------------------------------
    # Phase 2: install targets, dynamic demands, and naming.

    def _is_method(self, callable_name: str) -> bool:
        return "::" in callable_name

    def _method_base_name(self, callable_name: str) -> str:
        return callable_name.split("::", 1)[1]

    def _defining_class(self, callable_name: str) -> str:
        return callable_name.split("::", 1)[0]

    def _ancestor_for(self, class_name: str, defining_source: str) -> str | None:
        """Walk a (variant or original) class chain to the class whose
        *source* is ``defining_source``."""
        current: str | None = class_name
        while current is not None:
            info = self.variants.variants.get(current)
            if info is not None:
                if info.source_class == defining_source:
                    return current
                current = info.parent
            else:
                if current == defining_source:
                    return current
                current = self.program.classes[current].superclass
        return None

    def _desired_installs(self, partition: _Partition) -> set[tuple[str, str]]:
        """(install class, desired base name) pairs for a method partition."""
        defining = self._defining_class(partition.callable_name)
        base = self._method_base_name(partition.callable_name)
        targets: set[tuple[str, str]] = set()
        for cid in partition.contours:
            contour = self.result.method_contour(cid)
            if not contour.arg_values:
                continue
            recv = contour.arg_values[0]
            rep = self._receiver_rep(recv)
            if rep == "view-array":
                for key, element in self._view_classes_of(recv):
                    targets.add((self.variants.view_classes[(key, element)].name, base))
            elif isinstance(rep, tuple):  # field candidate key
                candidate = self.plan.candidates[rep]
                for variant in self._container_variants(candidate, recv):
                    anchor = self._ancestor_for(variant, candidate.declaring_class)
                    if anchor is None:
                        self.conflicts.add(candidate.key)
                        continue
                    targets.add((anchor, f"{base}@{candidate.field_name}"))
            else:  # raw receiver
                for ocid in recv.object_contours():
                    obj = self.result.object_contour(ocid)
                    if obj.is_array:
                        continue
                    variant = self.variants.variant_name(ocid)
                    anchor = self._ancestor_for(variant, defining)
                    if anchor is not None:
                        targets.add((anchor, base))
        return targets

    def _receiver_rep(self, recv) -> object:
        from ..inlining.decisions import RAW, UNKNOWN

        if not recv.may_be_object():
            return RAW
        reps = self.plan.representations(recv)
        if UNKNOWN in reps:
            atoms = recv.object_contours()
            for candidate in self.plan.candidates.values():
                if candidate.accepted and candidate.child_contours & atoms:
                    self.conflicts.add(candidate.key)
            return RAW
        keys = [rep for rep in reps if rep != RAW]
        if not keys:
            return RAW
        if len(keys) == 1 and RAW not in reps:
            key = keys[0]
            if self.plan.candidates[key].kind == "array":
                return "view-array"
            return key
        for key in keys:
            self.conflicts.add(key)
        return RAW

    def _view_classes_of(self, recv) -> set[tuple[CandidateKey, str]]:
        found: set[tuple[CandidateKey, str]] = set()
        for candidate in self.plan.candidates.values():
            if not candidate.accepted or candidate.kind != "array":
                continue
            if candidate.child_contours & recv.object_contours():
                for desc in candidate.child_desc_of.values():
                    if desc[0] == "class":
                        found.add((candidate.key, desc[1]))
        return found

    def _container_variants(self, candidate, child_value) -> set[str]:
        children = child_value.object_contours()
        containers: set[str] = set()
        for slot in candidate.slots:
            if self.result.slot_value(slot).object_contours() & children:
                containers.add(self.variants.variant_name(slot[0]))
        return containers

    def _assign_names(self) -> None:
        # Dynamic demands: (class, base name) -> pid.  Both rewritten sends
        # that stay dynamic and *untouched* sends (e.g. a possibly-nil
        # receiver keeps its dynamic error path) dispatch by name at
        # runtime, so the callee partitions they reach must own that name
        # on the concrete receiver classes.  Unrewritten `new` runs `init`
        # by name the same way.
        demands: dict[tuple[str, str], int] = {}
        for partition in self.partitions.values():
            rep_cid = partition.representative
            callable_ = self.program.lookup_callable(partition.callable_name)
            if callable_ is None:
                continue
            actions = self.vectors.actions.get(rep_cid, {})
            for instr in callable_.instructions():
                action = actions.get(instr.uid)
                if action is not None and action[0] in ("sendr", "sendi", "sendv"):
                    self._collect_demands(rep_cid, instr.uid, action, demands)
                elif action is None and isinstance(instr, ir.CallMethod):
                    self._collect_plain_demands(rep_cid, instr.uid, demands)
                elif action is None and isinstance(instr, ir.New):
                    self._collect_plain_demands(rep_cid, instr.uid, demands)
        if self.conflicts:
            return

        # Desired installs per method partition.
        desired: dict[int, set[tuple[str, str]]] = {}
        for partition in self.partitions.values():
            if self._is_method(partition.callable_name):
                desired[partition.pid] = self._desired_installs(partition)
        if self.conflicts:
            return

        # Dynamic demands pin clones onto concrete classes; make sure the
        # demanded partitions install there.
        for slot, pid in demands.items():
            desired.setdefault(pid, set()).add(slot)

        # Assign final names per (class, base): the demanded partition (or
        # the lowest pid) owns the plain name; the rest get @p<pid> suffixes.
        by_slot: dict[tuple[str, str], list[int]] = {}
        for pid, targets in desired.items():
            for slot in targets:
                by_slot.setdefault(slot, []).append(pid)
        for slot, pids in sorted(by_slot.items()):
            class_name, base = slot
            owner = demands.get(slot)
            if owner is None or owner not in pids:
                if owner is not None:
                    # A dynamic site needs a partition here that never
                    # installs here — inconsistent; blame involved candidates.
                    self._blame(pids + [owner])
                    continue
                owner = min(pids)
            for pid in sorted(set(pids)):
                name = base if pid == owner else f"{base}@p{pid}"
                self.installs.setdefault(pid, []).append((class_name, name))
                self._slot_owner[(class_name, name)] = pid

        # Function partition names.
        by_function: dict[str, list[int]] = {}
        for partition in self.partitions.values():
            if not self._is_method(partition.callable_name):
                by_function.setdefault(partition.callable_name, []).append(partition.pid)
        for fname, pids in by_function.items():
            pids = sorted(set(pids))
            if fname in (ir.IRProgram.ENTRY_FUNCTION, ir.IRProgram.GLOBAL_INIT) and len(pids) > 1:
                raise TransformInternalError(f"entry function {fname} split into clones")
            for index, pid in enumerate(pids):
                self._function_names[pid] = fname if index == 0 else f"{fname}@p{pid}"

    def _collect_demands(
        self,
        contour_id: int,
        uid: int,
        action: tuple,
        demands: dict[tuple[str, str], int],
    ) -> None:
        """Register (class, name) -> partition requirements of dynamic sites."""
        callees = self.result.callees_at(contour_id, uid)
        callee_pids = {self.partition_of[c] for c in callees}
        if len(callee_pids) <= 1 and action[0] == "sendr" and len(action[2]) <= 1:
            return  # statically bindable; no demand
        if action[0] == "sendv" and len(callee_pids) <= 1:
            return
        if action[0] == "sendi" and len(callee_pids) <= 1 and len(action[3]) <= 1:
            return
        # Dynamic: every callee partition must own the base name on the
        # *concrete* class(es) its receivers dispatch through (dispatch
        # starts at the runtime class, so per-class clones under the plain
        # name are exactly how cloning keeps dynamic sites correct).
        for callee_id in callees:
            pid = self.partition_of[callee_id]
            callee = self.result.method_contour(callee_id)
            partition = self.partitions[pid]
            base = self._method_base_name(partition.callable_name)
            if action[0] == "sendi":
                candidate = self.plan.candidates[action[1]]
                base = f"{base}@{candidate.field_name}"
                classes = set(
                    self._container_variants(candidate, callee.arg_values[0])
                )
            elif action[0] == "sendv":
                classes = {
                    self.variants.view_classes[(key, element)].name
                    for key, element in self._view_classes_of(callee.arg_values[0])
                }
            else:
                classes = set()
                for ocid in callee.arg_values[0].object_contours():
                    obj = self.result.object_contour(ocid)
                    if obj.is_array:
                        continue
                    classes.add(self.variants.variant_name(ocid))
            for class_name in classes:
                if class_name is None:
                    continue
                slot = (class_name, base)
                existing = demands.get(slot)
                if existing is not None and existing != pid:
                    self._blame([existing, pid])
                    return
                demands[slot] = pid

    def _collect_plain_demands(
        self, contour_id: int, uid: int, demands: dict[tuple[str, str], int]
    ) -> None:
        """Demands of an unrewritten dynamic send / implicit-init new: every
        callee partition must own the *original* method name on the concrete
        receiver classes it serves."""
        for callee_id in self.result.callees_at(contour_id, uid):
            pid = self.partition_of[callee_id]
            callee = self.result.method_contour(callee_id)
            partition = self.partitions[pid]
            if not self._is_method(partition.callable_name) or not callee.arg_values:
                continue
            base = self._method_base_name(partition.callable_name)
            for ocid in callee.arg_values[0].object_contours():
                obj = self.result.object_contour(ocid)
                if obj.is_array:
                    continue
                slot = (self.variants.variant_name(ocid), base)
                existing = demands.get(slot)
                if existing is not None and existing != pid:
                    self._blame([existing, pid])
                    return
                demands[slot] = pid

    def _blame(self, pids: list[int]) -> None:
        """Reject every candidate mentioned in the given partitions' vectors."""
        blamed = False
        for pid in pids:
            partition = self.partitions.get(pid)
            if partition is None:
                continue
            for cid in partition.contours:
                for action in self.vectors.actions.get(cid, {}).values():
                    for element in action:
                        if isinstance(element, tuple) and element in self.plan.candidates:
                            self.conflicts.add(element)
                            blamed = True
        if not blamed:
            # No candidate to blame: fall back to rejecting everything so
            # the pipeline degenerates to devirtualization-only (sound).
            accepted = [
                key for key, candidate in self.plan.candidates.items() if candidate.accepted
            ]
            if not accepted:
                raise TransformInternalError(
                    "naming conflict with no inlining candidates involved"
                )
            self.conflicts.update(accepted)

    # ------------------------------------------------------------------
    # Phase 3: emission.

    def _emit(self) -> ir.IRProgram:
        new_classes: dict[str, ir.IRClass] = {}
        for name, cls in self.program.classes.items():
            new_classes[name] = ir.IRClass(
                name=cls.name,
                superclass=cls.superclass,
                fields=list(cls.fields),
                methods=dict(cls.methods),
                inline_fields=set(cls.inline_fields),
                inlined_state=dict(cls.inlined_state),
                source_name=cls.source_name or cls.name,
            )
        self.variants.emit_classes(new_classes)

        new_functions: dict[str, ir.IRCallable] = dict(self.program.functions)

        for partition in sorted(self.partitions.values(), key=lambda p: p.pid):
            callable_ = self.program.lookup_callable(partition.callable_name)
            if callable_ is None:
                continue
            if self._is_method(partition.callable_name):
                self.stats.method_partitions += 1
                for install_class, final_name in self.installs.get(partition.pid, []):
                    body = self._rewrite_body(callable_, partition, install_class)
                    body.name = f"{install_class}::{final_name}"
                    body.class_name = install_class
                    target = new_classes.get(install_class)
                    if target is None:
                        raise TransformInternalError(
                            f"install class {install_class} missing"
                        )
                    target.methods[final_name] = body
                    self.stats.installed_methods += 1
            else:
                self.stats.function_partitions += 1
                final_name = self._function_names[partition.pid]
                body = self._rewrite_body(callable_, partition, None)
                body.name = final_name
                new_functions[final_name] = body

        program = ir.IRProgram(
            classes=new_classes,
            functions=new_functions,
            global_names=list(self.program.global_names),
        )
        self._detach_shared_bodies(program)
        return program

    def _detach_shared_bodies(self, program: ir.IRProgram) -> None:
        """Copy every callable carried over from the input program.

        Bodies untouched by any partition rewrite are aliased straight
        out of ``self.program``; the scalar passes that follow mutate
        blocks in place, so without a copy they would rewrite the
        *input* program too (breaking ``optimize``'s contract and
        cross-contaminating builds that share one compiled program).
        """
        source_bodies = {id(c) for c in self.program.callables()}
        for name, fn in program.functions.items():
            if id(fn) in source_bodies:
                program.functions[name] = ir.copy_callable(fn)
        for cls in program.classes.values():
            for method_name, method in cls.methods.items():
                if id(method) in source_bodies:
                    cls.methods[method_name] = ir.copy_callable(method)

    # ------------------------------------------------------------------
    # Call binding helpers (shared by demand collection and emission).

    def _static_target(
        self, contour_id: int, uid: int, action: tuple, install_class: str | None
    ) -> tuple[str, str] | None:
        """(class, name) for a statically bindable call site, else None."""
        callees = self.result.callees_at(contour_id, uid)
        callee_pids = {self.partition_of[c] for c in callees}
        if len(callee_pids) != 1:
            return None
        pid = callee_pids.pop()
        partition = self.partitions[pid]
        if not self._is_method(partition.callable_name):
            return None
        entries = self.installs.get(pid, [])

        def entry_in_chain(start_class: str) -> tuple[str, str] | None:
            chain = self._chain_of(start_class)
            for chain_class in chain:
                for class_name, name in entries:
                    if class_name == chain_class:
                        return (class_name, name)
            return None

        if action[0] == "sendr":
            if len(action[2]) != 1:
                return None
            _defining, recv_variant = action[2][0]
            return entry_in_chain(recv_variant)
        if action[0] == "sendi":
            if len(action[3]) != 1:
                return None
            return entry_in_chain(action[3][0])
        if action[0] == "sendv":
            view = action[2]
            for class_name, name in entries:
                if class_name == view:
                    return (class_name, name)
            return None
        if action[0] == "static":
            # Super call: resolve the entry visible from the installing
            # class's chain (falling back to any entry).
            anchor_chain = self._chain_of(install_class) if install_class else []
            for class_name, name in entries:
                if class_name in anchor_chain:
                    return (class_name, name)
            if entries:
                return entries[0]
            return None
        return None

    def _chain_of(self, class_name: str) -> list[str]:
        chain: list[str] = []
        current: str | None = class_name
        while current is not None:
            chain.append(current)
            info = self.variants.variants.get(current)
            if info is not None:
                current = info.parent
                continue
            cls = self.program.classes.get(current)
            if cls is not None:
                current = cls.superclass
                continue
            # A view class (array-element window) is not in the source
            # program; its methods are clones of the element class's, so
            # super calls inside them resolve through the element chain.
            view = next(
                (
                    v
                    for v in self.variants.view_classes.values()
                    if v.name == current
                ),
                None,
            )
            current = view.element_class if view is not None else None
        return chain

    def _dynamic_name(self, contour_id: int, uid: int, action: tuple) -> str:
        """Method name for a dynamic send (demands ensured installability)."""
        callees = self.result.callees_at(contour_id, uid)
        if callees:
            pid = self.partition_of[next(iter(callees))]
            base = self._method_base_name(self.partitions[pid].callable_name)
        else:
            base = action[1] if action[0] in ("sendr", "sendv") else action[2]
        if action[0] == "sendi":
            candidate = self.plan.candidates[action[1]]
            return f"{base}@{candidate.field_name}"
        return base

    # ------------------------------------------------------------------
    # Body rewriting.

    def _rewrite_body(
        self,
        callable_: ir.IRCallable,
        partition: _Partition,
        install_class: str | None,
    ) -> ir.IRCallable:
        contour_id = partition.representative
        actions = self.vectors.actions.get(contour_id, {})
        next_reg = callable_.num_regs
        new_blocks: list[ir.Block] = []

        def fresh() -> int:
            nonlocal next_reg
            reg = next_reg
            next_reg += 1
            return reg

        for block in callable_.blocks:
            new_block = ir.Block()
            for instr in block.instrs:
                replacement = self._rewrite_instr(
                    instr,
                    actions.get(instr.uid),
                    contour_id,
                    install_class,
                    fresh,
                )
                new_block.instrs.extend(replacement)
            new_blocks.append(new_block)

        return ir.IRCallable(
            name=callable_.name,
            params=callable_.params,
            num_regs=next_reg,
            blocks=new_blocks,
            is_method=callable_.is_method,
            class_name=callable_.class_name,
            source_name=callable_.source_name or callable_.name,
        )

    def _array_elem_class(self, contour_id: int, uid: int) -> str | None:
        """The single proven element class of an array allocation, if any.

        Reads the analysis' ``@elem`` slot of the site's object contour.
        Returns ``None`` unless the elements resolve to exactly one
        non-array class with no primitive admixture — the annotation only
        sharpens locality labels, so ambiguity simply keeps the generic
        ``<array>`` label.
        """
        from ..analysis.tags import ELEM_FIELD

        ocid = self.result.allocations.get(contour_id, {}).get(uid)
        if ocid is None:
            return None
        value = self.result.slot_value((ocid, ELEM_FIELD))
        contours = value.object_contours()
        if not contours or value.prims() - {"nil"}:
            return None
        classes = {
            self.result.object_contour(c).class_name for c in contours
        }
        if len(classes) != 1:
            return None
        elem = next(iter(classes))
        return None if elem.startswith("@") else elem

    def _rewrite_instr(
        self,
        instr: ir.Instr,
        action: tuple | None,
        contour_id: int,
        install_class: str | None,
        fresh,
    ) -> list[ir.Instr]:
        loc = instr.loc
        if action is None:
            if isinstance(instr, ir.NewArray) and instr.inline_layout is None:
                elem = self._array_elem_class(contour_id, instr.uid)
                if elem is not None:
                    from dataclasses import replace

                    return [
                        replace(instr, uid=ir.fresh_uid(), elem_class=elem)
                    ]
            return [_recopy(instr)]

        kind = action[0]
        if kind == "newc":
            return self._rewrite_new(instr, action, contour_id, install_class, fresh)
        if kind == "newarr":
            return [
                ir.make_instr(
                    ir.NewArray, loc, dest=instr.dest, size=instr.size,
                    inline_layout=action[1], parallel_layout=action[2],
                )
            ]
        if kind == "elide":
            return [ir.make_instr(ir.Move, loc, dest=instr.dest, src=instr.obj)]
        if kind == "gren":
            return [
                ir.make_instr(
                    ir.GetField, loc, dest=instr.dest, obj=instr.obj, field_name=action[1]
                )
            ]
        if kind == "sren":
            return [
                ir.make_instr(
                    ir.SetField, loc, obj=instr.obj, field_name=action[1], src=instr.src
                )
            ]
        if kind == "copyf":
            return self._emit_copy_field(instr, action, fresh)
        if kind == "gidx":
            return [
                ir.make_instr(
                    ir.GetFieldIndexed, loc, dest=instr.dest, obj=instr.array,
                    base_field=action[1], length=action[2], index=instr.index,
                )
            ]
        if kind == "sidx":
            return [
                ir.make_instr(
                    ir.SetFieldIndexed, loc, obj=instr.array, base_field=action[1],
                    length=action[2], index=instr.index, src=instr.src,
                )
            ]
        if kind == "lenk":
            return [ir.make_instr(ir.Const, loc, dest=instr.dest, value=action[1])]
        if kind == "view":
            return [
                ir.make_instr(
                    ir.MakeView, loc, dest=instr.dest, array=instr.array,
                    index=instr.index, class_name=action[1],
                )
            ]
        if kind == "copye":
            return self._emit_copy_element(instr, action, fresh)
        if kind in ("sendr", "sendi", "sendv"):
            target = self._static_target(contour_id, instr.uid, action, install_class)
            if target is not None:
                class_name, name = target
                return [
                    ir.make_instr(
                        ir.CallStatic, loc, dest=instr.dest, recv=instr.recv,
                        class_name=class_name, method_name=name, args=instr.args,
                    )
                ]
            name = self._dynamic_name(contour_id, instr.uid, action)
            return [
                ir.make_instr(
                    ir.CallMethod, loc, dest=instr.dest, recv=instr.recv,
                    method_name=name, args=instr.args,
                )
            ]
        if kind == "static":
            target = self._static_target(contour_id, instr.uid, action, install_class)
            if target is None:
                # Unreached super call (no callee contours): keep original.
                return [_recopy(instr)]
            class_name, name = target
            return [
                ir.make_instr(
                    ir.CallStatic, loc, dest=instr.dest, recv=instr.recv,
                    class_name=class_name, method_name=name, args=instr.args,
                )
            ]
        if kind == "fn":
            callees = self.result.callees_at(contour_id, instr.uid)
            if not callees:
                return [_recopy(instr)]
            pid = self.partition_of[next(iter(callees))]
            return [
                ir.make_instr(
                    ir.CallFunction, loc, dest=instr.dest,
                    func_name=self._function_names[pid], args=instr.args,
                )
            ]
        raise TransformInternalError(f"unknown action {kind}")

    def _rewrite_new(
        self,
        instr: ir.New,
        action: tuple,
        contour_id: int,
        install_class: str | None,
        fresh,
    ) -> list[ir.Instr]:
        _kind, variant, stack = action
        callees = self.result.callees_at(contour_id, instr.uid)
        if not callees:
            # No constructor: plain allocation under the variant class.
            return [
                ir.make_instr(
                    ir.New, instr.loc, dest=instr.dest, class_name=variant,
                    args=instr.args, on_stack=stack, skip_init=True,
                )
            ]
        pid = self.partition_of[next(iter(callees))]
        entries = self.installs.get(pid, [])
        chain = self._chain_of(variant)
        target: tuple[str, str] | None = None
        for class_name, name in entries:
            if class_name in chain:
                target = (class_name, name)
                break
        if target is None:
            raise TransformInternalError(
                f"no init install for {variant} (partition {pid})"
            )
        sink = fresh()
        return [
            ir.make_instr(
                ir.New, instr.loc, dest=instr.dest, class_name=variant,
                args=(), on_stack=stack, skip_init=True,
            ),
            ir.make_instr(
                ir.CallStatic, instr.loc, dest=sink, recv=instr.dest,
                class_name=target[0], method_name=target[1], args=instr.args,
            ),
        ]

    def _emit_copy_field(self, instr: ir.SetField, action: tuple, fresh) -> list[ir.Instr]:
        _kind, field_name, desc = action
        loc = instr.loc
        out: list[ir.Instr] = []
        if desc[0] == "class":
            _tag, _cls, child_fields = desc
            for child_field in child_fields:
                temp = fresh()
                out.append(
                    ir.make_instr(
                        ir.GetField, loc, dest=temp, obj=instr.src,
                        field_name=child_field,
                    )
                )
                out.append(
                    ir.make_instr(
                        ir.SetField, loc, obj=instr.obj,
                        field_name=f"{field_name}__{child_field}", src=temp,
                    )
                )
        else:  # embedded fixed-length array
            length = desc[1]
            for i in range(length):
                index_reg = fresh()
                temp = fresh()
                out.append(ir.make_instr(ir.Const, loc, dest=index_reg, value=i))
                out.append(
                    ir.make_instr(
                        ir.GetIndex, loc, dest=temp, array=instr.src, index=index_reg
                    )
                )
                out.append(
                    ir.make_instr(
                        ir.SetField, loc, obj=instr.obj,
                        field_name=f"{field_name}__{i}", src=temp,
                    )
                )
        return out

    def _emit_copy_element(self, instr: ir.SetIndex, action: tuple, fresh) -> list[ir.Instr]:
        _kind, view_class, _element_class, child_fields = action
        loc = instr.loc
        view = fresh()
        out: list[ir.Instr] = [
            ir.make_instr(
                ir.MakeView, loc, dest=view, array=instr.array, index=instr.index,
                class_name=view_class,
            )
        ]
        for child_field in child_fields:
            temp = fresh()
            out.append(
                ir.make_instr(
                    ir.GetField, loc, dest=temp, obj=instr.src, field_name=child_field
                )
            )
            out.append(
                ir.make_instr(
                    ir.SetField, loc, obj=view, field_name=child_field, src=temp
                )
            )
        return out


def _recopy(instr: ir.Instr) -> ir.Instr:
    """Copy an instruction with a fresh uid (bodies must not share uids)."""
    from dataclasses import replace

    return replace(instr, uid=ir.fresh_uid())


def transform_program(
    result: AnalysisResult,
    plan: InlinePlan,
    devirtualize: bool = True,
    tracer=NULL_TRACER,
) -> TransformOutcome:
    """Apply cloning + inlining rewriting; returns conflicts for replanning
    if the plan is not consistently emittable.  ``tracer`` records the
    vector/partition/naming/emission spans and the clone counters."""
    return Transformer(result, plan, devirtualize, tracer).run()
