"""Class cloning (§5.1–§5.2 of the paper).

When a polymorphic field is inlined, containers that hold different child
classes need different layouts, so the container class is split into
*variants* — one per combination of child descriptors over the accepted
candidates in its layout.  Array-element inlining similarly creates a
synthetic *view class* per (array site, element class) whose instances
are the ``(array, index)`` fat pointers.

Layout rule (§5.2): the inlined field is replaced in place by the child's
first field and the child's remaining fields are appended at the end of
the container class's own field segment, so subclass layouts stay
conforming.  (Our VM addresses fields by name, so conformance is a
code-size/locality property rather than a correctness requirement; we
keep the paper's rule anyway so the emitted layouts match the paper.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.results import AnalysisResult
from ..inlining.decisions import Candidate, CandidateKey, ChildDesc, InlinePlan
from ..ir import model as ir


def mangle(field_name: str, child_field: str) -> str:
    """Container field holding one piece of inlined child state."""
    return f"{field_name}__{child_field}"


def mangle_indexed(field_name: str, index: int) -> str:
    """Container field holding slot ``index`` of an embedded array."""
    return f"{field_name}__{index}"


#: A variant combo: mapping candidate key -> child descriptor (or None when
#: this contour never stores the field), for every accepted field candidate
#: in the class's layout.
Combo = tuple[tuple[CandidateKey, ChildDesc | None], ...]


@dataclass(slots=True)
class VariantInfo:
    """One emitted container-class variant."""

    name: str
    source_class: str
    parent: str | None  # variant name of the superclass
    combo: Combo
    #: candidate key -> InlinedFieldInfo-ish: (field, desc, state names)
    inlined: dict[CandidateKey, tuple[str, ChildDesc]] = field(default_factory=dict)


@dataclass(slots=True)
class ViewClassInfo:
    """One synthetic element-view class for an inlined array site."""

    name: str
    candidate_key: CandidateKey
    element_class: str


class VariantMap:
    """Computes and owns all class variants and view classes."""

    def __init__(self, result: AnalysisResult, plan: InlinePlan) -> None:
        self.result = result
        self.plan = plan
        self.program = result.program
        #: object contour id -> class name to allocate (variant or original).
        self.variant_of_contour: dict[int, str] = {}
        #: variant name -> info (only classes whose layout changed).
        self.variants: dict[str, VariantInfo] = {}
        #: (candidate key, element class) -> view class info.
        self.view_classes: dict[tuple[CandidateKey, str], ViewClassInfo] = {}
        self._by_class_combo: dict[tuple[str, Combo], str] = {}
        self._counters: dict[str, int] = {}
        self._build()

    # ------------------------------------------------------------------
    # Queries.

    def variant_name(self, contour_id: int) -> str:
        """Class to allocate for this object contour."""
        if contour_id in self.variant_of_contour:
            return self.variant_of_contour[contour_id]
        return self.result.object_contour(contour_id).class_name

    def view_class(self, candidate: Candidate, element_class: str) -> str:
        key = (candidate.key, element_class)
        info = self.view_classes.get(key)
        if info is None:
            info = ViewClassInfo(
                name=f"{element_class}@elem{candidate.site_uid}",
                candidate_key=candidate.key,
                element_class=element_class,
            )
            self.view_classes[key] = info
        return info.name

    def changed_classes(self) -> set[str]:
        """Source classes that acquired at least one variant."""
        return {info.source_class for info in self.variants.values()}

    # ------------------------------------------------------------------
    # Construction.

    def _accepted_fields_in_chain(self, class_name: str) -> list[Candidate]:
        """Accepted field candidates declared anywhere in the class chain."""
        chain = set(self.program.superclass_chain(class_name))
        found = [
            candidate
            for candidate in self.plan.candidates.values()
            if candidate.accepted
            and candidate.kind == "field"
            and candidate.declaring_class in chain
        ]
        found.sort(key=lambda c: (c.declaring_class, c.field_name))
        return found

    def _combo_for_contour(self, contour_id: int, class_name: str) -> Combo:
        parts: list[tuple[CandidateKey, ChildDesc | None]] = []
        for candidate in self._accepted_fields_in_chain(class_name):
            parts.append((candidate.key, candidate.child_desc_of.get(contour_id)))
        return tuple(parts)

    def _build(self) -> None:
        for contour in self.result.manager.object_contours.values():
            if contour.is_array:
                continue
            combo = self._combo_for_contour(contour.id, contour.class_name)
            if not any(desc is not None for _key, desc in combo):
                continue  # nothing inlined for this contour's class
            self.variant_of_contour[contour.id] = self._ensure_variant(
                contour.class_name, combo
            )
        # View classes are created on demand by vector computation; array
        # candidates register theirs eagerly here for determinism.
        for candidate in self.plan.candidates.values():
            if candidate.accepted and candidate.kind == "array":
                for desc in candidate.child_desc_of.values():
                    if desc[0] == "class":
                        self.view_class(candidate, desc[1])

    def _ensure_variant(self, class_name: str, combo: Combo) -> str:
        key = (class_name, combo)
        existing = self._by_class_combo.get(key)
        if existing is not None:
            return existing

        count = self._counters.get(class_name, 0) + 1
        self._counters[class_name] = count
        name = f"{class_name}${count}"

        cls = self.program.classes[class_name]
        parent: str | None = None
        if cls.superclass is not None:
            parent_combo = self._restrict_combo(combo, cls.superclass)
            if any(desc is not None for _key, desc in parent_combo):
                parent = self._ensure_variant(cls.superclass, parent_combo)
            else:
                parent = cls.superclass

        info = VariantInfo(name=name, source_class=class_name, parent=parent, combo=combo)
        for candidate_key, desc in combo:
            if desc is None:
                continue
            candidate = self.plan.candidates[candidate_key]
            if candidate.declaring_class == class_name:
                info.inlined[candidate_key] = (candidate.field_name, desc)
        self.variants[name] = info
        self._by_class_combo[key] = name
        return name

    def _restrict_combo(self, combo: Combo, ancestor: str) -> Combo:
        chain = set(self.program.superclass_chain(ancestor))
        return tuple(
            (key, desc)
            for key, desc in combo
            if self.plan.candidates[key].declaring_class in chain
        )

    # ------------------------------------------------------------------
    # Class emission.

    def emit_classes(self, into: dict[str, ir.IRClass]) -> None:
        """Add variant and view classes to ``into`` (name -> IRClass)."""
        # Parents must be registered before layout queries run, so emit all
        # class shells first.
        for info in self.variants.values():
            into[info.name] = self._emit_variant(info)
        for view in self.view_classes.values():
            into[view.name] = ir.IRClass(
                name=view.name,
                superclass=None,
                fields=list(self.program.layout(view.element_class)),
                methods={},
                source_name=view.element_class,
            )

    def _emit_variant(self, info: VariantInfo) -> ir.IRClass:
        source = self.program.classes[info.source_class]
        fields: list[str] = []
        appended: list[str] = []
        inlined_state: dict[str, ir.InlinedFieldInfo] = {}
        for field_name in source.fields:
            desc = self._desc_for_field(info, field_name)
            if desc is None:
                fields.append(field_name)
                continue
            state_names = self._state_fields(field_name, desc)
            if state_names:
                # §5.2: first child field replaces the inlined slot, the
                # rest go at the end of this class's own segment.
                fields.append(state_names[0][1])
                appended.extend(name for _child, name in state_names[1:])
            if desc[0] == "class":
                inlined_state[field_name] = ir.InlinedFieldInfo(
                    field_name=field_name,
                    child_class=desc[1],
                    state_fields=tuple(state_names),
                )
        fields.extend(appended)
        return ir.IRClass(
            name=info.name,
            superclass=info.parent,
            fields=fields,
            methods={},
            inline_fields=set(source.inline_fields),
            inlined_state=inlined_state,
            source_name=info.source_class,
        )

    def _desc_for_field(self, info: VariantInfo, field_name: str) -> ChildDesc | None:
        for candidate_key, desc in info.combo:
            candidate = self.plan.candidates[candidate_key]
            if (
                candidate.declaring_class == info.source_class
                and candidate.field_name == field_name
            ):
                return desc
        return None

    def _state_fields(self, field_name: str, desc: ChildDesc) -> list[tuple[str, str]]:
        """(child field, container field) pairs for one inlined slot."""
        if desc[0] == "class":
            return [
                (child_field, mangle(field_name, child_field))
                for child_field in self.program.layout(desc[1])
            ]
        length = desc[1]
        return [(str(i), mangle_indexed(field_name, i)) for i in range(length)]
