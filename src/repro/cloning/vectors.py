"""Per-contour specialization decision vectors.

For every method contour the transformation derives, per instruction, the
*action* the rewrite will apply there (redirect a field access, expand a
copy, pick an allocation variant, bind a call...).  Contours of one
callable with identical vectors are *compatible* in the paper's sense
(§3.2.2) and end up in the same clone; the partition refinement in
:mod:`repro.cloning.emit` additionally splits callers whose callees split.

Actions are plain hashable tuples so vectors can key partitions directly.
Conflicts (sites that cannot be rewritten consistently, e.g. a value that
may be either an inline array or a plain array) are reported back as the
candidate keys to reject; the pipeline replans without them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.results import AnalysisResult
from ..analysis.values import AbstractVal
from ..inlining.decisions import Candidate, CandidateKey, InlinePlan, RAW, UNKNOWN
from ..ir import model as ir
from .variants import VariantMap, mangle, mangle_indexed

#: contour id -> instr uid -> action tuple.
ActionMap = dict[int, dict[int, tuple]]


@dataclass(slots=True)
class VectorResult:
    actions: ActionMap
    conflicts: set[CandidateKey] = field(default_factory=set)


class VectorBuilder:
    """Derives the action map for one analyzed program."""

    def __init__(
        self,
        result: AnalysisResult,
        plan: InlinePlan,
        variants: VariantMap,
        devirtualize: bool = True,
    ) -> None:
        self.result = result
        self.plan = plan
        self.variants = variants
        self.devirtualize = devirtualize
        self.program = result.program
        self.conflicts: set[CandidateKey] = set()
        self._stackable: set[tuple[int, int]] = set()
        for candidate in plan.candidates.values():
            if candidate.accepted:
                self._stackable |= candidate.stackable_allocations

    # ------------------------------------------------------------------

    def build(self) -> VectorResult:
        actions: ActionMap = {}
        for contour in self.result.manager.method_contours.values():
            callable_ = self.program.lookup_callable(contour.callable_name)
            if callable_ is None:
                continue
            contour_actions: dict[int, tuple] = {}
            for instr in callable_.instructions():
                action = self._action_for(contour.id, instr)
                if action is not None:
                    contour_actions[instr.uid] = action
            actions[contour.id] = contour_actions
        return VectorResult(actions=actions, conflicts=self.conflicts)

    # ------------------------------------------------------------------
    # Helpers.

    def _fact(self, contour_id: int, uid: int) -> dict[str, object]:
        return self.result.fact(contour_id, uid)

    def _single_rep(self, value: AbstractVal) -> object | None:
        """The unique representation of a value, or None for raw/unknown."""
        if not value.may_be_object():
            return None
        reps = self.plan.representations(value)
        if UNKNOWN in reps:
            atoms = value.object_contours()
            for candidate in self.plan.candidates.values():
                if candidate.accepted and candidate.child_contours & atoms:
                    self.conflicts.add(candidate.key)
            return None
        keys = [rep for rep in reps if rep != RAW]
        if not keys:
            return None
        if len(keys) > 1 or RAW in reps:
            # Purity should have prevented this; reject defensively.
            for key in keys:
                self.conflicts.add(key)
            return None
        return keys[0]

    def _field_candidate_for(self, value: AbstractVal, field_name: str) -> Candidate | None:
        """Accepted candidate when every object contour of ``value`` has
        ``field_name`` as an accepted inlined field; conflicts otherwise."""
        keys: set[CandidateKey | None] = set()
        for cid in value.object_contours():
            contour = self.result.object_contour(cid)
            if contour.is_array:
                keys.add(None)
                continue
            declaring = None
            for name in self.program.superclass_chain(contour.class_name):
                if field_name in self.program.classes[name].fields:
                    declaring = name
                    break
            if declaring is None:
                keys.add(None)
                continue
            key = ("field", declaring, field_name)
            candidate = self.plan.candidates.get(key)
            if candidate is not None and candidate.accepted:
                keys.add(key)
            else:
                keys.add(None)
        if keys == {None} or not keys:
            return None
        if None in keys or len(keys) > 1:
            for key in keys:
                if key is not None:
                    self.conflicts.add(key)
            return None
        (key,) = keys
        return self.plan.candidates[key]

    def _array_candidate_for(self, value: AbstractVal) -> Candidate | None:
        """Accepted element candidate covering every array contour of value."""
        keys: set[CandidateKey | None] = set()
        for cid in value.object_contours():
            contour = self.result.object_contour(cid)
            if not contour.is_array:
                keys.add(None)
                continue
            key = ("array", contour.site_uid)
            candidate = self.plan.candidates.get(key)
            if candidate is not None and candidate.accepted:
                keys.add(key)
            else:
                keys.add(None)
        if keys == {None} or not keys:
            return None
        if None in keys or len(keys) > 1:
            for key in keys:
                if key is not None:
                    self.conflicts.add(key)
            return None
        (key,) = keys
        return self.plan.candidates[key]

    def _unique_desc(self, candidate: Candidate, value: AbstractVal) -> tuple | None:
        """The child descriptor shared by all of value's container contours."""
        descs = {
            candidate.child_desc_of.get(cid)
            for cid in value.object_contours()
            if cid in candidate.container_contours
        }
        descs.discard(None)
        if len(descs) != 1:
            self.conflicts.add(candidate.key)
            return None
        return descs.pop()

    def _expanded_desc(self, desc: tuple) -> tuple:
        if desc[0] == "class":
            return ("class", desc[1], tuple(self.program.layout(desc[1])))
        return desc  # ('array', k)

    def _container_variants(self, candidate: Candidate, child_value: AbstractVal) -> tuple:
        """Variant names of the containers holding these child contours."""
        children = child_value.object_contours()
        containers: set[str] = set()
        for slot in candidate.slots:
            if self.result.slot_value(slot).object_contours() & children:
                containers.add(self.variants.variant_name(slot[0]))
        return tuple(sorted(containers))

    # ------------------------------------------------------------------
    # Per-instruction action derivation.

    def _action_for(self, contour_id: int, instr: ir.Instr) -> tuple | None:
        kind = type(instr)
        if kind is ir.New:
            return self._action_new(contour_id, instr)
        if kind is ir.NewArray:
            return self._action_new_array(contour_id, instr)
        if kind is ir.GetField:
            return self._action_get_field(contour_id, instr)
        if kind is ir.SetField:
            return self._action_set_field(contour_id, instr)
        if kind is ir.GetIndex:
            return self._action_get_index(contour_id, instr)
        if kind is ir.SetIndex:
            return self._action_set_index(contour_id, instr)
        if kind is ir.ArrayLen:
            return self._action_array_len(contour_id, instr)
        if kind is ir.CallMethod:
            return self._action_send(contour_id, instr)
        if kind is ir.CallStatic:
            return ("static", instr.class_name, instr.method_name)
        if kind is ir.CallFunction:
            return ("fn", instr.func_name)
        return None

    def _action_new(self, contour_id: int, instr: ir.New) -> tuple | None:
        ocid = self.result.allocations.get(contour_id, {}).get(instr.uid)
        if ocid is None:
            return None
        variant = self.variants.variant_name(ocid)
        stack = (contour_id, instr.uid) in self._stackable
        if variant == instr.class_name and not stack:
            return None
        return ("newc", variant, stack)

    def _action_new_array(self, contour_id: int, instr: ir.NewArray) -> tuple | None:
        ocid = self.result.allocations.get(contour_id, {}).get(instr.uid)
        if ocid is None:
            return None
        candidate = self.plan.candidates.get(("array", instr.uid))
        if candidate is None or not candidate.accepted:
            return None
        desc = candidate.child_desc_of.get(ocid)
        if desc is None or desc[0] != "class":
            return None
        view = self.variants.view_class(candidate, desc[1])
        # Layout policy: parallel (SoA) arrays win when traversals touch a
        # field across elements (narrow records like complex numbers);
        # interleaved (AoS) wins for whole-record access.  Pick SoA for
        # elements with at most two fields.
        parallel = len(self.program.layout(desc[1])) <= 2
        return ("newarr", view, parallel)

    def _action_get_field(self, contour_id: int, instr: ir.GetField) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        obj = fact.get("obj")
        if not isinstance(obj, AbstractVal) or not obj.may_be_object():
            return None
        rep = self._single_rep(obj)
        if rep is None:
            candidate = self._field_candidate_for(obj, instr.field_name)
            if candidate is not None:
                return ("elide",)
            return None
        candidate = self.plan.candidates[rep]
        if candidate.kind == "array":
            return None  # element view: field names are unchanged
        desc = self._unique_desc_for_children(candidate, obj)
        if desc is not None and desc[0] == "array":
            return None  # GetField on an embedded array value is a type error
        return ("gren", mangle(candidate.field_name, instr.field_name))

    def _unique_desc_for_children(
        self, candidate: Candidate, child_value: AbstractVal
    ) -> tuple | None:
        """Descriptor of the slot(s) these children were stored into."""
        descs: set[tuple] = set()
        children = child_value.object_contours()
        for slot in candidate.slots:
            if self.result.slot_value(slot).object_contours() & children:
                desc = candidate.child_desc_of.get(slot[0])
                if desc is not None:
                    descs.add(desc)
        if len(descs) == 1:
            return descs.pop()
        return None

    def _action_set_field(self, contour_id: int, instr: ir.SetField) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        obj = fact.get("obj")
        if not isinstance(obj, AbstractVal) or not obj.may_be_object():
            return None
        rep = self._single_rep(obj)
        if rep is None:
            candidate = self._field_candidate_for(obj, instr.field_name)
            if candidate is None:
                return None
            desc = self._unique_desc(candidate, obj)
            if desc is None:
                return None
            return ("copyf", instr.field_name, self._expanded_desc(desc))
        candidate = self.plan.candidates[rep]
        if candidate.kind == "array":
            return None
        return ("sren", mangle(candidate.field_name, instr.field_name))

    def _action_get_index(self, contour_id: int, instr: ir.GetIndex) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        array = fact.get("array")
        if not isinstance(array, AbstractVal) or not array.may_be_object():
            return None
        rep = self._single_rep(array)
        if rep is None:
            candidate = self._array_candidate_for(array)
            if candidate is None:
                return None
            desc = self._unique_desc(candidate, array)
            if desc is None or desc[0] != "class":
                return None
            return ("view", self.variants.view_class(candidate, desc[1]))
        candidate = self.plan.candidates[rep]
        if candidate.kind != "field":
            return None
        desc = self._unique_desc_for_children(candidate, array)
        if desc is None or desc[0] != "array":
            return None
        base = mangle_indexed(candidate.field_name, 0)
        return ("gidx", base, desc[1])

    def _action_set_index(self, contour_id: int, instr: ir.SetIndex) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        array = fact.get("array")
        if not isinstance(array, AbstractVal) or not array.may_be_object():
            return None
        rep = self._single_rep(array)
        if rep is None:
            candidate = self._array_candidate_for(array)
            if candidate is None:
                return None
            desc = self._unique_desc(candidate, array)
            if desc is None or desc[0] != "class":
                return None
            view = self.variants.view_class(candidate, desc[1])
            return ("copye", view, desc[1], tuple(self.program.layout(desc[1])))
        candidate = self.plan.candidates[rep]
        if candidate.kind != "field":
            return None
        desc = self._unique_desc_for_children(candidate, array)
        if desc is None or desc[0] != "array":
            return None
        base = mangle_indexed(candidate.field_name, 0)
        return ("sidx", base, desc[1])

    def _action_array_len(self, contour_id: int, instr: ir.ArrayLen) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        array = fact.get("array")
        if not isinstance(array, AbstractVal) or not array.may_be_object():
            return None
        rep = self._single_rep(array)
        if rep is None:
            return None
        candidate = self.plan.candidates[rep]
        if candidate.kind != "field":
            return None
        desc = self._unique_desc_for_children(candidate, array)
        if desc is None or desc[0] != "array":
            return None
        return ("lenk", desc[1])

    def _action_send(self, contour_id: int, instr: ir.CallMethod) -> tuple | None:
        fact = self._fact(contour_id, instr.uid)
        recv = fact.get("recv")
        if not isinstance(recv, AbstractVal) or not recv.may_be_object():
            return None
        rep = self._single_rep(recv)
        if rep is not None:
            candidate = self.plan.candidates[rep]
            if candidate.kind == "array":
                desc = self._unique_desc_for_children(candidate, recv)
                if desc is None or desc[0] != "class":
                    self.conflicts.add(candidate.key)
                    return None
                view = self.variants.view_class(candidate, desc[1])
                return ("sendv", instr.method_name, view)
            variants = self._container_variants(candidate, recv)
            if not variants:
                self.conflicts.add(candidate.key)
                return None
            return ("sendi", candidate.key, instr.method_name, variants)

        if not self.devirtualize:
            return None
        if recv.prims():
            return None  # may be nil at runtime: keep the dynamic error path
        targets: set[tuple[str, str]] = set()
        for cid in recv.object_contours():
            contour = self.result.object_contour(cid)
            if contour.is_array:
                return None
            resolved = self.program.resolve_method(contour.class_name, instr.method_name)
            if resolved is None:
                return None  # would raise at runtime: keep dynamic
            defining, _method = resolved
            targets.add((defining, self.variants.variant_name(cid)))
        if not targets:
            return None
        return ("sendr", instr.method_name, tuple(sorted(targets)))
