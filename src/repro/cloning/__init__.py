"""Class/method cloning and the program rewriting that installs object
inlining (§3.2.2 and §5 of the paper)."""

from .emit import CloneStats, TransformOutcome, Transformer, transform_program
from .variants import VariantMap, mangle, mangle_indexed
from .vectors import VectorBuilder, VectorResult

__all__ = [
    "CloneStats",
    "mangle",
    "mangle_indexed",
    "transform_program",
    "TransformOutcome",
    "Transformer",
    "VariantMap",
    "VectorBuilder",
    "VectorResult",
]
