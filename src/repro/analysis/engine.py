"""Context-sensitive interprocedural flow analysis.

This is the reproduction of the Concert analysis framework the paper
builds on (§3.2.1) together with the tag analysis of §4.1:

- concrete type inference over method/object contours,
- field state per object contour ("slots"),
- demand-driven contour creation through :class:`ContourManager`,
- field-origin *tags* with the paper's three transfer functions
  (object creation → ``NoField``; instance-variable access →
  ``MakeTag``; everything else → gated propagation).

The analysis is flow-insensitive inside a contour (registers accumulate
joins) and runs a global worklist to a fixpoint.

The engine is **incremental and dependency-tracked** (see
docs/ANALYSIS.md).  Every lattice cell a contour evaluation reads — a
field slot, a global, a callee contour's return value, the contour's own
argument tuple — is stamped with a monotonically increasing *version*
when it grows, and every evaluation records exactly which cells it read.
That dependency graph drives three optimizations:

- a worklist pop whose dependency versions are all unchanged since the
  contour's last evaluation is skipped outright (skipping is exact: an
  unchanged-input evaluation is deterministic and replays precisely the
  effects of the previous one);
- within an evaluation, local passes after the first only re-run
  instructions with an input register that changed in the previous pass
  (an unchanged-input transfer is a no-op at joined state);
- the final *recording* pass, which snapshots per-instruction facts
  (operand values, resolved call edges, allocated contours, store and
  identity-comparison sites) into an
  :class:`~repro.analysis.results.AnalysisResult`, replays a single
  sweep over the cached fixpoint registers instead of re-running every
  contour's local passes from scratch, and skips contours whose facts
  were already recorded at their current version.

``AnalysisConfig(incremental=False)`` disables all three and evaluates
every pop cold — the from-scratch reference used by the differential
tests, which must produce bit-identical results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..ir import model as ir
from ..obs.tracer import NULL_TRACER
from .contours import (
    ARRAY_CLASS,
    AnalysisConfig,
    ContourManager,
    MethodContour,
)
from .results import AnalysisResult, IdentitySite, StoreSite
from .tags import ELEM_FIELD, NOFIELD, Slot, TOP_SLOT, Tag, make_tag
from .values import (
    AbstractVal,
    BOTTOM,
    PRIM_BOOL,
    PRIM_FLOAT,
    PRIM_INT,
    PRIM_NIL,
    PRIM_STR,
    const_atom,
    join,
    make_val,
    prim_val,
)


class AnalysisBudgetExceeded(Exception):
    """The worklist step cap was exceeded (program too adversarial)."""


_NUMERIC = frozenset({PRIM_INT, PRIM_FLOAT})

#: Builtin result kinds.
_BUILTIN_RESULTS: dict[str, frozenset] = {
    "print": frozenset({PRIM_NIL}),
    "assert_true": frozenset({PRIM_NIL}),
    "sqrt": frozenset({PRIM_FLOAT}),
    "floor": frozenset({PRIM_INT}),
    "ceil": frozenset({PRIM_INT}),
    "int": frozenset({PRIM_INT}),
    "float": frozenset({PRIM_FLOAT}),
    "pow": _NUMERIC,
    "abs": _NUMERIC,
    "min": _NUMERIC,
    "max": _NUMERIC,
}


@dataclass(slots=True)
class _EvalState:
    """Per-evaluation mutable state for one contour."""

    regs: list[AbstractVal]
    changed: bool = False
    record: bool = False
    #: Registers written this pass; feeds the dirty-instruction selection
    #: of the next local pass (incremental mode only).
    changed_regs: set = field(default_factory=set)


class FlowAnalysis:
    """Runs the whole-program analysis over an :class:`IRProgram`."""

    def __init__(
        self,
        program: ir.IRProgram,
        config: AnalysisConfig | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.program = program
        self.config = config or AnalysisConfig()
        self.tracer = tracer
        self.manager = ContourManager(self.config)
        #: (object contour id, field name) -> abstract content.
        self.slots: dict[Slot, AbstractVal] = {}
        self._slot_readers: dict[Slot, set[int]] = {}
        self.global_values: dict[str, AbstractVal] = {
            name: prim_val(PRIM_NIL) for name in program.global_names
        }
        self._global_readers: dict[str, set[int]] = {}
        #: per contour: call-site uid -> set of callee contour ids.
        self.call_edges: dict[int, dict[int, set[int]]] = {}
        #: per contour: allocation-site uid -> object contour id.
        self.allocations: dict[int, dict[int, int]] = {}
        self._worklist: deque[int] = deque()
        self._in_worklist: set[int] = set()
        self._steps = 0
        self._last_gc_step = -10_000
        self.manager.gc_hook = self._gc_stale_contours
        self.manager.widen_hook = self._on_widened
        # Version stamps: one global monotone clock; every lattice cell
        # (slot / global / contour ret / contour args) records the clock
        # value of its last growth.
        self._version = 0
        self._slot_version: dict[Slot, int] = {}
        self._global_version: dict[str, int] = {}
        # Per-contour dependency sets, rebuilt on every evaluation; the
        # reverse maps (_slot_readers / _global_readers / contour.callers)
        # stay append-only supersets, which is sound (at worst a spurious
        # enqueue that the staleness check then skips).
        self._dep_slots: dict[int, set[Slot]] = {}
        self._dep_globals: dict[int, set[str]] = {}
        self._dep_callees: dict[int, set[int]] = {}
        #: contour id -> clock value at the end of its last clean evaluation.
        self._eval_version: dict[int, int] = {}
        #: Contours that must re-evaluate regardless of cell versions:
        #: widening rebinds their call/allocation sites to a summary
        #: contour, a change no versioned cell captures.
        self._force_stale: set[int] = set()
        #: contour id -> converged registers of the last evaluation.
        self._cached_regs: dict[int, list[AbstractVal]] = {}
        #: contour id -> _eval_version at which its facts were recorded.
        self._recorded_version: dict[int, int] = {}
        #: callable name -> [(instr, source regs)] with CFG-only
        #: instructions (Jump/Branch — no dataflow effect) filtered out.
        self._instr_cache: dict[str, list[tuple[ir.Instr, tuple[int, ...]]]] = {}
        #: Contour currently being evaluated; a write that would enqueue
        #: it is folded into the running local pass loop instead.
        self._current_cid: int | None = None
        self._self_requeued = False
        #: Contour whose reads (slots, gate head slots) are being tracked.
        self._reader: int | None = None
        self._evals = 0
        self._eval_skips = 0
        self._record_skips = 0
        # Recording-pass outputs, keyed per contour so a re-record
        # replaces (never duplicates) that contour's entries.
        self._facts: dict[tuple[int, int], dict[str, object]] = {}
        self._stores: dict[int, list[StoreSite]] = {}
        self._identity_sites: dict[int, list[IdentitySite]] = {}

    # ------------------------------------------------------------------
    # Public API.

    def run(self) -> AnalysisResult:
        """Analyze from ``@global_init`` and ``main``; return the results."""
        for entry in (ir.IRProgram.GLOBAL_INIT, ir.IRProgram.ENTRY_FUNCTION):
            fn = self.program.functions.get(entry)
            if fn is None:
                continue
            contour, _ = self.manager.get_method_contour(entry, [], is_method=False)
            self._enqueue(contour.id)

        incremental = self.config.incremental
        with self.tracer.span("analysis.fixpoint"):
            while self._worklist:
                self._steps += 1
                if self._steps > self.config.max_worklist_steps:
                    raise AnalysisBudgetExceeded(
                        f"analysis exceeded {self.config.max_worklist_steps} steps"
                    )
                contour_id = self._worklist.popleft()
                self._in_worklist.discard(contour_id)
                contour = self.manager.method_contours.get(contour_id)
                if contour is None:
                    continue  # retired by GC while queued
                if incremental and not self._contour_stale(contour):
                    self._eval_skips += 1
                    continue
                self._evaluate(contour)

        # Drop contours left stale by signature growth (a call site whose
        # argument signature grew re-binds to a fresh contour; the old one
        # keeps stale, narrower facts).  Reachability over the final call
        # edges from the entry contours identifies the live set.
        self._prune_unreachable_contours()

        # Fixpoint reached: snapshot per-instruction facts.
        with self.tracer.span("analysis.record"):
            for contour in list(self.manager.method_contours.values()):
                self._record_contour(contour)

        tracer = self.tracer
        tracer.count("analysis.worklist_steps", self._steps)
        tracer.count("analysis.evals", self._evals)
        tracer.count("analysis.eval_skips", self._eval_skips)
        tracer.count("analysis.record_skips", self._record_skips)
        tracer.count("analysis.method_contours_created", self.manager.created_method_contours)
        tracer.count("analysis.object_contours_created", self.manager.created_object_contours)
        tracer.count("analysis.method_contours_live", self.manager.method_contour_count())
        tracer.count("analysis.object_contours_live", self.manager.object_contour_count())
        tracer.count("analysis.widened_callables", len(self.manager.widened_callables))
        tracer.count("analysis.widened_sites", len(self.manager.widened_sites))
        tracer.count(
            "analysis.flow_edges",
            sum(len(callees) for sites in self.call_edges.values() for callees in sites.values()),
        )
        tracer.count("analysis.slots", len(self.slots))
        live = self.manager.method_contours
        stores = [s for cid in live for s in self._stores.get(cid, ())]
        identity_sites = [s for cid in live for s in self._identity_sites.get(cid, ())]
        tracer.count("analysis.store_sites", len(stores))
        tracer.count("analysis.identity_sites", len(identity_sites))

        return AnalysisResult(
            program=self.program,
            config=self.config,
            manager=self.manager,
            slots=dict(self.slots),
            global_values=dict(self.global_values),
            call_edges={k: {u: set(v) for u, v in d.items()} for k, d in self.call_edges.items()},
            allocations={k: dict(v) for k, v in self.allocations.items()},
            facts=self._facts,
            stores=stores,
            identity_sites=identity_sites,
        )

    def _gc_stale_contours(self) -> None:
        """Mid-analysis GC: retire contours no live call edge reaches.

        Signature growth at a call site re-binds the site to a fresh
        contour, stranding the old one; without GC the strays count
        against the widening caps and force spurious widening.  Throttled
        so cap pressure in a hot loop doesn't re-run GC every step.
        """
        if self._steps - self._last_gc_step < 500:
            return
        self._last_gc_step = self._steps
        reachable = self._reachable_contours()
        for contour in self.manager.method_contours.values():
            contour.retired = contour.id not in reachable

    def _on_widened(self, summary: object, callers: set) -> None:
        """Widening created a summary contour absorbing existing state.

        The absorbed argument/return knowledge grew without flowing
        through the normal transfer functions, and future contour lookups
        now rebind to the summary — a change no versioned cell captures.
        Stamp the summary and force-re-evaluate everything that bound the
        pre-widening contours; otherwise a dependent could be skipped as
        "clean" while still holding the narrower pre-summary bindings.
        """
        version = self._bump()
        if isinstance(summary, MethodContour):
            summary.args_version = version
            summary.ret_version = version
            dependents = {caller_id for caller_id, _site in callers}
        else:
            # Object-contour widening: the creator contours must rebind
            # their allocation results to the summary contour.
            dependents = set(callers)
        for contour_id in dependents:
            self._force_stale.add(contour_id)
            self._enqueue(contour_id)

    def _reachable_contours(self) -> set[int]:
        roots = [
            contour.id
            for contour in self.manager.method_contours.values()
            if contour.callable_name in (ir.IRProgram.GLOBAL_INIT, ir.IRProgram.ENTRY_FUNCTION)
            and not contour.arg_values
        ]
        reachable: set[int] = set()
        stack = list(roots)
        while stack:
            contour_id = stack.pop()
            if contour_id in reachable:
                continue
            reachable.add(contour_id)
            for callees in self.call_edges.get(contour_id, {}).values():
                stack.extend(callees)
        return reachable

    def _prune_unreachable_contours(self) -> None:
        reachable = self._reachable_contours()
        dead = set(self.manager.method_contours) - reachable
        for contour_id in dead:
            self.manager.remove_method_contour(contour_id)
            self.call_edges.pop(contour_id, None)
            self.allocations.pop(contour_id, None)
            self._cached_regs.pop(contour_id, None)
            self._eval_version.pop(contour_id, None)
            self._force_stale.discard(contour_id)
            self._dep_slots.pop(contour_id, None)
            self._dep_globals.pop(contour_id, None)
            self._dep_callees.pop(contour_id, None)
        # Scrub dead callers so downstream caller walks see live edges only.
        for contour in self.manager.method_contours.values():
            contour.callers = {
                (caller, site) for caller, site in contour.callers if caller in reachable
            }

    # ------------------------------------------------------------------
    # Worklist and dependency plumbing.

    def _bump(self) -> int:
        self._version += 1
        return self._version

    def _enqueue(self, contour_id: int) -> None:
        if contour_id == self._current_cid:
            # The running evaluation wrote a cell it reads itself; the
            # local pass loop rescans instead of a redundant global pop.
            self._self_requeued = True
            return
        if contour_id not in self._in_worklist:
            self._in_worklist.add(contour_id)
            self._worklist.append(contour_id)

    def _contour_stale(self, contour: MethodContour) -> bool:
        """Whether any cell this contour read has grown since its last
        evaluation (always true if it was never evaluated)."""
        if contour.id in self._force_stale:
            return True
        at = self._eval_version.get(contour.id)
        if at is None or contour.args_version > at:
            return True
        slot_version = self._slot_version
        for slot in self._dep_slots.get(contour.id, ()):
            if slot_version.get(slot, 0) > at:
                return True
        global_version = self._global_version
        for name in self._dep_globals.get(contour.id, ()):
            if global_version.get(name, 0) > at:
                return True
        contours = self.manager.method_contours
        for callee_id in self._dep_callees.get(contour.id, ()):
            callee = contours.get(callee_id)
            if callee is None or callee.ret_version > at:
                return True
        return False

    def _gate(self, value: AbstractVal) -> AbstractVal:
        """Drop tags whose head slot's contents cannot be this value.

        This is the paper's ``Creators(Head(t)) ∩ Creators(u) ≠ ∅`` guard on
        tag propagation; it stops tags bleeding across dynamic dispatches.
        Reading a head slot is a real dependency: if its contents grow, a
        previously dropped tag may survive, so the reading contour must
        re-evaluate.
        """
        if not value.tags:
            return value
        kept: set[Tag] = set()
        reader = self._reader
        for tag in value.tags:
            if not tag or tag[0] == TOP_SLOT:
                kept.add(tag)
                continue
            head_slot = tag[0]
            if reader is not None:
                self._slot_readers.setdefault(head_slot, set()).add(reader)
                self._dep_slots.setdefault(reader, set()).add(head_slot)
            contents = self.slots.get(head_slot, BOTTOM)
            if contents.atoms & value.atoms:
                kept.add(tag)
        if len(kept) == len(value.tags):
            return value
        return make_val(value.atoms, kept)

    def _read_slot(self, slot: Slot, reader: int) -> AbstractVal:
        self._slot_readers.setdefault(slot, set()).add(reader)
        self._dep_slots.setdefault(reader, set()).add(slot)
        return self.slots.get(slot, BOTTOM)

    def _write_slot(self, slot: Slot, value: AbstractVal) -> None:
        value = self._gate(value)
        old = self.slots.get(slot, BOTTOM)
        merged = join(old, value)
        if merged != old:
            self.slots[slot] = merged
            self._slot_version[slot] = self._bump()
            for reader in self._slot_readers.get(slot, ()):
                self._enqueue(reader)

    # ------------------------------------------------------------------
    # Contour evaluation.

    def _instr_info(self, callable_: ir.IRCallable) -> list[tuple[ir.Instr, tuple[int, ...]]]:
        info = self._instr_cache.get(callable_.name)
        if info is None:
            info = [
                (instr, instr.sources())
                for instr in callable_.instructions()
                if not isinstance(instr, (ir.Jump, ir.Branch))
            ]
            self._instr_cache[callable_.name] = info
        return info

    def _evaluate(self, contour: MethodContour) -> None:
        """Run ``contour``'s transfer functions to a local fixpoint."""
        callable_ = self.program.lookup_callable(contour.callable_name)
        if callable_ is None:
            return
        cid = contour.id
        self._evals += 1
        self._force_stale.discard(cid)
        incremental = self.config.incremental

        # Always evaluate cold from the contour's argument values.  (A warm
        # start from the previous registers would converge to the same local
        # fixpoint, but it would skip the transient call bindings that cold
        # pass-1 sweeps make while intermediate registers are still BOTTOM —
        # and those bindings are observable in ``call_edges``, so warm and
        # cold runs would no longer be bit-identical.)
        regs = [BOTTOM] * callable_.num_regs
        for index, value in enumerate(contour.arg_values):
            if index < len(regs):
                regs[index] = value
        state = _EvalState(regs=regs)

        # Rebuild the forward dependency sets and call edges from scratch.
        self._dep_slots[cid] = set()
        self._dep_globals[cid] = set()
        self._dep_callees[cid] = set()
        self.call_edges[cid] = {}
        self.allocations.setdefault(cid, {})

        info = self._instr_info(callable_)
        self._current_cid = cid
        self._reader = cid
        self._self_requeued = False
        converged = False
        dirty: set[int] | None = None  # None = run every instruction
        try:
            for _ in range(self.config.max_local_passes):
                state.changed = False
                state.changed_regs = set()
                self._self_requeued = False
                if dirty is None:
                    for instr, _sources in info:
                        self._transfer(contour, instr, state)
                else:
                    for instr, sources in info:
                        for reg in sources:
                            if reg in dirty:
                                self._transfer(contour, instr, state)
                                break
                if self._self_requeued:
                    # A write this pass fed a cell the contour itself
                    # reads (own field slot, self-recursive return, own
                    # global): rescan everything with re-joined args.
                    for index, value in enumerate(contour.arg_values):
                        if index < len(state.regs):
                            state.regs[index] = join(state.regs[index], value)
                    dirty = None
                    continue
                if not state.changed:
                    converged = True
                    break
                dirty = state.changed_regs if incremental else None
        finally:
            self._current_cid = None
            self._self_requeued = False
            self._reader = None

        self._cached_regs[cid] = regs
        if converged:
            self._eval_version[cid] = self._version
        else:
            # Local pass cap hit with work pending: stay stale + queued.
            self._eval_version.pop(cid, None)
            self._enqueue(cid)

    def _record_contour(self, contour: MethodContour) -> None:
        """Snapshot per-instruction facts for one contour at the fixpoint."""
        callable_ = self.program.lookup_callable(contour.callable_name)
        if callable_ is None:
            return
        cid = contour.id
        info = self._instr_info(callable_)

        if self.config.incremental:
            cached = self._cached_regs.get(cid)
            if cached is None or len(cached) != callable_.num_regs:
                self._evaluate(contour)  # revived without a clean eval
                cached = self._cached_regs.get(cid, [])
            at = self._eval_version.get(cid)
            if at is not None and self._recorded_version.get(cid) == at:
                self._record_skips += 1
                return
            regs = list(cached)
            if len(regs) < callable_.num_regs:
                regs.extend([BOTTOM] * (callable_.num_regs - len(regs)))
            state = _EvalState(regs=regs, record=True)
        else:
            # From-scratch reference: re-derive the registers with full
            # local passes, then sweep once more to snapshot facts.
            regs = [BOTTOM] * callable_.num_regs
            for index, value in enumerate(contour.arg_values):
                if index < len(regs):
                    regs[index] = value
            state = _EvalState(regs=regs)
            self.call_edges[cid] = {}
            self.allocations.setdefault(cid, {})
            for _ in range(self.config.max_local_passes):
                state.changed = False
                for instr, _sources in info:
                    self._transfer(contour, instr, state)
                if not state.changed:
                    break
            state.record = True

        # Replace (never append to) this contour's recorded outputs.
        self._stores[cid] = []
        self._identity_sites[cid] = []
        self._reader = cid
        try:
            for instr, _sources in info:
                self._transfer(contour, instr, state)
        finally:
            self._reader = None
        at = self._eval_version.get(cid)
        if at is not None:
            self._recorded_version[cid] = at

    def _set_reg(self, state: _EvalState, reg: int, value: AbstractVal) -> None:
        merged = join(state.regs[reg], value)
        if merged != state.regs[reg]:
            state.regs[reg] = merged
            state.changed = True
            state.changed_regs.add(reg)

    def _record(self, contour: MethodContour, instr: ir.Instr, **facts: object) -> None:
        self._facts[(contour.id, instr.uid)] = facts

    # ------------------------------------------------------------------
    # Transfer functions.

    def _transfer(self, contour: MethodContour, instr: ir.Instr, state: _EvalState) -> None:
        regs = state.regs
        kind = type(instr)

        if kind is ir.Const:
            self._set_reg(state, instr.dest, prim_val(const_atom(instr.value)))
        elif kind is ir.Move:
            self._set_reg(state, instr.dest, regs[instr.src])
        elif kind is ir.UnOp:
            self._transfer_unop(instr, state)
        elif kind is ir.BinOp:
            self._transfer_binop(contour, instr, state)
        elif kind is ir.New:
            self._transfer_new(contour, instr, state)
        elif kind is ir.NewArray:
            self._transfer_new_array(contour, instr, state)
        elif kind is ir.GetField:
            self._transfer_get_field(contour, instr, state)
        elif kind is ir.SetField:
            self._transfer_set_field(contour, instr, state)
        elif kind is ir.GetIndex:
            self._transfer_get_index(contour, instr, state)
        elif kind is ir.SetIndex:
            self._transfer_set_index(contour, instr, state)
        elif kind is ir.ArrayLen:
            self._set_reg(state, instr.dest, prim_val(PRIM_INT))
            if state.record:
                self._record(contour, instr, array=regs[instr.array])
        elif kind is ir.CallMethod:
            self._transfer_send(contour, instr, state)
        elif kind is ir.CallStatic:
            self._transfer_call_static(contour, instr, state)
        elif kind is ir.CallFunction:
            self._transfer_call_function(contour, instr, state)
        elif kind is ir.CallBuiltin:
            result_kinds = _BUILTIN_RESULTS.get(instr.builtin_name, _NUMERIC)
            self._set_reg(state, instr.dest, AbstractVal(result_kinds, frozenset()))
        elif kind is ir.GetGlobal:
            self._global_readers.setdefault(instr.name, set()).add(contour.id)
            self._dep_globals.setdefault(contour.id, set()).add(instr.name)
            self._set_reg(state, instr.dest, self.global_values[instr.name])
        elif kind is ir.SetGlobal:
            value = self._gate(regs[instr.src])
            old = self.global_values[instr.name]
            merged = join(old, value)
            if merged != old:
                self.global_values[instr.name] = merged
                self._global_version[instr.name] = self._bump()
                for reader in self._global_readers.get(instr.name, ()):
                    self._enqueue(reader)
            if state.record:
                self._record(contour, instr, value=regs[instr.src])
        elif kind is ir.Return:
            if instr.src is not None:
                value = regs[instr.src]
            else:
                value = prim_val(PRIM_NIL)
            merged = join(contour.ret, value)
            if merged != contour.ret:
                contour.ret = merged
                contour.ret_version = self._bump()
                for caller_id, _site in contour.callers:
                    self._enqueue(caller_id)
        elif kind is ir.MakeView:
            # Views only exist post-transformation; the analysis never sees
            # them (analysis runs before rewriting), but stay total anyway.
            self._set_reg(state, instr.dest, regs[instr.array])
        # Jump / Branch: no dataflow effect in a flow-insensitive analysis.

    def _transfer_unop(self, instr: ir.UnOp, state: _EvalState) -> None:
        if instr.op == "!":
            self._set_reg(state, instr.dest, prim_val(PRIM_BOOL))
        else:  # unary minus
            kinds = state.regs[instr.src].prims() & _NUMERIC or _NUMERIC
            self._set_reg(state, instr.dest, AbstractVal(frozenset(kinds), frozenset()))

    def _transfer_binop(
        self, contour: MethodContour, instr: ir.BinOp, state: _EvalState
    ) -> None:
        lhs = state.regs[instr.lhs]
        rhs = state.regs[instr.rhs]
        op = instr.op
        if op in ("==", "!="):
            if state.record and (lhs.may_be_object() or rhs.may_be_object()):
                self._identity_sites[contour.id].append(
                    IdentitySite(
                        contour_id=contour.id,
                        instr_uid=instr.uid,
                        callable_name=contour.callable_name,
                        lhs=lhs,
                        rhs=rhs,
                    )
                )
            self._set_reg(state, instr.dest, prim_val(PRIM_BOOL))
            return
        if op in ("<", "<=", ">", ">="):
            self._set_reg(state, instr.dest, prim_val(PRIM_BOOL))
            return
        # Arithmetic.
        kinds: set[str] = set()
        if op == "+" and PRIM_STR in lhs.atoms and PRIM_STR in rhs.atoms:
            kinds.add(PRIM_STR)
        lhs_num = lhs.prims() & _NUMERIC
        rhs_num = rhs.prims() & _NUMERIC
        if lhs_num or rhs_num or not kinds:
            if PRIM_FLOAT in lhs_num or PRIM_FLOAT in rhs_num:
                kinds.add(PRIM_FLOAT)
            if (PRIM_INT in lhs_num or not lhs_num) and (PRIM_INT in rhs_num or not rhs_num):
                kinds.add(PRIM_INT)
            if not kinds:
                kinds |= _NUMERIC
        self._set_reg(state, instr.dest, AbstractVal(frozenset(kinds), frozenset()))

    # -- allocation ----------------------------------------------------

    def _transfer_new(self, contour: MethodContour, instr: ir.New, state: _EvalState) -> None:
        if instr.class_name not in self.program.classes:
            return
        obj_contour, _created = self.manager.get_object_contour(
            instr.class_name, instr.uid, contour.id, is_array=False
        )
        self.allocations.setdefault(contour.id, {})[instr.uid] = obj_contour.id
        result = make_val({obj_contour.id}, {NOFIELD})
        self._set_reg(state, instr.dest, result)

        # Transformed allocations bind their constructor explicitly via a
        # following CallStatic; no implicit init flows for them.
        resolved = None if instr.skip_init else self.program.resolve_method(
            instr.class_name, "init"
        )
        if resolved is not None:
            defining, init = resolved
            args = [result] + [state.regs[a] for a in instr.args]
            if len(args) == init.num_formals:
                self._flow_call(contour, instr.uid, f"{defining}::{init.method_name}", args, state)
        if state.record:
            self._record(contour, instr, contour_id=obj_contour.id)

    def _transfer_new_array(
        self, contour: MethodContour, instr: ir.NewArray, state: _EvalState
    ) -> None:
        obj_contour, _created = self.manager.get_object_contour(
            ARRAY_CLASS, instr.uid, contour.id, is_array=True
        )
        self.allocations.setdefault(contour.id, {})[instr.uid] = obj_contour.id
        self._set_reg(state, instr.dest, make_val({obj_contour.id}, {NOFIELD}))
        if state.record:
            self._record(contour, instr, contour_id=obj_contour.id)

    # -- field and element access ---------------------------------------

    def _transfer_get_field(
        self, contour: MethodContour, instr: ir.GetField, state: _EvalState
    ) -> None:
        obj = state.regs[instr.obj]
        atoms: set = set()
        tags: set[Tag] = set()
        for cid in obj.object_contours():
            obj_contour = self.manager.object_contours[cid]
            if obj_contour.is_array:
                continue
            if instr.field_name not in self.program.layout(obj_contour.class_name):
                continue
            slot = (cid, instr.field_name)
            content = self._read_slot(slot, contour.id)
            atoms |= content.atoms
            # §4.1 instance-variable-access transfer: the result is tagged
            # with MakeTag(f, t) for every tag t of the accessed object.
            for tag in obj.tags or {NOFIELD}:
                tags.add(make_tag(slot, tag))
        self._set_reg(state, instr.dest, self._gate(make_val(atoms, tags)))
        if state.record:
            self._record(contour, instr, obj=obj, result=state.regs[instr.dest])

    def _transfer_set_field(
        self, contour: MethodContour, instr: ir.SetField, state: _EvalState
    ) -> None:
        obj = state.regs[instr.obj]
        src = state.regs[instr.src]
        for cid in obj.object_contours():
            obj_contour = self.manager.object_contours[cid]
            if obj_contour.is_array:
                continue
            if instr.field_name not in self.program.layout(obj_contour.class_name):
                continue
            self._write_slot((cid, instr.field_name), src)
            if state.record:
                self._stores[contour.id].append(
                    StoreSite(
                        contour_id=contour.id,
                        instr_uid=instr.uid,
                        callable_name=contour.callable_name,
                        container_contour=cid,
                        field_name=instr.field_name,
                        value=src,
                        src_reg=instr.src,
                        obj_reg=instr.obj,
                        is_index=False,
                    )
                )
        if state.record:
            self._record(contour, instr, obj=obj, value=src)

    def _transfer_get_index(
        self, contour: MethodContour, instr: ir.GetIndex, state: _EvalState
    ) -> None:
        array = state.regs[instr.array]
        atoms: set = set()
        tags: set[Tag] = set()
        for cid in array.object_contours():
            obj_contour = self.manager.object_contours[cid]
            if not obj_contour.is_array:
                continue
            slot = (cid, ELEM_FIELD)
            content = self._read_slot(slot, contour.id)
            atoms |= content.atoms
            for tag in array.tags or {NOFIELD}:
                tags.add(make_tag(slot, tag))
        self._set_reg(state, instr.dest, self._gate(make_val(atoms, tags)))
        if state.record:
            self._record(contour, instr, array=array, result=state.regs[instr.dest])

    def _transfer_set_index(
        self, contour: MethodContour, instr: ir.SetIndex, state: _EvalState
    ) -> None:
        array = state.regs[instr.array]
        src = state.regs[instr.src]
        for cid in array.object_contours():
            obj_contour = self.manager.object_contours[cid]
            if not obj_contour.is_array:
                continue
            self._write_slot((cid, ELEM_FIELD), src)
            if state.record:
                self._stores[contour.id].append(
                    StoreSite(
                        contour_id=contour.id,
                        instr_uid=instr.uid,
                        callable_name=contour.callable_name,
                        container_contour=cid,
                        field_name=ELEM_FIELD,
                        value=src,
                        src_reg=instr.src,
                        obj_reg=instr.array,
                        is_index=True,
                    )
                )
        if state.record:
            self._record(contour, instr, array=array, value=src)

    # -- calls -----------------------------------------------------------

    def _flow_call(
        self,
        contour: MethodContour,
        site_uid: int,
        callee_name: str,
        args: list[AbstractVal],
        state: _EvalState,
    ) -> AbstractVal:
        """Bind ``args`` to the callee contour for this signature; returns
        the callee's current return value."""
        callee = self.program.lookup_callable(callee_name)
        if callee is None or len(args) != callee.num_formals:
            return BOTTOM
        gated = [self._gate(value) for value in args]
        callee_contour, created = self.manager.get_method_contour(
            callee_name, gated, callee.is_method
        )
        grew = callee_contour.join_args(gated)
        if grew:
            callee_contour.args_version = self._bump()
        if created or grew:
            self._enqueue(callee_contour.id)
        callee_contour.callers.add((contour.id, site_uid))
        self._dep_callees.setdefault(contour.id, set()).add(callee_contour.id)
        self.call_edges.setdefault(contour.id, {}).setdefault(site_uid, set()).add(
            callee_contour.id
        )
        return callee_contour.ret

    def _transfer_send(
        self, contour: MethodContour, instr: ir.CallMethod, state: _EvalState
    ) -> None:
        recv = state.regs[instr.recv]
        args = [state.regs[a] for a in instr.args]
        result = BOTTOM
        # Group receiver contours by concrete class: one callee contour per
        # dispatch target.
        by_class: dict[str, set[int]] = {}
        for cid in recv.object_contours():
            obj_contour = self.manager.object_contours[cid]
            if obj_contour.is_array:
                continue
            by_class.setdefault(obj_contour.class_name, set()).add(cid)
        for class_name, cids in sorted(by_class.items()):
            resolved = self.program.resolve_method(class_name, instr.method_name)
            if resolved is None:
                continue
            defining, method = resolved
            narrowed = self._gate(make_val(cids, recv.tags))
            ret = self._flow_call(
                contour,
                instr.uid,
                f"{defining}::{method.method_name}",
                [narrowed, *args],
                state,
            )
            result = join(result, ret)
        self._set_reg(state, instr.dest, result)
        if state.record:
            self._record(contour, instr, recv=recv, args=tuple(args))

    def _transfer_call_static(
        self, contour: MethodContour, instr: ir.CallStatic, state: _EvalState
    ) -> None:
        resolved = self.program.resolve_method(instr.class_name, instr.method_name)
        if resolved is None:
            return
        defining, method = resolved
        recv = state.regs[instr.recv]
        args = [recv] + [state.regs[a] for a in instr.args]
        ret = self._flow_call(
            contour, instr.uid, f"{defining}::{method.method_name}", args, state
        )
        self._set_reg(state, instr.dest, ret)
        if state.record:
            self._record(contour, instr, recv=recv, args=tuple(args[1:]))

    def _transfer_call_function(
        self, contour: MethodContour, instr: ir.CallFunction, state: _EvalState
    ) -> None:
        args = [state.regs[a] for a in instr.args]
        ret = self._flow_call(contour, instr.uid, instr.func_name, args, state)
        self._set_reg(state, instr.dest, ret)
        if state.record:
            self._record(contour, instr, args=tuple(args))


def analyze(
    program: ir.IRProgram,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
) -> AnalysisResult:
    """Run the flow analysis on ``program`` and return its results.

    ``tracer`` (a :class:`repro.obs.Tracer`) records fixpoint/recording
    spans and contour/worklist counters; the default no-op tracer makes
    instrumentation free.
    """
    return FlowAnalysis(program, config, tracer).run()
