"""Method and object contours (§3.2.1 of the paper).

A *method contour* is the unit of context sensitivity: one abstract
execution environment of a callable, discriminated by properties of its
arguments.  An *object contour* abstracts the objects created by one
``new`` (or ``array``) site under one creating method contour — the
paper's *creator* sensitivity.

Contours are created on demand: a call site asks the
:class:`ContourManager` for the contour matching its argument signature
and gets a fresh one the first time.  Two sensitivity levels mirror the
paper's two configurations:

- ``concert`` (the baseline used for the "without inlining" runs of
  Figures 16/17): argument signatures use class names, the receiver uses
  object-contour ids (the paper's creator sensitivity for ``self``).
- ``inlining``: additionally discriminates every argument by object
  contour ids *and* by its field-origin tag set.  Keying on the exact tag
  tuple constructively guarantees the paper's call-confluence rule
  (``Tags(Arg(c1,i)) ⊆ Tags(Arg(c2,i))`` within a contour) and realizes
  the splits of Figures 8 and 9.

Explosion control: per-callable and per-site caps.  When a cap is hit the
manager widens to a single *summary* contour for that callable/site and
records the widening; the inlining decision later disqualifies any
candidate field whose analysis touched widened state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .values import AbstractVal, BOTTOM, join

SENSITIVITY_CONCERT = "concert"
SENSITIVITY_INLINING = "inlining"


@dataclass(frozen=True, slots=True)
class AnalysisConfig:
    """Knobs for the flow analysis."""

    sensitivity: str = SENSITIVITY_INLINING
    max_method_contours_per_callable: int = 64
    max_object_contours_per_site: int = 32
    max_local_passes: int = 30
    max_worklist_steps: int = 600_000
    #: Dependency-tracked evaluation: skip clean worklist pops, re-evaluate
    #: warm from cached registers, and record facts only for contours whose
    #: last recording is stale.  ``False`` selects the from-scratch
    #: reference mode the differential tests compare against.
    incremental: bool = True

    def with_sensitivity(self, sensitivity: str) -> "AnalysisConfig":
        return replace(self, sensitivity=sensitivity)


@dataclass(slots=True)
class MethodContour:
    """One analysis context of a callable."""

    id: int
    callable_name: str
    key: object  # signature the contour was created for ('SUMMARY' when widened)
    arg_values: list[AbstractVal]
    ret: AbstractVal = BOTTOM
    #: (caller contour id, call-site uid) pairs that read this contour's return.
    callers: set = field(default_factory=set)
    summary: bool = False
    #: Set by the engine's GC when no live call edge reaches the contour.
    #: Retired contours keep their identity (a later call with the same
    #: signature revives them — id stability keeps the fixpoint monotone)
    #: but do not count against the widening caps.
    retired: bool = False
    #: Version stamps (the engine's global clock) of the last growth of
    #: ``arg_values`` / ``ret``; the staleness check compares these against
    #: a dependent contour's last-evaluation stamp.
    args_version: int = 0
    ret_version: int = 0

    def join_args(self, args: list[AbstractVal]) -> bool:
        """Join ``args`` into the contour; True if anything grew."""
        grew = False
        for index, value in enumerate(args):
            merged = join(self.arg_values[index], value)
            if merged != self.arg_values[index]:
                self.arg_values[index] = merged
                grew = True
        return grew


@dataclass(slots=True)
class ObjectContour:
    """Objects created by one allocation site in one creator contour."""

    id: int
    class_name: str  # '@array' for arrays
    site_uid: int
    creator_id: int | None  # None for summary contours
    is_array: bool = False
    summary: bool = False

    @property
    def describes_arrays(self) -> bool:
        return self.is_array


ARRAY_CLASS = "@array"


class ContourManager:
    """Owns all contours; hands them out on demand with widening caps."""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config
        self.method_contours: dict[int, MethodContour] = {}
        self.object_contours: dict[int, ObjectContour] = {}
        self._next_id = 1
        self._method_by_key: dict[object, int] = {}
        self._object_by_key: dict[object, int] = {}
        self.contours_of_callable: dict[str, list[int]] = {}
        self.contours_of_site: dict[int, list[int]] = {}
        #: Callables widened to a summary contour.
        self.widened_callables: set[str] = set()
        #: Allocation-site uids widened to a summary object contour.
        self.widened_sites: set[int] = set()
        #: Lifetime creation counts (splits included), for observability;
        #: unlike ``method_contour_count()`` these never shrink under GC.
        self.created_method_contours = 0
        self.created_object_contours = 0
        #: Set by the analysis engine: collects stale (unreachable) method
        #: contours so they stop counting against the caps.  Called right
        #: before a cap would force widening.
        self.gc_hook = None
        #: Set by the analysis engine: called as ``widen_hook(summary,
        #: dependents)`` when widening folds existing contours into a fresh
        #: summary, so the engine can stamp the absorbed growth and
        #: re-enqueue the contours that saw the narrower pre-summary state.
        self.widen_hook = None

    def remove_method_contour(self, contour_id: int) -> None:
        """Drop a stale contour entirely (final post-fixpoint pruning only;
        mid-analysis GC uses ``retired`` so contour ids stay stable)."""
        contour = self.method_contours.pop(contour_id, None)
        if contour is None:
            return
        self._method_by_key.pop(contour.key, None)
        ids = self.contours_of_callable.get(contour.callable_name)
        if ids and contour_id in ids:
            ids.remove(contour_id)

    def _live_callable_count(self, callable_name: str) -> int:
        ids = self.contours_of_callable.get(callable_name, [])
        return sum(1 for i in ids if not self.method_contours[i].retired)

    def _live_site_count(self, site_uid: int) -> int:
        """Object contours of a site whose creator contour is still live.

        Contours created under since-retired method contours are garbage;
        they must not push a site into widening.
        """
        count = 0
        for contour_id in self.contours_of_site.get(site_uid, []):
            contour = self.object_contours[contour_id]
            if contour.creator_id is None:
                count += 1
                continue
            creator = self.method_contours.get(contour.creator_id)
            if creator is not None and not creator.retired:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Signatures.

    def _arg_signature(self, value: AbstractVal, is_receiver: bool) -> object:
        if self.config.sensitivity == SENSITIVITY_INLINING:
            return (value.atoms, value.tags)
        # Baseline: class names for arguments, contour ids for the receiver.
        if is_receiver:
            return value.atoms
        names = frozenset(
            self.object_contours[a].class_name if isinstance(a, int) else a
            for a in value.atoms
        )
        return names

    def method_key(
        self, callable_name: str, args: list[AbstractVal], is_method: bool
    ) -> object:
        signature = tuple(
            self._arg_signature(value, is_method and index == 0)
            for index, value in enumerate(args)
        )
        return (callable_name, signature)

    # ------------------------------------------------------------------
    # Method contours.

    def get_method_contour(
        self, callable_name: str, args: list[AbstractVal], is_method: bool
    ) -> tuple[MethodContour, bool]:
        """Find or create the contour for this call; returns (contour, created)."""
        existing_ids = self.contours_of_callable.setdefault(callable_name, [])
        if callable_name in self.widened_callables:
            summary_id = self._method_by_key.get((callable_name, "SUMMARY"))
            if summary_id is None:
                # The summary was garbage-collected while unreachable;
                # recreate it (the callable stays widened).
                return self._widen_callable(callable_name, len(args)), True
            return self.method_contours[summary_id], False

        key = self.method_key(callable_name, args, is_method)
        contour_id = self._method_by_key.get(key)
        if contour_id is not None:
            contour = self.method_contours[contour_id]
            contour.retired = False  # revived by a live call edge
            return contour, False

        if len(existing_ids) >= self.config.max_method_contours_per_callable:
            if self.gc_hook is not None:
                self.gc_hook()
            if (
                self._live_callable_count(callable_name)
                >= self.config.max_method_contours_per_callable
            ):
                return self._widen_callable(callable_name, len(args)), True

        contour = MethodContour(
            id=self._next_id,
            callable_name=callable_name,
            key=key,
            arg_values=[BOTTOM] * len(args),
        )
        self._next_id += 1
        self.created_method_contours += 1
        self.method_contours[contour.id] = contour
        self._method_by_key[key] = contour.id
        existing_ids.append(contour.id)
        return contour, True

    def _widen_callable(self, callable_name: str, num_args: int) -> MethodContour:
        """Collapse a callable to one summary contour (cap exceeded)."""
        self.widened_callables.add(callable_name)
        key = (callable_name, "SUMMARY")
        contour_id = self._method_by_key.get(key)
        if contour_id is not None:
            return self.method_contours[contour_id]
        contour = MethodContour(
            id=self._next_id,
            callable_name=callable_name,
            key=key,
            arg_values=[BOTTOM] * num_args,
            summary=True,
        )
        self._next_id += 1
        self.method_contours[contour.id] = contour
        self._method_by_key[key] = contour.id
        self.contours_of_callable[callable_name].append(contour.id)
        # Fold every existing contour's knowledge into the summary so the
        # widened result stays an over-approximation.
        for existing_id in self.contours_of_callable[callable_name]:
            existing = self.method_contours[existing_id]
            if existing.id == contour.id:
                continue
            contour.join_args(existing.arg_values)
            contour.ret = join(contour.ret, existing.ret)
            contour.callers |= existing.callers
        if self.widen_hook is not None:
            self.widen_hook(contour, set(contour.callers))
        return contour

    # ------------------------------------------------------------------
    # Object contours.

    def get_object_contour(
        self,
        class_name: str,
        site_uid: int,
        creator_id: int,
        is_array: bool = False,
    ) -> tuple[ObjectContour, bool]:
        site_ids = self.contours_of_site.setdefault(site_uid, [])
        if site_uid in self.widened_sites:
            return self.object_contours[self._object_by_key[(site_uid, None)]], False

        key = (site_uid, creator_id)
        contour_id = self._object_by_key.get(key)
        if contour_id is not None:
            return self.object_contours[contour_id], False

        if len(site_ids) >= self.config.max_object_contours_per_site:
            if self.gc_hook is not None:
                self.gc_hook()
            if self._live_site_count(site_uid) >= self.config.max_object_contours_per_site:
                return self._widen_site(class_name, site_uid, is_array), True

        contour = ObjectContour(
            id=self._next_id,
            class_name=class_name,
            site_uid=site_uid,
            creator_id=creator_id,
            is_array=is_array,
        )
        self._next_id += 1
        self.created_object_contours += 1
        self.object_contours[contour.id] = contour
        self._object_by_key[key] = contour.id
        site_ids.append(contour.id)
        return contour, True

    def _widen_site(self, class_name: str, site_uid: int, is_array: bool) -> ObjectContour:
        self.widened_sites.add(site_uid)
        key = (site_uid, None)
        contour_id = self._object_by_key.get(key)
        if contour_id is not None:
            return self.object_contours[contour_id]
        contour = ObjectContour(
            id=self._next_id,
            class_name=class_name,
            site_uid=site_uid,
            creator_id=None,
            is_array=is_array,
            summary=True,
        )
        self._next_id += 1
        self.object_contours[contour.id] = contour
        self._object_by_key[key] = contour.id
        self.contours_of_site[site_uid].append(contour.id)
        if self.widen_hook is not None:
            creators = {
                self.object_contours[cid].creator_id
                for cid in self.contours_of_site[site_uid]
                if self.object_contours[cid].creator_id is not None
            }
            self.widen_hook(contour, creators)
        return contour

    # ------------------------------------------------------------------
    # Metrics (Figure 16).

    def method_contour_count(self) -> int:
        return len(self.method_contours)

    def object_contour_count(self) -> int:
        return len(self.object_contours)

    def reached_callables(self) -> set[str]:
        return {c.callable_name for c in self.method_contours.values()}

    def contours_per_method(self) -> float:
        """Average number of method contours per reached callable."""
        reached = self.reached_callables()
        if not reached:
            return 0.0
        return len(self.method_contours) / len(reached)
