"""Assignment specialization (§4.2 of the paper).

Inlining a field copies the child's state into the container; that copy is
only safe when nobody can observe that the child's identity changed.  The
paper's criterion: the value stored into the inlined field must be
*passable by value* — created locally (a ``new`` in this contour, or
passed by value from every call site), never stored into persistent state
elsewhere (``NoStore``), and never used after the consuming point
(``UsesAfter`` empty).

This module implements those predicates over the analysis results:

- :meth:`AssignmentSpecializer.store_is_by_value` — the paper's
  ``PassByValue``/``CallByValue`` chain rooted at one store site.
- ``_nostore_formal`` — the paper's ``NoStore`` recursion into callees.

Conservatisms (all fail-safe): values flowing through anything but
``new`` and moves are not "created locally"; returning a value escapes
it; any use textually reachable after the consuming point counts as
``UsesAfter`` (loops make this reflexive); a value appearing twice among
one call's arguments fails (it would alias two formals, the paper's
"one aliased Point as both arguments" hazard).
"""

from __future__ import annotations

from ..ir import model as ir
from .defuse import DefUse, DefUseCache, Occurrence
from .results import AnalysisResult, StoreSite


class AssignmentSpecializer:
    """Evaluates the §4.2 by-value predicates against an analysis result."""

    def __init__(self, result: AnalysisResult) -> None:
        self.result = result
        self.defuse = DefUseCache(result.program)
        self._nostore_cache: dict[tuple[int, int], bool] = {}

    # ------------------------------------------------------------------
    # Entry point.

    def store_is_by_value(self, store: StoreSite) -> tuple[bool, str]:
        """Check the value flowing into one store site.

        Returns (ok, reason); ``reason`` explains the first failure.
        """
        return self._passable(store.contour_id, store.src_reg, store.instr_uid, set())

    # ------------------------------------------------------------------
    # PassByValue / CallByValue.

    def _passable(
        self,
        contour_id: int,
        reg: int,
        consuming_uid: int,
        visited: set[tuple[int, int, int]],
    ) -> tuple[bool, str]:
        key = (contour_id, reg, consuming_uid)
        if key in visited:
            # A cycle in the pass-by-value chain (e.g. recursion) — refuse
            # rather than assume.
            return False, "cyclic by-value chain"
        visited.add(key)

        contour = self.result.method_contour(contour_id)
        du = self.defuse.get(contour.callable_name)
        if du is None:
            return False, f"no IR for {contour.callable_name}"
        if consuming_uid not in du.by_uid:
            return False, "consuming instruction not found"
        consuming_pos = du.by_uid[consuming_uid]

        # 1. Every definition must be CreatedLocally (new / by-value chain).
        defs = du.defs.get(reg, [])
        if not defs:
            if not du.is_formal(reg):
                return False, f"r{reg} has no definition"
            ok, reason = self._call_by_value(contour_id, reg, visited)
            if not ok:
                return False, reason
        else:
            for definition in defs:
                instr = definition.instr
                if isinstance(instr, (ir.New, ir.NewArray)):
                    continue
                if isinstance(instr, ir.Move):
                    ok, reason = self._passable(
                        contour_id, instr.src, consuming_uid, visited
                    )
                    if not ok:
                        return False, reason
                    continue
                if isinstance(instr, (ir.CallFunction, ir.CallMethod, ir.CallStatic)):
                    # A factory call: fresh if every callee returns a
                    # locally created, never-stored value.
                    ok, reason = self._call_returns_fresh(
                        contour_id, instr.uid, visited
                    )
                    if not ok:
                        return False, reason
                    continue
                return False, (
                    f"not created locally: defined by {type(instr).__name__}"
                )
            if du.is_formal(reg):
                # Both a formal and reassigned: the incoming value also
                # reaches the store; require the call chain to be by-value.
                ok, reason = self._call_by_value(contour_id, reg, visited)
                if not ok:
                    return False, reason

        # 2. Check every use of the value (through move aliases).
        aliases = self._alias_closure(du, reg)
        consuming_hits = 0
        for use in self._uses_of(du, aliases):
            if self._is_closure_move(use, aliases):
                continue
            if use.instr.uid == consuming_uid:
                consuming_hits += 1
                continue
            if du.possibly_after(consuming_pos, use.position) and not (
                self._freshly_defined_before(du, use, consuming_pos)
            ):
                return False, (
                    f"used after the store ({type(use.instr).__name__})"
                )
            ok, reason = self._use_does_not_store(contour_id, use, visited)
            if not ok:
                return False, reason
        if consuming_hits > 1:
            return False, "value aliased into multiple operands of the consuming call"
        return True, "ok"

    def _call_returns_fresh(
        self, contour_id: int, call_uid: int, visited: set[tuple[int, int, int]]
    ) -> tuple[bool, str]:
        """True when every callee of the site returns a fresh value: one
        created locally (or itself returned fresh) whose only escaping use
        is the return itself."""
        callees = self.result.callees_at(contour_id, call_uid)
        if not callees:
            return False, "call with no resolved callees"
        for callee_id in callees:
            callee = self.result.method_contour(callee_id)
            if callee.summary:
                return False, f"callee {callee.callable_name} widened"
            callable_ = self.result.program.lookup_callable(callee.callable_name)
            if callable_ is None:
                return False, f"no IR for {callee.callable_name}"
            for instr in callable_.instructions():
                if isinstance(instr, ir.Return) and instr.src is not None:
                    ok, reason = self._passable(callee_id, instr.src, instr.uid, visited)
                    if not ok:
                        return False, f"{callee.callable_name} does not return fresh: {reason}"
        return True, "ok"

    @staticmethod
    def _freshly_defined_before(du: DefUse, use, consuming_pos) -> bool:
        """Loop refinement: inside a cycle every position is "possibly
        after" every other, but when the used register is (re)defined in
        the consuming block *before* the use, and the use precedes the
        consuming point, each iteration operates on a fresh value instance
        — the textual def → use → consume order is definitive."""
        use_block, use_index = use.position
        consuming_block, consuming_index = consuming_pos
        if use_block != consuming_block or use_index >= consuming_index:
            return False
        defs = du.defs.get(use.reg, [])
        if not defs:
            return False
        for definition in defs:
            def_block, def_index = definition.position
            if def_block != use_block or def_index >= use_index:
                return False
        return True

    def _call_by_value(
        self, contour_id: int, formal_reg: int, visited: set[tuple[int, int, int]]
    ) -> tuple[bool, str]:
        """The paper's CallByValue: every call edge passes the actual by value."""
        contour = self.result.method_contour(contour_id)
        if contour.summary:
            return False, "widened contour"
        if not contour.callers:
            return False, "formal with no recorded callers"
        for caller_id, site_uid in contour.callers:
            caller = self.result.method_contour(caller_id)
            du = self.defuse.get(caller.callable_name)
            if du is None or site_uid not in du.by_uid:
                return False, "caller site not found"
            position = du.by_uid[site_uid]
            block_index, instr_index = position
            caller_callable = self.result.program.lookup_callable(caller.callable_name)
            call_instr = caller_callable.blocks[block_index].instrs[instr_index]
            actual = self._actual_for_formal(call_instr, formal_reg)
            if actual is None:
                return False, "cannot map formal to an actual argument"
            ok, reason = self._passable(caller_id, actual, site_uid, visited)
            if not ok:
                return False, f"call site in {caller.callable_name}: {reason}"
        return True, "ok"

    @staticmethod
    def _actual_for_formal(call_instr: ir.Instr, formal_reg: int) -> int | None:
        """Which caller register feeds ``formal_reg`` across this call."""
        if isinstance(call_instr, ir.New):
            # formal 0 is the freshly created object itself.
            if formal_reg == 0:
                return None
            index = formal_reg - 1
            if index < len(call_instr.args):
                return call_instr.args[index]
            return None
        if isinstance(call_instr, (ir.CallMethod, ir.CallStatic)):
            if formal_reg == 0:
                return call_instr.recv
            index = formal_reg - 1
            if index < len(call_instr.args):
                return call_instr.args[index]
            return None
        if isinstance(call_instr, ir.CallFunction):
            if formal_reg < len(call_instr.args):
                return call_instr.args[formal_reg]
            return None
        return None

    # ------------------------------------------------------------------
    # NoStore.

    def _use_does_not_store(
        self,
        contour_id: int,
        use: Occurrence,
        visited: set[tuple[int, int, int]],
    ) -> tuple[bool, str]:
        """The paper's NoStoreUse/NoStoreCall for one use occurrence."""
        instr = use.instr
        if isinstance(instr, (ir.SetField, ir.SetIndex)):
            if use.role == "src":
                return False, "stored into another object"
            return True, "ok"  # used as the mutated container: a read of v
        if isinstance(instr, ir.SetGlobal):
            return False, "stored into a global"
        if isinstance(instr, ir.Return):
            return False, "returned to caller"
        if isinstance(instr, (ir.CallMethod, ir.CallStatic, ir.CallFunction, ir.New)):
            formal = self._formal_for_occurrence(instr, use)
            if formal is None:
                return False, "cannot map argument to callee formal"
            for callee_id in self.result.callees_at(contour_id, instr.uid):
                if not self._nostore_formal(callee_id, formal):
                    callee = self.result.method_contour(callee_id)
                    return False, f"callee {callee.callable_name} may store it"
            return True, "ok"
        # Reads, arithmetic, branches, builtins (print/assert) are harmless.
        return True, "ok"

    @staticmethod
    def _formal_for_occurrence(instr: ir.Instr, use: Occurrence) -> int | None:
        """The callee formal index this occurrence binds to."""
        if use.role == "recv":
            return 0
        if not use.role.startswith("arg"):
            return None
        index = int(use.role[3:])
        if isinstance(instr, (ir.CallMethod, ir.CallStatic, ir.New)):
            return index + 1  # formal 0 is the receiver / new object
        if isinstance(instr, ir.CallFunction):
            return index
        return None

    def _nostore_formal(self, contour_id: int, formal_reg: int) -> bool:
        """True if the contour never stores/escapes its ``formal_reg``."""
        key = (contour_id, formal_reg)
        if key in self._nostore_cache:
            return self._nostore_cache[key]
        # Optimistic at cycles: assume True while computing (greatest
        # fixpoint — a real store on any path flips it to False).
        self._nostore_cache[key] = True

        contour = self.result.method_contour(contour_id)
        du = self.defuse.get(contour.callable_name)
        result = True
        if du is None:
            result = False
        else:
            aliases = self._alias_closure(du, formal_reg)
            for use in self._uses_of(du, aliases):
                if self._is_closure_move(use, aliases):
                    continue
                instr = use.instr
                if isinstance(instr, (ir.SetField, ir.SetIndex)) and use.role == "src":
                    result = False
                elif isinstance(instr, ir.SetGlobal):
                    result = False
                elif isinstance(instr, ir.Return):
                    result = False
                elif isinstance(
                    instr, (ir.CallMethod, ir.CallStatic, ir.CallFunction, ir.New)
                ):
                    formal = self._formal_for_occurrence(instr, use)
                    if formal is None:
                        result = False
                    else:
                        for callee_id in self.result.callees_at(contour_id, instr.uid):
                            if not self._nostore_formal(callee_id, formal):
                                result = False
                                break
                if not result:
                    break
        self._nostore_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Alias plumbing.

    @staticmethod
    def _alias_closure(du: DefUse, reg: int) -> set[int]:
        """Registers the value may propagate to via Move instructions."""
        aliases = {reg}
        changed = True
        while changed:
            changed = False
            for alias in list(aliases):
                for use in du.uses.get(alias, []):
                    instr = use.instr
                    if isinstance(instr, ir.Move) and instr.dest not in aliases:
                        aliases.add(instr.dest)
                        changed = True
        return aliases

    @staticmethod
    def _uses_of(du: DefUse, aliases: set[int]) -> list[Occurrence]:
        occurrences: list[Occurrence] = []
        for alias in aliases:
            occurrences.extend(du.uses.get(alias, []))
        return occurrences

    @staticmethod
    def _is_closure_move(use: Occurrence, aliases: set[int]) -> bool:
        return isinstance(use.instr, ir.Move) and use.instr.dest in aliases
