"""Intra-callable def/use and ordering queries.

The assignment-specialization predicates (§4.2) need, inside one
callable, the definitions and uses of a register and an *after* relation
between instruction positions (``UsesBefore`` / ``UsesAfter``).  A
position Q is "possibly after" P when Q is reachable from P in the CFG
(later in the same block, or in a block reachable from P's block —
including around loop back edges, which makes the relation reflexive
inside cycles; that is the conservative direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import model as ir

#: (block index, instruction index) — a position inside a callable.
Position = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Occurrence:
    """One appearance of a register in an instruction."""

    position: Position
    instr: ir.Instr
    role: str  # operand slot: 'src', 'obj', 'recv', 'arg0', 'arg1', 'dest', ...
    reg: int


def operand_roles(instr: ir.Instr) -> list[tuple[str, int]]:
    """(role, register) pairs for every register the instruction reads.

    Argument roles are indexed (``arg0``, ``arg1``, ...) so that the same
    register appearing in two positions yields two distinct occurrences.
    """
    if isinstance(instr, (ir.Move, ir.UnOp)):
        return [("src", instr.src)]
    if isinstance(instr, ir.BinOp):
        return [("lhs", instr.lhs), ("rhs", instr.rhs)]
    if isinstance(instr, ir.New):
        return [(f"arg{i}", a) for i, a in enumerate(instr.args)]
    if isinstance(instr, ir.NewArray):
        return [("size", instr.size)]
    if isinstance(instr, ir.GetField):
        return [("obj", instr.obj)]
    if isinstance(instr, ir.GetFieldIndexed):
        return [("obj", instr.obj), ("index", instr.index)]
    if isinstance(instr, ir.SetFieldIndexed):
        return [("obj", instr.obj), ("index", instr.index), ("src", instr.src)]
    if isinstance(instr, ir.SetField):
        return [("obj", instr.obj), ("src", instr.src)]
    if isinstance(instr, ir.GetIndex):
        return [("array", instr.array), ("index", instr.index)]
    if isinstance(instr, ir.SetIndex):
        return [("array", instr.array), ("index", instr.index), ("src", instr.src)]
    if isinstance(instr, ir.ArrayLen):
        return [("array", instr.array)]
    if isinstance(instr, (ir.CallMethod, ir.CallStatic)):
        return [("recv", instr.recv)] + [(f"arg{i}", a) for i, a in enumerate(instr.args)]
    if isinstance(instr, (ir.CallFunction, ir.CallBuiltin)):
        return [(f"arg{i}", a) for i, a in enumerate(instr.args)]
    if isinstance(instr, ir.SetGlobal):
        return [("src", instr.src)]
    if isinstance(instr, ir.MakeView):
        return [("array", instr.array), ("index", instr.index)]
    if isinstance(instr, ir.Branch):
        return [("cond", instr.cond)]
    if isinstance(instr, ir.Return):
        return [] if instr.src is None else [("src", instr.src)]
    return []


class DefUse:
    """Def/use index plus position ordering for one callable."""

    def __init__(self, callable_: ir.IRCallable) -> None:
        self.callable = callable_
        self.defs: dict[int, list[Occurrence]] = {}
        self.uses: dict[int, list[Occurrence]] = {}
        self.by_uid: dict[int, Position] = {}
        for block_index, instr_index, instr in callable_.instructions_with_position():
            position = (block_index, instr_index)
            self.by_uid[instr.uid] = position
            dest = instr.dst
            if dest is not None:
                self.defs.setdefault(dest, []).append(
                    Occurrence(position, instr, "dest", dest)
                )
            for role, reg in operand_roles(instr):
                self.uses.setdefault(reg, []).append(Occurrence(position, instr, role, reg))
        self._reach = self._block_reachability()

    def _block_reachability(self) -> list[set[int]]:
        """reach[b] = blocks reachable from b via one or more edges."""
        num = len(self.callable.blocks)
        succs = [set(block.successors()) for block in self.callable.blocks]
        reach: list[set[int]] = [set(s) for s in succs]
        changed = True
        while changed:
            changed = False
            for b in range(num):
                expanded = set(reach[b])
                for s in list(reach[b]):
                    expanded |= reach[s]
                if expanded != reach[b]:
                    reach[b] = expanded
                    changed = True
        return reach

    def possibly_after(self, anchor: Position, other: Position) -> bool:
        """True if ``other`` may execute after ``anchor`` on some run."""
        anchor_block, anchor_index = anchor
        other_block, other_index = other
        if anchor_block == other_block and other_index > anchor_index:
            return True
        if other_block in self._reach[anchor_block]:
            return True
        # Same block but earlier index still counts as "after" when the
        # block sits inside a cycle (the loop re-enters it).
        if (
            anchor_block == other_block
            and other_index <= anchor_index
            and anchor_block in self._reach[anchor_block]
        ):
            return True
        return False

    def is_formal(self, reg: int) -> bool:
        """True if ``reg`` carries an incoming value (this or a parameter)."""
        return reg < self.callable.num_formals


class DefUseCache:
    """Lazily built :class:`DefUse` per callable name."""

    def __init__(self, program: ir.IRProgram) -> None:
        self._program = program
        self._cache: dict[str, DefUse] = {}

    def get(self, callable_name: str) -> DefUse | None:
        if callable_name in self._cache:
            return self._cache[callable_name]
        callable_ = self._program.lookup_callable(callable_name)
        if callable_ is None:
            return None
        defuse = DefUse(callable_)
        self._cache[callable_name] = defuse
        return defuse
