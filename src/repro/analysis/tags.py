"""Field-origin tags (§4.1 of the paper).

A *tag* records the chain of fields a value may have flowed out of:

- ``NOFIELD`` (the empty chain) marks values that did not come from a
  field access — results of ``new``, literals, primitives.
- ``make_tag(slot, t)`` marks the result of reading field ``slot`` from an
  object that itself carried tag ``t`` (tags are transitive on field
  accesses to objects that were themselves the result of a field access).

A slot is ``(container object-contour id, field name)``; array element
slots use the pseudo-field :data:`ELEM_FIELD`.  ``head(tag)`` — the
paper's ``Head`` — is the outermost (most recent) slot.

Chains are capped at :data:`MAX_TAG_DEPTH` slots by truncating the oldest
entries; only the head is consulted by the inlining decision, so
truncation costs precision on deeply nested structures, never soundness.
"""

from __future__ import annotations

from typing import Iterable

#: Pseudo-field naming the element slot of an array contour.
ELEM_FIELD = "@elem"

#: Maximum slots retained in one tag chain.  The inlining decision only
#: consults the *head* of a tag (transparent slots are resolved through
#: their stored content tags, not through the chain), so depth 1 keeps
#: every decision identical while avoiding combinatorial chain blowup on
#: recursive structures.  Deeper chains are supported (the paper's
#: MakeTag is transitive) and exercised by the unit tests.
MAX_TAG_DEPTH = 1

#: Maximum distinct tags kept on one value before widening to TOP.
MAX_TAG_WIDTH = 24

#: (container contour id, field name)
Slot = tuple[int, str]

#: A tag: a (possibly empty) chain of slots, most recent first.
Tag = tuple[Slot, ...]

#: The tag of values that did not flow from any field.
NOFIELD: Tag = ()

#: Sentinel slot heading the TOP tag.
TOP_SLOT: Slot = (-1, "@top")

#: Widened tag: origin unknown.  Conservatively treated as "may be a raw
#: object" by the inlining decision, which disqualifies any candidate
#: whose values it mixes with.
TOP: Tag = (TOP_SLOT,)


_TOP_SET = frozenset({TOP})


def cap_tags(tags: frozenset) -> frozenset:
    """Widen over-wide tag sets to {TOP} (recursive-structure blowup).

    TOP absorbs: once a set contains TOP it stays exactly {TOP}, keeping
    the widening monotone (otherwise capped sets would oscillate between
    {TOP} and regrown tag sets and the fixpoint would never terminate).
    """
    if TOP in tags or len(tags) > MAX_TAG_WIDTH:
        return _TOP_SET
    return tags


def make_tag(slot: Slot, tag: Tag) -> Tag:
    """The paper's ``MakeTag(f, tag)``: prepend ``slot``, capping depth."""
    return (slot, *tag[: MAX_TAG_DEPTH - 1])


def head(tag: Tag) -> Slot | None:
    """The paper's ``Head(tag)``: the outermost slot, or None for NOFIELD."""
    return tag[0] if tag else None


def head_slots(tags: Iterable[Tag]) -> set[Slot]:
    """All head slots among ``tags`` (NOFIELD contributes nothing)."""
    return {tag[0] for tag in tags if tag}


def has_nofield(tags: Iterable[Tag]) -> bool:
    return any(not tag for tag in tags)


def format_tag(tag: Tag) -> str:
    if not tag:
        return "NoField"
    return ".".join(f"o{cid}:{field}" for cid, field in tag)
