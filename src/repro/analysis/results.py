"""Analysis result container and query helpers.

:class:`AnalysisResult` is the hand-off between the flow analysis and
everything downstream: the use/assignment specialization decisions, the
cloning partitioner, and the rewriting transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import model as ir
from .contours import AnalysisConfig, ContourManager, MethodContour, ObjectContour
from .tags import Slot
from .values import AbstractVal, BOTTOM


@dataclass(frozen=True, slots=True)
class StoreSite:
    """One SetField/SetIndex that stores into ``container_contour.field_name``."""

    contour_id: int
    instr_uid: int
    callable_name: str
    container_contour: int
    field_name: str
    value: AbstractVal
    src_reg: int
    obj_reg: int
    is_index: bool


@dataclass(frozen=True, slots=True)
class IdentitySite:
    """An ``==``/``!=`` whose operands may be heap objects."""

    contour_id: int
    instr_uid: int
    callable_name: str
    lhs: AbstractVal
    rhs: AbstractVal


@dataclass(slots=True)
class AnalysisResult:
    """Everything the transformation stages need from the analysis."""

    program: ir.IRProgram
    config: AnalysisConfig
    manager: ContourManager
    slots: dict[Slot, AbstractVal]
    global_values: dict[str, AbstractVal]
    #: per method contour: call-site uid -> callee method-contour ids.
    call_edges: dict[int, dict[int, set[int]]]
    #: per method contour: allocation-site uid -> object contour id.
    allocations: dict[int, dict[int, int]]
    #: (method contour id, instr uid) -> recorded operand snapshot.
    facts: dict[tuple[int, int], dict[str, object]]
    stores: list[StoreSite]
    identity_sites: list[IdentitySite]
    _stores_by_slot: dict[Slot, list[StoreSite]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        for store in self.stores:
            key = (store.container_contour, store.field_name)
            self._stores_by_slot.setdefault(key, []).append(store)

    # ------------------------------------------------------------------
    # Contour queries.

    def method_contour(self, contour_id: int) -> MethodContour:
        return self.manager.method_contours[contour_id]

    def object_contour(self, contour_id: int) -> ObjectContour:
        return self.manager.object_contours[contour_id]

    def contours_of(self, callable_name: str) -> list[MethodContour]:
        ids = self.manager.contours_of_callable.get(callable_name, [])
        return [self.manager.method_contours[i] for i in ids]

    def slot_value(self, slot: Slot) -> AbstractVal:
        return self.slots.get(slot, BOTTOM)

    def stores_to_slot(self, slot: Slot) -> list[StoreSite]:
        return self._stores_by_slot.get(slot, [])

    def fact(self, contour_id: int, instr_uid: int) -> dict[str, object]:
        return self.facts.get((contour_id, instr_uid), {})

    def callees_at(self, contour_id: int, site_uid: int) -> set[int]:
        return self.call_edges.get(contour_id, {}).get(site_uid, set())

    # ------------------------------------------------------------------
    # Widening / precision queries.

    def contour_is_widened(self, contour_id: int) -> bool:
        contour = self.manager.method_contours.get(contour_id)
        return bool(contour and contour.summary)

    def object_contour_is_widened(self, contour_id: int) -> bool:
        contour = self.manager.object_contours.get(contour_id)
        return bool(contour and contour.summary)

    # ------------------------------------------------------------------
    # Metrics (Figure 16).

    def method_contours_per_method(self) -> float:
        return self.manager.contours_per_method()

    def method_contour_count(self) -> int:
        return self.manager.method_contour_count()

    def object_contour_count(self) -> int:
        return self.manager.object_contour_count()
