"""Connection-graph escape analysis.

Classifies every allocation site (``New`` / ``NewArray``) of a program as
*global-escape*, *arg-escape*, or *no-escape*, so the optimizer can
scalar-replace or frame-allocate objects the paper's object inlining
cannot touch (children that are never stored anywhere at all).

The shape follows the CoreCLR ``ObjectAllocator`` phase and Choi et
al.'s connection graphs, specialised to this IR:

- Per callable, a flow-insensitive **connection graph**: ``Move`` (and
  value-returning builtins, whose results may alias an argument — think
  ``min``/``max``) contribute *flow edges* ``src → dest``; stores into
  object fields, array elements, or globals are *escape sinks* on the
  stored value; ``return`` marks a register *returned* (a separate bit,
  not an escape sink — a factory's result only escapes into its caller's
  graph, where it keeps being tracked).
- **Interprocedural formal summaries**: for each callable, each formal's
  converged escape state plus a *returned* bit, computed by a monotone
  fixpoint over the call graph (the lattice ``no < arg < global`` is
  finite, so it terminates).  A call to a known callee escalates each
  actual to the callee formal's state; a callee that returns a formal
  adds a flow edge from the actual to the call's destination.  The
  implicit constructor run by ``New`` is modelled as a call to the
  resolved ``init`` with the fresh object as formal 0 — storing *into*
  ``this`` does not escape ``this``, so ordinary initialisation keeps a
  site no-escape while globalising the stored values.
- Dynamically dispatched sends whose method name has a single definition
  in the program are resolved to it (any receiver must reach that
  definition); otherwise receiver and arguments conservatively
  global-escape.
- **Loop residency**: a Tarjan SCC pass over each callable's block graph
  marks allocation sites inside CFG cycles.  A loop-resident site must
  not become a frame slot (the frame region is only reclaimed when the
  activation pops, so a loop would grow it unboundedly); scalar
  replacement is still fine (registers are reused per iteration).

Incrementality mirrors the versioned-cell idea of the flow engine at
callable granularity: the per-callable graph is a pure function of the
instruction stream, so :class:`EscapeCache` keys it by the tuple of
instruction uids.  Rewrites splice fresh uids, so after the optimizer
explodes constructors and re-runs the inliner only the touched callables
recompute their local graphs — the interprocedural fixpoint (cheap, it
only joins summaries) reruns over cached graphs, keeping re-analysis
O(changed).  ``escape.local_hits`` / ``escape.local_misses`` counters
quantify the reuse in traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import model as ir

# The escape lattice: NO_ESCAPE < ARG_ESCAPE < GLOBAL_ESCAPE.
NO_ESCAPE = 0
ARG_ESCAPE = 1
GLOBAL_ESCAPE = 2

STATE_NAMES = {
    NO_ESCAPE: "no-escape",
    ARG_ESCAPE: "arg-escape",
    GLOBAL_ESCAPE: "global-escape",
}


@dataclass(frozen=True, slots=True)
class FormalSummary:
    """Interprocedural fact about one formal of a callable."""

    state: int = NO_ESCAPE
    returned: bool = False


@dataclass(frozen=True, slots=True)
class EscapeSite:
    """Classification of one allocation site."""

    uid: int
    callable_name: str
    class_name: str | None  # None for plain arrays
    is_array: bool
    dest: int
    position: tuple[int, int]  # (block index, instruction index)
    in_loop: bool
    state: int
    reason: str

    @property
    def state_name(self) -> str:
        return STATE_NAMES[self.state]


@dataclass(frozen=True, slots=True)
class _CallUse:
    """One call site with a statically known callee."""

    callee: str  # qualified callable name
    actuals: tuple[int, ...]  # receiver first for methods
    dest: int | None  # None when the result is discarded (implicit init)


@dataclass(frozen=True, slots=True)
class _AllocInfo:
    uid: int
    dest: int
    class_name: str | None
    is_array: bool
    position: tuple[int, int]


@dataclass(slots=True)
class _LocalFacts:
    """The intraprocedural connection graph of one callable.

    A pure function of the instruction stream (callee references are kept
    by *name* and re-joined against current summaries every fixpoint), so
    it is cacheable by uid fingerprint.
    """

    fingerprint: tuple[int, ...]
    num_formals: int
    flow: dict[int, tuple[int, ...]]  # reg -> regs its value flows into
    sinks: dict[int, tuple[int, str]]  # reg -> (state, reason)
    calls: tuple[_CallUse, ...]
    returned: frozenset[int]
    allocs: tuple[_AllocInfo, ...]
    loop_blocks: frozenset[int]


@dataclass(slots=True)
class EscapeResult:
    """Program-wide classification."""

    sites: list[EscapeSite] = field(default_factory=list)
    by_uid: dict[int, EscapeSite] = field(default_factory=dict)
    summaries: dict[str, tuple[FormalSummary, ...]] = field(default_factory=dict)
    local_hits: int = 0
    local_misses: int = 0

    def no_escape_sites(self) -> list[EscapeSite]:
        return [s for s in self.sites if s.state == NO_ESCAPE]


class EscapeCache:
    """Per-callable connection graphs keyed by instruction-uid fingerprint.

    Sound for any sequence of programs in which a callable whose uid
    tuple is unchanged also has unchanged instructions — true here
    because instructions are immutable and every rewrite splices fresh
    uids.
    """

    def __init__(self) -> None:
        self._facts: dict[str, _LocalFacts] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, fingerprint: tuple[int, ...]) -> _LocalFacts | None:
        facts = self._facts.get(name)
        if facts is not None and facts.fingerprint == fingerprint:
            self.hits += 1
            return facts
        self.misses += 1
        return None

    def put(self, name: str, facts: _LocalFacts) -> None:
        self._facts[name] = facts


# ----------------------------------------------------------------------
# Local graph construction.


def _loop_blocks(callable_: ir.IRCallable) -> frozenset[int]:
    """Blocks inside a CFG cycle: nontrivial Tarjan SCCs plus self-loops."""
    succs = [block.successors() for block in callable_.blocks]
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = 0
    in_cycle: set[int] = set()

    for root in range(len(succs)):
        if root in index_of:
            continue
        # Iterative Tarjan: (node, iterator state) frames.
        work: list[list[int]] = [[root, 0]]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succs[node]
            while work[-1][1] < len(children):
                child = children[work[-1][1]]
                work[-1][1] += 1
                if child not in index_of:
                    work.append([child, 0])
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in succs[node]:
                    in_cycle.update(component)
    return frozenset(in_cycle)


def _unique_method(program: ir.IRProgram, method_name: str) -> str | None:
    """The qualified name of ``method_name`` if the program has exactly one
    definition of it (then any dispatch must land there)."""
    found: str | None = None
    for cls in program.classes.values():
        method = cls.methods.get(method_name)
        if method is not None:
            if found is not None:
                return None
            found = method.name
    return found


def _collect_local(program: ir.IRProgram, callable_: ir.IRCallable) -> _LocalFacts:
    flow: dict[int, set[int]] = {}
    sinks: dict[int, tuple[int, str]] = {}
    calls: list[_CallUse] = []
    returned: set[int] = set()
    allocs: list[_AllocInfo] = []
    uids: list[int] = []

    def edge(src: int, dest: int) -> None:
        if src != dest:
            flow.setdefault(src, set()).add(dest)

    def sink(reg: int, state: int, reason: str) -> None:
        current = sinks.get(reg)
        if current is None or state > current[0]:
            sinks[reg] = (state, reason)

    for block_index, instr_index, instr in callable_.instructions_with_position():
        uids.append(instr.uid)
        kind = type(instr)
        if kind is ir.Move:
            edge(instr.src, instr.dest)
        elif kind is ir.New:
            allocs.append(
                _AllocInfo(instr.uid, instr.dest, instr.class_name, False,
                           (block_index, instr_index))
            )
            if not instr.skip_init:
                resolved = program.resolve_method(instr.class_name, "init")
                if resolved is not None:
                    calls.append(
                        _CallUse(resolved[1].name, (instr.dest, *instr.args), None)
                    )
        elif kind is ir.NewArray:
            allocs.append(
                _AllocInfo(instr.uid, instr.dest, instr.inline_layout, True,
                           (block_index, instr_index))
            )
        elif kind is ir.SetField:
            sink(instr.src, GLOBAL_ESCAPE, f"stored into field .{instr.field_name}")
        elif kind is ir.SetFieldIndexed:
            sink(instr.src, GLOBAL_ESCAPE, f"stored into inline array .{instr.base_field}")
        elif kind is ir.SetIndex:
            sink(instr.src, GLOBAL_ESCAPE, "stored into array element")
        elif kind is ir.SetGlobal:
            sink(instr.src, GLOBAL_ESCAPE, f"stored into global {instr.name}")
        elif kind is ir.Return:
            if instr.src is not None:
                returned.add(instr.src)
        elif kind is ir.CallStatic:
            calls.append(_CallUse(f"{instr.class_name}::{instr.method_name}",
                                  (instr.recv, *instr.args), instr.dest))
        elif kind is ir.CallFunction:
            calls.append(_CallUse(instr.func_name, instr.args, instr.dest))
        elif kind is ir.CallMethod:
            target = _unique_method(program, instr.method_name)
            if target is not None:
                calls.append(
                    _CallUse(target, (instr.recv, *instr.args), instr.dest)
                )
            else:
                reason = f"dynamic send .{instr.method_name}() with several targets"
                sink(instr.recv, GLOBAL_ESCAPE, reason)
                for arg in instr.args:
                    sink(arg, GLOBAL_ESCAPE, reason)
        elif kind is ir.CallBuiltin:
            # Builtins never retain references, but value-selecting ones
            # (min/max) may return an argument: model args as flowing into
            # the result so a later store of the result escapes them too.
            if instr.dest is not None:
                for arg in instr.args:
                    edge(arg, instr.dest)
        elif kind is ir.MakeView:
            # A view is a fat pointer aliasing the array.
            edge(instr.array, instr.dest)
        # Const / UnOp / BinOp / field+index reads / ArrayLen / globals
        # reads / Jump / Branch neither leak nor alias a reference.

    return _LocalFacts(
        fingerprint=tuple(uids),
        num_formals=callable_.num_formals,
        flow={src: tuple(dests) for src, dests in flow.items()},
        sinks=sinks,
        calls=tuple(calls),
        returned=frozenset(returned),
        allocs=tuple(allocs),
        loop_blocks=_loop_blocks(callable_),
    )


# ----------------------------------------------------------------------
# Interprocedural fixpoint.


def _eval_callable(
    facts: _LocalFacts,
    summaries: dict[str, tuple[FormalSummary, ...]],
) -> tuple[dict[int, int], dict[int, str], set[int]]:
    """Solve one callable's graph against current callee summaries.

    Returns (register escape states, escalation reasons, returned regs).
    """
    state: dict[int, int] = {}
    reason: dict[int, str] = {}
    flow: dict[int, set[int]] = {src: set(dests) for src, dests in facts.flow.items()}
    returned: set[int] = set(facts.returned)

    def raise_to(reg: int, value: int, why: str) -> None:
        if value > state.get(reg, NO_ESCAPE):
            state[reg] = value
            reason[reg] = why

    for reg, (value, why) in facts.sinks.items():
        raise_to(reg, value, why)

    for call in facts.calls:
        callee = summaries.get(call.callee)
        if callee is None:
            # Callee outside the program (should not happen for validated
            # IR) — be conservative.
            for actual in call.actuals:
                raise_to(actual, GLOBAL_ESCAPE, f"call to unknown {call.callee}")
            continue
        for position, actual in enumerate(call.actuals):
            if position >= len(callee):
                break
            summary = callee[position]
            if summary.state > NO_ESCAPE:
                raise_to(actual, summary.state, f"escapes in callee {call.callee}")
            if summary.returned and call.dest is not None and call.dest != actual:
                flow.setdefault(actual, set()).add(call.dest)

    # Escape states propagate backward along flow edges (if the value in
    # ``dest`` escapes and ``src`` flows into ``dest``, the object in
    # ``src`` escapes); the returned bit propagates the same way.
    changed = True
    while changed:
        changed = False
        for src, dests in flow.items():
            src_state = state.get(src, NO_ESCAPE)
            for dest in dests:
                dest_state = state.get(dest, NO_ESCAPE)
                if dest_state > src_state:
                    state[src] = src_state = dest_state
                    reason[src] = reason.get(dest, "aliased to escaping value")
                    changed = True
                if dest in returned and src not in returned:
                    returned.add(src)
                    changed = True
    return state, reason, returned


def analyze_escapes(
    program: ir.IRProgram, cache: EscapeCache | None = None
) -> EscapeResult:
    """Run the escape analysis over a whole program."""
    if cache is None:
        cache = EscapeCache()
    hits_before, misses_before = cache.hits, cache.misses

    local: dict[str, _LocalFacts] = {}
    for callable_ in program.callables():
        fingerprint = tuple(instr.uid for instr in callable_.instructions())
        facts = cache.get(callable_.name, fingerprint)
        if facts is None:
            facts = _collect_local(program, callable_)
            cache.put(callable_.name, facts)
        local[callable_.name] = facts

    summaries: dict[str, tuple[FormalSummary, ...]] = {
        name: tuple(FormalSummary() for _ in range(facts.num_formals))
        for name, facts in local.items()
    }

    changed = True
    while changed:
        changed = False
        for name, facts in local.items():
            state, _, returned = _eval_callable(facts, summaries)
            updated = tuple(
                FormalSummary(state.get(formal, NO_ESCAPE), formal in returned)
                for formal in range(facts.num_formals)
            )
            if updated != summaries[name]:
                summaries[name] = updated
                changed = True

    result = EscapeResult(
        summaries=summaries,
        local_hits=cache.hits - hits_before,
        local_misses=cache.misses - misses_before,
    )
    for name, facts in local.items():
        if not facts.allocs:
            continue
        state, reason, returned = _eval_callable(facts, summaries)
        for alloc in facts.allocs:
            site_state = state.get(alloc.dest, NO_ESCAPE)
            why = reason.get(alloc.dest, "never leaves the allocating method")
            if site_state == NO_ESCAPE and alloc.dest in returned:
                site_state = ARG_ESCAPE
                why = "returned to caller"
            site = EscapeSite(
                uid=alloc.uid,
                callable_name=name,
                class_name=alloc.class_name,
                is_array=alloc.is_array,
                dest=alloc.dest,
                position=alloc.position,
                in_loop=alloc.position[0] in facts.loop_blocks,
                state=site_state,
                reason=why,
            )
            result.sites.append(site)
            result.by_uid[alloc.uid] = site
    return result
