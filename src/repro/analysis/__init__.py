"""The Concert-style context-sensitive flow analysis and the paper's
object-inlining analyses (use specialization and assignment
specialization).
"""

from .contours import (
    ARRAY_CLASS,
    AnalysisConfig,
    ContourManager,
    MethodContour,
    ObjectContour,
    SENSITIVITY_CONCERT,
    SENSITIVITY_INLINING,
)
from .engine import AnalysisBudgetExceeded, FlowAnalysis, analyze
from .escape import (
    ARG_ESCAPE,
    EscapeCache,
    EscapeResult,
    EscapeSite,
    GLOBAL_ESCAPE,
    NO_ESCAPE,
    analyze_escapes,
)
from .results import AnalysisResult, IdentitySite, StoreSite
from .reuse import AnalysisCache
from .tags import ELEM_FIELD, MAX_TAG_DEPTH, NOFIELD, Slot, Tag, format_tag, head, make_tag
from .values import (
    AbstractVal,
    BOTTOM,
    PRIM_BOOL,
    PRIM_FLOAT,
    PRIM_INT,
    PRIM_NIL,
    PRIM_STR,
    join,
    make_val,
    obj_val,
    prim_val,
)

__all__ = [
    "AbstractVal",
    "analyze",
    "analyze_escapes",
    "AnalysisBudgetExceeded",
    "AnalysisCache",
    "AnalysisConfig",
    "AnalysisResult",
    "ARG_ESCAPE",
    "ARRAY_CLASS",
    "EscapeCache",
    "EscapeResult",
    "EscapeSite",
    "GLOBAL_ESCAPE",
    "NO_ESCAPE",
    "BOTTOM",
    "ContourManager",
    "ELEM_FIELD",
    "FlowAnalysis",
    "format_tag",
    "head",
    "IdentitySite",
    "join",
    "make_tag",
    "make_val",
    "MAX_TAG_DEPTH",
    "MethodContour",
    "NOFIELD",
    "obj_val",
    "ObjectContour",
    "PRIM_BOOL",
    "PRIM_FLOAT",
    "PRIM_INT",
    "PRIM_NIL",
    "PRIM_STR",
    "prim_val",
    "SENSITIVITY_CONCERT",
    "SENSITIVITY_INLINING",
    "Slot",
    "StoreSite",
    "Tag",
]
