"""Abstract values for the flow analysis.

An :class:`AbstractVal` pairs

- ``atoms`` — the concrete *types* a value may have: primitive kind names
  (:data:`PRIM_INT` etc.) and object-contour ids (ints), and
- ``tags`` — the §4.1 field-origin tags.

Values are immutable; :func:`join` builds unions.  Tags are only kept on
values that may reference heap objects (primitives cannot be inline
allocated, and their uses are never rewritten).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from .tags import NOFIELD, Tag, cap_tags

PRIM_INT = "int"
PRIM_FLOAT = "float"
PRIM_BOOL = "bool"
PRIM_STR = "str"
PRIM_NIL = "nil"

PRIM_KINDS = frozenset({PRIM_INT, PRIM_FLOAT, PRIM_BOOL, PRIM_STR, PRIM_NIL})

#: An atom is a primitive kind (str) or an object contour id (int).
Atom = object

_EMPTY: frozenset = frozenset()


class AbstractVal(NamedTuple):
    """One point of the analysis lattice."""

    atoms: frozenset
    tags: frozenset

    def is_bottom(self) -> bool:
        return not self.atoms

    def object_contours(self) -> frozenset:
        """The object-contour ids among the atoms."""
        return frozenset(a for a in self.atoms if isinstance(a, int))

    def prims(self) -> frozenset:
        return frozenset(a for a in self.atoms if isinstance(a, str))

    def may_be_object(self) -> bool:
        return any(isinstance(a, int) for a in self.atoms)

    def may_be_nil(self) -> bool:
        return PRIM_NIL in self.atoms


BOTTOM = AbstractVal(_EMPTY, _EMPTY)


def prim_val(*kinds: str) -> AbstractVal:
    """An abstract value holding only the given primitive kinds."""
    return AbstractVal(frozenset(kinds), _EMPTY)


def obj_val(contour_id: int, tags: Iterable[Tag] = (NOFIELD,)) -> AbstractVal:
    """An abstract value holding exactly one object contour."""
    return AbstractVal(frozenset({contour_id}), frozenset(tags))


def make_val(atoms: Iterable[Atom], tags: Iterable[Tag]) -> AbstractVal:
    """Construct a value, dropping tags unless an object atom is present.

    Tag sets wider than :data:`repro.analysis.tags.MAX_TAG_WIDTH` widen to
    ``{TOP}`` — conservative for every client (TOP resolves as a possibly
    raw object and so disqualifies candidates it mixes with).
    """
    atom_set = frozenset(atoms)
    if any(isinstance(a, int) for a in atom_set):
        return AbstractVal(atom_set, cap_tags(frozenset(tags)))
    return AbstractVal(atom_set, _EMPTY)


def join(*values: AbstractVal) -> AbstractVal:
    """Least upper bound of the given values.

    The two-argument case — the analysis engine's hot path — short-circuits
    when one operand already contains the other, returning the existing
    (canonical) value so callers' ``merged != old`` growth checks stay cheap
    identity-friendly comparisons.
    """
    if len(values) == 2:
        a, b = values
        if b.atoms <= a.atoms and b.tags <= a.tags:
            return a
        if a.atoms <= b.atoms and a.tags <= b.tags:
            return b
    atoms: set = set()
    tags: set = set()
    for value in values:
        atoms |= value.atoms
        tags |= value.tags
    return make_val(atoms, tags)


def const_atom(value: object) -> str:
    """The primitive kind of a literal constant."""
    if value is None:
        return PRIM_NIL
    if isinstance(value, bool):
        return PRIM_BOOL
    if isinstance(value, int):
        return PRIM_INT
    if isinstance(value, float):
        return PRIM_FLOAT
    if isinstance(value, str):
        return PRIM_STR
    raise TypeError(f"unexpected constant {value!r}")
