"""Cross-run reuse of analysis results.

:class:`AnalysisCache` memoizes :class:`~repro.analysis.results.AnalysisResult`
objects by (program identity, analysis config).  The pipeline's nested
replan rounds, the benchmark harness's three builds of one source
program, and a :class:`repro.Session`'s ``analyze``/``optimize`` calls
all re-analyze identical programs with identical configs; a shared cache
makes every repeat free.

Identity-keying is sound because the compiler never mutates an analyzed
program: ``transform_program`` rebuilds every class/callable/instruction
from scratch, so a transformed program is always a *new* object (cache
miss), and the scalar passes — the one place a program *is* mutated in
place — explicitly :meth:`~AnalysisCache.discard` the program first.
The cache holds a strong reference to each cached program so a recycled
``id()`` can never alias a dead entry.
"""

from __future__ import annotations

from .contours import AnalysisConfig
from .results import AnalysisResult


class AnalysisCache:
    """Memoizes analysis results by (program identity, config)."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, AnalysisConfig], tuple[object, AnalysisResult]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, program, config: AnalysisConfig) -> AnalysisResult | None:
        entry = self._entries.get((id(program), config))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def put(self, program, config: AnalysisConfig, result: AnalysisResult) -> None:
        self._entries[(id(program), config)] = (program, result)

    def discard(self, program) -> None:
        """Drop every entry for ``program`` (it is about to be mutated)."""
        dead = [key for key in self._entries if key[0] == id(program)]
        for key in dead:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()
