"""Per-phase compile-time regression gating.

Persists the ``BuildResult.phase_seconds`` of a benchmark run as a JSON
baseline (``BENCH_BASELINE.json`` at the repo root) and checks later
runs against it: ``repro bench --check-baseline`` fails when any phase
of any (benchmark, build) regresses more than the tolerance.

Phases faster than :data:`MIN_SECONDS` in the baseline are exempt —
sub-millisecond spans are dominated by timer noise, and a 30% blowup of
nothing is still nothing.
"""

from __future__ import annotations

import json

DEFAULT_BASELINE_PATH = "BENCH_BASELINE.json"

#: Maximum tolerated growth of a phase over its baseline (0.30 = +30%).
DEFAULT_TOLERANCE = 0.30

#: Phases whose baseline is below this many seconds are not gated.
MIN_SECONDS = 0.010


def collect_phase_baseline(runs: dict) -> dict:
    """``{benchmark: {build: {phase: seconds}}}`` from a harness run."""
    return {
        name: {
            build: dict(result.phase_seconds)
            for build, result in run.builds.items()
        }
        for name, run in runs.items()
    }


def write_baseline(path: str, runs: dict, tolerance: float = DEFAULT_TOLERANCE) -> str:
    payload = {
        "tolerance": tolerance,
        "min_seconds": MIN_SECONDS,
        "phases": collect_phase_baseline(runs),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_baseline(runs: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against a loaded baseline.

    Returns human-readable regression lines (empty = pass).  Phases or
    builds missing from the baseline are ignored — they gate once the
    baseline is regenerated with ``--update-baseline``.
    """
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    min_seconds = float(baseline.get("min_seconds", MIN_SECONDS))
    current = collect_phase_baseline(runs)
    regressions: list[str] = []
    for name, builds in baseline.get("phases", {}).items():
        for build, phases in builds.items():
            measured = current.get(name, {}).get(build)
            if measured is None:
                continue
            for phase, expected in phases.items():
                if expected < min_seconds:
                    continue
                actual = measured.get(phase, 0.0)
                if actual > expected * (1.0 + tolerance):
                    regressions.append(
                        f"{name}/{build}/{phase}: {actual * 1e3:.1f}ms "
                        f"vs baseline {expected * 1e3:.1f}ms "
                        f"(+{(actual / expected - 1) * 100:.0f}%, "
                        f"tolerance +{tolerance * 100:.0f}%)"
                    )
    return regressions
