"""Per-phase compile-time regression gating.

Persists the ``BuildResult.phase_seconds`` of a benchmark run as a JSON
baseline (``BENCH_BASELINE.json`` at the repo root) and checks later
runs against it: ``repro bench --check-baseline`` fails when any phase
of any (benchmark, build) regresses more than the tolerance.

Two classes of failure:

- **Regression** — a phase grew beyond
  ``max(expected, MIN_SECONDS) * (1 + tolerance)`` *and* beyond the
  absolute noise floor.  Clamping the expected side to ``MIN_SECONDS``
  keeps timer noise on sub-10ms baselines from firing the gate, without
  exempting such phases forever: a phase baselined at 2ms that grows to
  hundreds of ms is a regression, not noise.  The noise floor absorbs
  scheduler jitter on phases that are tiny in absolute terms either way.
- **Baseline drift** — a benchmark, build, or phase present in the
  baseline is missing from the measured run (a renamed span, a dropped
  build, a benchmark pulled from the suite).  Before this check, a
  vanished phase defaulted to ``actual = 0.0`` and silently passed
  forever.  Drift is reported as a failure with a hint to rerun
  ``--update-baseline`` if the change is intentional.

Baselines should be recorded and checked with the same ``--jobs`` mode:
parallel workers own their analysis caches, so cache-hit phases of a
serial run (e.g. the ``manual`` build's ``analyze``) measure — and even
appear — differently under ``--jobs N``.
"""

from __future__ import annotations

import json

DEFAULT_BASELINE_PATH = "BENCH_BASELINE.json"

#: Maximum tolerated growth of a phase over its baseline (0.30 = +30%).
DEFAULT_TOLERANCE = 0.30

#: Expected-side clamp: baselines below this are gated as if they were
#: this large, so sub-10ms phases get jitter headroom but still gate
#: once they blow up past it.
MIN_SECONDS = 0.010

#: Absolute noise floor: a phase whose measured time is below this never
#: fails the gate, however small its baseline.
NOISE_FLOOR_SECONDS = 0.050

_DRIFT_HINT = "baseline drift; rerun `repro bench --update-baseline` if intentional"


def collect_phase_baseline(runs: dict) -> dict:
    """``{benchmark: {build: {phase: seconds}}}`` from a harness run."""
    return {
        name: {
            build: dict(result.phase_seconds)
            for build, result in run.builds.items()
        }
        for name, run in runs.items()
    }


def write_baseline(path: str, runs: dict, tolerance: float = DEFAULT_TOLERANCE) -> str:
    payload = {
        "tolerance": tolerance,
        "min_seconds": MIN_SECONDS,
        "noise_floor": NOISE_FLOOR_SECONDS,
        "phases": collect_phase_baseline(runs),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def phase_gate(baseline: dict, expected: float) -> tuple[float, float]:
    """``(gate, noise_floor)`` for one phase under ``baseline``'s knobs.

    A phase regresses when its measured time exceeds *both*.  Exposed so
    the perf-history check (:mod:`repro.obs.history`) can apply the
    identical single-sample rule as its compatibility fallback while the
    ledger is still too thin for statistics.
    """
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    min_seconds = float(baseline.get("min_seconds", MIN_SECONDS))
    noise_floor = float(baseline.get("noise_floor", NOISE_FLOOR_SECONDS))
    return max(float(expected), min_seconds) * (1.0 + tolerance), noise_floor


def check_baseline(runs: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against a loaded baseline.

    Returns human-readable failure lines (empty = pass): phase-time
    regressions, plus baseline-drift lines for every benchmark, build,
    or phase the baseline expects but the measured run lacks.  Phases
    present only in the measured run are ignored — they gate once the
    baseline is regenerated with ``--update-baseline``.
    """
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    min_seconds = float(baseline.get("min_seconds", MIN_SECONDS))
    noise_floor = float(baseline.get("noise_floor", NOISE_FLOOR_SECONDS))
    current = collect_phase_baseline(runs)
    failures: list[str] = []
    for name, builds in baseline.get("phases", {}).items():
        measured_builds = current.get(name)
        if measured_builds is None:
            failures.append(
                f"{name}: benchmark missing from measured run ({_DRIFT_HINT})"
            )
            continue
        for build, phases in builds.items():
            measured = measured_builds.get(build)
            if measured is None:
                failures.append(
                    f"{name}/{build}: build missing from measured run ({_DRIFT_HINT})"
                )
                continue
            for phase, expected in phases.items():
                actual = measured.get(phase)
                if actual is None:
                    failures.append(
                        f"{name}/{build}/{phase}: phase missing from measured "
                        f"run — renamed or removed span? ({_DRIFT_HINT})"
                    )
                    continue
                gate = max(expected, min_seconds) * (1.0 + tolerance)
                if actual > gate and actual > noise_floor:
                    failures.append(
                        f"{name}/{build}/{phase}: {actual * 1e3:.1f}ms "
                        f"vs baseline {expected * 1e3:.1f}ms "
                        f"(gate {gate * 1e3:.1f}ms = max(baseline, "
                        f"{min_seconds * 1e3:.0f}ms) +{tolerance * 100:.0f}%)"
                    )
    return failures
