"""Benchmark descriptors.

Each benchmark module exposes a mini-ICC++ ``SOURCE`` and a
:class:`BenchmarkInfo` with the hand-determined ground truth Figure 14
needs: how many object-holding locations exist, how many a human could
ideally inline given aliasing constraints, and which known-limit
structures must *not* be inlined.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BenchmarkInfo:
    """Static facts about one benchmark program."""

    name: str
    description: str
    #: Hand count of inlinable locations given ideal aliasing knowledge
    #: (the paper's "could ideally be inlined" bar of Figure 14).
    ideal_inlinable: int
    #: Locations the paper's known limitations should leave uninlined,
    #: described as substrings expected in candidate describe() output.
    expected_rejected: tuple[str, ...] = ()
    #: Locations that must be accepted, same matching rule.
    expected_accepted: tuple[str, ...] = ()
    notes: str = ""


@dataclass(slots=True)
class FieldCounts:
    """The four bars of Figure 14 for one benchmark."""

    benchmark: str
    total_object_fields: int
    ideal_inlinable: int
    declared_inline_cpp: int
    automatically_inlined: int

    def as_row(self) -> dict[str, int | str]:
        return {
            "benchmark": self.benchmark,
            "total": self.total_object_fields,
            "ideal": self.ideal_inlinable,
            "declared_cpp": self.declared_inline_cpp,
            "automatic": self.automatically_inlined,
        }
