"""Full-evaluation markdown report.

Runs the complete benchmark matrix once and renders every figure plus
per-build VM statistics into a single markdown document — the artifact a
downstream user regenerates to compare against EXPERIMENTS.md.
"""

from __future__ import annotations

from . import figures
from ..obs import NULL_TRACER, label_display_name
from .harness import (
    BENCHMARKS,
    BenchmarkRun,
    PHASE_NAMES,
    run_all,
    run_performance_suite,
)


def _markdown_table(header: list[str], rows: list[list[object]]) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def _stats_section(runs: dict[str, BenchmarkRun]) -> str:
    header = [
        "benchmark", "build", "cycles", "instructions", "heap allocs",
        "stack allocs", "heap reads", "cache misses", "dyn dispatches",
    ]
    rows: list[list[object]] = []
    for name, run in runs.items():
        for build in run.builds:
            stats = run.builds[build].run.stats
            rows.append(
                [
                    name,
                    build,
                    stats.cycles(),
                    stats.instructions,
                    stats.allocations,
                    stats.stack_allocations,
                    stats.heap_reads,
                    stats.cache.misses,
                    stats.dynamic_dispatches,
                ]
            )
    return _markdown_table(header, rows)


def _phase_time_section(runs: dict[str, BenchmarkRun]) -> str:
    """Per-phase compile-time breakdown (milliseconds), from the tracer."""
    header = ["benchmark", "build"] + [f"{p} (ms)" for p in PHASE_NAMES] + ["total (ms)"]
    rows: list[list[object]] = []
    for name, run in runs.items():
        for build, result in run.builds.items():
            phases = result.phase_seconds
            rows.append(
                [name, build]
                + [phases.get(p, 0.0) * 1e3 for p in PHASE_NAMES]
                + [result.optimize_seconds * 1e3]
            )
    return _markdown_table(header, rows)


def _build_label_misses(result) -> dict[str, int]:
    """Display name -> miss count for one build's locality summary."""
    misses: dict[str, int] = {}
    if not result.locality:
        return misses
    for entry in result.locality["labels"]["labels"]:
        name = label_display_name(
            entry.get("kind", "other"), entry.get("class"), entry.get("field")
        )
        misses[name] = misses.get(name, 0) + int(entry.get("misses", 0))
    return misses


def _locality_section(runs: dict[str, BenchmarkRun], top: int = 5) -> str:
    """Figure-17 locality delta: per-label misses, no-inlining vs inlining.

    The table makes the paper's locality claim concrete: the rows are the
    fields/arrays whose cache misses object inlining removed (negative
    delta) or introduced, ranked by reduction per benchmark.
    """
    header = ["benchmark", "label", "noinline misses", "inline misses", "delta"]
    rows: list[list[object]] = []
    for name, run in runs.items():
        before = _build_label_misses(run.builds["noinline"])
        after = _build_label_misses(run.builds["inline"])
        deltas = [
            (label, before.get(label, 0), after.get(label, 0))
            for label in sorted(set(before) | set(after))
        ]
        deltas.sort(key=lambda row: (row[2] - row[1], -row[1], row[0]))
        for label, b, a in deltas[:top]:
            rows.append([name, f"`{label}`", b, a, a - b])
    if not rows:
        return "(no locality data — harness ran without `locality=True`)"
    return _markdown_table(header, rows)


def _escape_section(runs: dict[str, BenchmarkRun]) -> str:
    """Escape delta: what the escape stage removes beyond object inlining.

    Compares the full ``inline`` build against the ``noescape`` ablation
    (identical pipeline with the escape stage disabled): allocations and
    cache misses eliminated, plus how many sites were scalar-replaced or
    moved to the frame region.
    """
    header = [
        "benchmark", "scalar sites", "frame sites",
        "allocs w/o escape", "allocs w/", "alloc delta",
        "misses w/o escape", "misses w/", "miss delta",
    ]
    rows: list[list[object]] = []
    for name, run in runs.items():
        if "noescape" not in run.builds:
            continue
        inline = run.builds["inline"]
        ablated = run.builds["noescape"]
        escape = inline.report.escape_stats
        with_stats = inline.run.stats
        without_stats = ablated.run.stats
        rows.append(
            [
                name,
                escape.scalar_replaced if escape else 0,
                escape.stack_allocated if escape else 0,
                without_stats.allocations,
                with_stats.allocations,
                with_stats.allocations - without_stats.allocations,
                without_stats.cache.misses,
                with_stats.cache.misses,
                with_stats.cache.misses - without_stats.cache.misses,
            ]
        )
    if not rows:
        return "(no escape data — harness ran without the `noescape` build)"
    return _markdown_table(header, rows)


def _decisions_section(runs: dict[str, BenchmarkRun]) -> str:
    lines: list[str] = []
    for name in BENCHMARKS:
        run = runs[name]
        lines.append(f"### {name}")
        lines.append("")
        plan = run.builds["inline"].report.plan
        for candidate in plan.candidates.values():
            if candidate.accepted:
                lines.append(f"- **{candidate.describe()}** — inlined")
            else:
                lines.append(
                    f"- {candidate.describe()} — kept as reference "
                    f"({candidate.reject_reason})"
                )
        lines.append("")
    return "\n".join(lines)


def generate_report(tracer=NULL_TRACER, jobs: int = 1, locality: bool = True) -> str:
    """Run everything and render the markdown report.

    ``jobs > 1`` runs each benchmark matrix on a process pool; the
    rendered report is identical to a serial run (only wall-clock and
    the timing tables' values change).  ``locality`` (on by default —
    attribution is observation-only and does not change any figure) adds
    the per-field cache-miss delta table for the Figure 17 programs.
    """
    runs = run_all(tracer=tracer, jobs=jobs)
    performance = run_performance_suite(tracer=tracer, jobs=jobs, locality=locality)

    sections: list[str] = [
        "# Object Inlining — full evaluation report",
        "",
        "Regenerated from scratch by `repro.bench.report`; compare against "
        "EXPERIMENTS.md.",
        "",
    ]
    for figure in (
        figures.figure14(runs),
        figures.figure15(runs),
        figures.figure16(runs),
        figures.figure17(performance),
    ):
        sections.append(f"## {figure.figure} — {figure.caption}")
        sections.append("")
        sections.append(_markdown_table(figure.header, figure.rows))
        sections.append("")

    sections.append("## Per-build VM statistics (Figure 17 programs)")
    sections.append("")
    sections.append(_stats_section(performance))
    sections.append("")
    sections.append("## Per-phase compile time (Figure 17 programs)")
    sections.append("")
    sections.append(_phase_time_section(performance))
    sections.append("")
    if locality:
        sections.append("## Locality delta (Figure 17 programs)")
        sections.append("")
        sections.append(
            "Cache misses per (class, field) label, Concert-without-inlining "
            "vs with; negative delta = misses the inlined layout eliminated.  "
            "Inline-array view accesses collapse onto the element class's "
            "field names, so rows compare like for like across layouts."
        )
        sections.append("")
        sections.append(_locality_section(performance))
        sections.append("")
    sections.append("## Escape delta (Figure 17 programs)")
    sections.append("")
    sections.append(
        "Allocations and cache misses the escape stage removes on top of "
        "object inlining (`inline` build vs the `noescape` ablation); "
        "negative deltas are eliminations.  Scalar sites dissolve into "
        "registers; frame sites move to the per-activation frame region."
    )
    sections.append("")
    sections.append(_escape_section(performance))
    sections.append("")
    sections.append("## Inlining decisions per benchmark")
    sections.append("")
    sections.append(_decisions_section(runs))
    sections.append("")
    sections.append("## Harness")
    sections.append("")
    mode = "serially" if jobs <= 1 else f"on {jobs} worker processes (`--jobs {jobs}`)"
    sections.append(
        f"This report was generated {mode}.  Parallel runs fan the "
        "(benchmark, build) pairs over a process pool; every "
        "figure-visible quantity above is identical between modes "
        "(differentially tested in `tests/test_parallel_bench.py`), but "
        "the per-phase compile-time table differs because pair-granular "
        "workers cannot share one analysis fixpoint across builds the "
        "way a serial session does."
    )
    return "\n".join(sections)


def write_report(
    path: str, tracer=NULL_TRACER, jobs: int = 1, locality: bool = True
) -> str:
    """Generate the report and write it to ``path``; returns the path."""
    text = generate_report(tracer=tracer, jobs=jobs, locality=locality)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
