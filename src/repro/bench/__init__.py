"""The paper's benchmark suite and the Figure 14-17 regeneration harness."""

from .figures import FigureData, all_figures, field_counts, figure14, figure15, figure16, figure17
from .harness import (
    BENCHMARKS,
    BUILDS,
    BenchmarkRun,
    BuildResult,
    PERFORMANCE_PROGRAMS,
    SuiteSamples,
    performance_specs,
    run_all,
    run_benchmark,
    run_named,
    run_performance_suite,
    run_suite_samples,
)
from .metadata import BenchmarkInfo, FieldCounts
from .report import generate_report, write_report

__all__ = [
    "all_figures",
    "BenchmarkInfo",
    "BenchmarkRun",
    "BENCHMARKS",
    "BuildResult",
    "BUILDS",
    "field_counts",
    "FieldCounts",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "FigureData",
    "PERFORMANCE_PROGRAMS",
    "SuiteSamples",
    "performance_specs",
    "run_all",
    "run_benchmark",
    "run_named",
    "run_performance_suite",
    "run_suite_samples",
    "generate_report",
    "write_report",
]
