"""Benchmark harness: compiles, optimizes, and runs every benchmark in
the three build configurations and collects everything the figures need.

Builds (matching the paper's Figure 17 bars):

- ``noinline`` — Concert without object inlining (devirtualization only).
- ``inline``   — Concert with object inlining.
- ``manual``   — the G++ ``-O2`` proxy: only manually annotated locations
  are inlined.

The (benchmark, build) pairs of the matrix are independent, so
``run_all``/``run_performance_suite`` accept ``jobs=N`` to fan them out
over a process pool.  Each worker owns its tracer and analysis cache and
returns a picklable :class:`_PairResult`; the parent reassembles the
exact :class:`BenchmarkRun` structures of the serial path (same build
order, same divergence checks, same trace-event schema), so figures,
reports, and baselines are bit-identical either way.  Every build gets
its own single-owner :class:`~repro.obs.Tracer` unconditionally — serial
or parallel — and the per-build events/aggregates are merged into the
caller's tracer at join (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..analysis import AnalysisConfig
from ..codegen import generate
from ..inlining.pipeline import OptimizeReport
from ..ir.model import IRProgram
from ..obs import MemorySink, NULL_TRACER, Tracer, TraceShard
from ..runtime import CacheConfig
from ..runtime.interp import RunResult
from ..session import BUILD_CONFIGS, Session
from .metadata import BenchmarkInfo
from .programs import oopack, polyover, richards, silo

BUILDS = ("noinline", "inline", "manual")

#: The Figure-17 suite additionally runs the escape-ablation build so the
#: report can show what escape analysis removes beyond object inlining.
PERFORMANCE_BUILDS = ("noinline", "inline", "noescape", "manual")

#: name -> (source text, info).  ``polyover`` is the combined program used
#: for Figures 14-16; the array/list splits are separate Figure 17 entries.
BENCHMARKS: dict[str, tuple[str, BenchmarkInfo]] = {
    "oopack": (oopack.SOURCE, oopack.INFO),
    "richards": (richards.SOURCE, richards.INFO),
    "silo": (silo.SOURCE, silo.INFO),
    "polyover": (polyover.SOURCE, polyover.INFO),
}

#: Figure 17 additionally reports polyover's two variants separately.
PERFORMANCE_PROGRAMS: dict[str, str] = {
    "oopack": oopack.SOURCE,
    "richards": richards.SOURCE,
    "silo": silo.SOURCE,
    "polyover (array)": polyover.SOURCE_ARRAY,
    "polyover (list)": polyover.SOURCE_LIST,
}


#: Compile-phase span names surfaced as per-build timing breakdowns.
#: ``analysis.fixpoint``/``analysis.record`` are sub-spans of ``analyze``
#: (the worklist iteration and the fact-recording sweep), broken out
#: because they dominate compile time and are the incremental engine's
#: target (ROADMAP).
PHASE_NAMES = (
    "analyze",
    "analysis.fixpoint",
    "analysis.record",
    "plan",
    "transform",
    "opt.inline_methods",
    "opt.escape",
    "opt.loadcse",
    "opt.dce",
)


@dataclass(slots=True)
class BuildResult:
    """One build of one benchmark."""

    build: str
    report: OptimizeReport
    run: RunResult
    code_size: int
    optimize_seconds: float
    run_seconds: float
    #: Wall time per compile phase (span name -> seconds), from the tracer.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Bounded locality summaries (``{"labels": ..., "heatmap": ...}``)
    #: when the harness ran with ``locality=True``; plain dicts so the
    #: parallel path ships them across the process pool unchanged.
    locality: dict | None = None

    @property
    def cycles(self) -> int:
        return self.run.stats.cycles()


@dataclass(slots=True)
class BenchmarkRun:
    """All builds of one benchmark, plus the uniform-model reference run."""

    name: str
    info: BenchmarkInfo | None
    program: IRProgram
    reference_output: list[str]
    builds: dict[str, BuildResult] = field(default_factory=dict)

    def speedup(self, build: str) -> float:
        """Speedup of ``build`` over the no-inlining baseline."""
        return self.builds["noinline"].cycles / self.builds[build].cycles

    def normalized_time(self, build: str) -> float:
        """Runtime normalized to Concert-without-inlining (Figure 17)."""
        return self.builds[build].cycles / self.builds["noinline"].cycles


def _phase_seconds(build_tracer: Tracer) -> dict[str, float]:
    """The per-build timing breakdown from a build's own tracer."""
    return {
        phase: totals[1]
        for phase, totals in build_tracer.span_totals.items()
        if phase in PHASE_NAMES
    }


def _build_one(
    session: Session,
    name: str,
    build: str,
    cache_config: CacheConfig | None,
    parent_tracer=NULL_TRACER,
    locality: bool = False,
) -> tuple[BuildResult, Tracer]:
    """Optimize and execute one build with its own single-owner tracer.

    The build tracer is unconditional: phase attribution comes straight
    from its ``span_totals`` (no snapshot diffing against a shared
    tracer, which double-counts as soon as builds overlap in time).  The
    caller merges the returned tracer into its own if it wants the event
    stream.

    With ``locality=True`` the run attributes every cache access to a
    ``(kind, class, field, site)`` label; the bounded summaries land on
    ``BuildResult.locality`` (and, via the build tracer, in the merged
    event stream as ``run.locality``/``run.heatmap``).
    """
    build_tracer = parent_tracer.child() if parent_tracer.enabled else Tracer()
    started = time.perf_counter()
    with build_tracer.span("bench.build", benchmark=name, build=build):
        report = session.optimize(BUILD_CONFIGS[build], tracer=build_tracer)
        optimized_at = time.perf_counter()
        run = session.run(
            build, cache_config, tracer=build_tracer, attribute_locality=locality
        )
    finished = time.perf_counter()
    locality_summary = None
    if run.stats.locality is not None:
        locality_summary = {
            "labels": run.stats.locality.label_summary(),
            "heatmap": run.stats.locality.heatmap_summary(),
        }
    result = BuildResult(
        build=build,
        report=report,
        run=run,
        code_size=generate(report.program).size_bytes,
        optimize_seconds=optimized_at - started,
        run_seconds=finished - optimized_at,
        phase_seconds=_phase_seconds(build_tracer),
        locality=locality_summary,
    )
    return result, build_tracer


def _check_output(
    name: str, build: str, run: RunResult, reference_output: list[str]
) -> None:
    if run.output != reference_output:
        raise AssertionError(
            f"{name}/{build}: transformed program output diverged:\n"
            f"  expected {reference_output}\n  actual   {run.output}"
        )


def run_benchmark(
    name: str,
    source: str,
    info: BenchmarkInfo | None = None,
    builds: tuple[str, ...] = BUILDS,
    cache_config: CacheConfig | None = None,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    locality: bool = False,
) -> BenchmarkRun:
    """Compile, optimize, and execute one benchmark in each build.

    Per-phase compile times are always collected (every build runs under
    its own in-memory tracer) and land in ``BuildResult.phase_seconds``;
    pass a real ``tracer`` to also receive the merged full event log.
    ``locality=True`` additionally attributes cache misses per build
    (see :func:`_build_one`).
    """
    # All builds analyze the same source program; the session's shared
    # analysis cache means builds with identical (program, config) pairs
    # reuse one fixpoint outright.
    session = Session(source, path=f"{name}.icc", config=config)
    program = session.compile()
    reference = session.run("plain", cache_config)
    bench = BenchmarkRun(
        name=name,
        info=info,
        program=program,
        reference_output=list(reference.output),
    )
    for build in builds:
        result, build_tracer = _build_one(
            session, name, build, cache_config, tracer, locality=locality
        )
        if tracer.enabled:
            tracer.merge(build_tracer)
        _check_output(name, build, result.run, bench.reference_output)
        bench.builds[build] = result
    return bench


# ----------------------------------------------------------------------
# The parallel matrix: (benchmark, build) pairs over a process pool.


@dataclass(slots=True)
class _PairResult:
    """What one worker ships back for one (benchmark, build) pair."""

    name: str
    build: str
    result: BuildResult
    trace: TraceShard
    #: Only the anchor pair of each benchmark carries the compiled
    #: program and the uniform-model reference output (see _run_matrix).
    program: IRProgram | None = None
    reference_output: list[str] | None = None


def _anchor_build(builds: tuple[str, ...]) -> str:
    """The build whose worker also provides the benchmark's program and
    reference output.

    It must be the ``inline`` build when present: instruction uids come
    from a process-global counter, so ``BenchmarkRun.program`` is only
    uid-consistent with the Figure-14 candidate plan if both come from
    the same worker's compile.
    """
    return "inline" if "inline" in builds else builds[0]


def _run_pair_worker(
    task: tuple[
        str, str, str, bool, CacheConfig | None, AnalysisConfig | None, bool
    ],
) -> _PairResult:
    """Process-pool entry: one (benchmark, build) pair, own tracer/cache."""
    name, source, build, is_anchor, cache_config, config, locality = task
    tracer = Tracer(MemorySink())
    session = Session(source, path=f"{name}.icc", config=config)
    program = session.compile()
    reference_output = None
    if is_anchor:
        reference_output = list(session.run("plain", cache_config).output)
    result, build_tracer = _build_one(
        session, name, build, cache_config, tracer, locality=locality
    )
    tracer.merge(build_tracer)
    return _PairResult(
        name=name,
        build=build,
        result=result,
        trace=tracer.shard(),
        program=program if is_anchor else None,
        reference_output=reference_output,
    )


def _run_matrix(
    specs: dict[str, tuple[str, BenchmarkInfo | None]],
    builds: tuple[str, ...],
    jobs: int,
    cache_config: CacheConfig | None = None,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    locality: bool = False,
) -> dict[str, BenchmarkRun]:
    """Run a benchmark × build matrix on ``jobs`` worker processes.

    Results are reassembled in the serial path's deterministic order
    (spec order, then build order) regardless of completion order, the
    same divergence assertion runs at join, and every worker's trace
    shard is merged into ``tracer`` — so every downstream consumer sees
    data identical to a serial run.  Note that pair granularity means a
    worker cannot reuse another build's analysis fixpoint (each owns its
    cache), so per-phase *timings* differ from a serial run even though
    every figure-visible quantity is identical; record and check
    baselines with the same ``--jobs`` mode.
    """
    anchor = _anchor_build(builds)
    tasks = [
        (name, source, build, build == anchor, cache_config, config, locality)
        for name, (source, _info) in specs.items()
        for build in builds
    ]
    pairs: dict[tuple[str, str], _PairResult] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        for pair in pool.map(_run_pair_worker, tasks):
            pairs[(pair.name, pair.build)] = pair
    runs: dict[str, BenchmarkRun] = {}
    for name, (_source, info) in specs.items():
        anchor_pair = pairs[(name, anchor)]
        bench = BenchmarkRun(
            name=name,
            info=info,
            program=anchor_pair.program,
            reference_output=anchor_pair.reference_output,
        )
        for build in builds:
            pair = pairs[(name, build)]
            _check_output(name, build, pair.result.run, bench.reference_output)
            bench.builds[build] = pair.result
            if tracer.enabled:
                tracer.merge(pair.trace)
        runs[name] = bench
    return runs


def run_named(name: str, builds: tuple[str, ...] = BUILDS, **kwargs) -> BenchmarkRun:
    """Run one of the four paper benchmarks by name."""
    source, info = BENCHMARKS[name]
    return run_benchmark(name, source, info, builds, **kwargs)


def run_all(
    builds: tuple[str, ...] = BUILDS, jobs: int = 1, **kwargs
) -> dict[str, BenchmarkRun]:
    """Run every Figure 14-16 benchmark (``jobs > 1`` fans the pairs out)."""
    if jobs > 1:
        return _run_matrix(dict(BENCHMARKS), builds, jobs, **kwargs)
    return {
        name: run_named(name, builds, **kwargs) for name in BENCHMARKS
    }


def run_performance_suite(jobs: int = 1, **kwargs) -> dict[str, BenchmarkRun]:
    """Run the Figure 17 program set (polyover split by variant)."""
    specs = {
        name: (source, BENCHMARKS.get(name, (None, None))[1])
        for name, source in PERFORMANCE_PROGRAMS.items()
    }
    if jobs > 1:
        return _run_matrix(specs, PERFORMANCE_BUILDS, jobs, **kwargs)
    results: dict[str, BenchmarkRun] = {}
    for name, (source, info) in specs.items():
        results[name] = run_benchmark(name, source, info, PERFORMANCE_BUILDS, **kwargs)
    return results


# ----------------------------------------------------------------------
# Repeated runs: the sample sheets the perf-history ledger records.


def performance_specs() -> dict[str, tuple[str, BenchmarkInfo | None]]:
    """The Figure 17 spec dict (what ``repro bench`` measures by default)."""
    return {
        name: (source, BENCHMARKS.get(name, (None, None))[1])
        for name, source in PERFORMANCE_PROGRAMS.items()
    }


def _locality_totals(locality: dict | None) -> dict | None:
    """Collapse a bounded locality summary to ledger totals."""
    if not locality:
        return None
    misses = accesses = 0
    for entry in locality.get("labels", []):
        misses += int(entry.get("misses", 0))
        accesses += int(entry.get("accesses", 0))
    return {"misses": misses, "accesses": accesses}


def _config_descriptor(obj: object) -> object:
    """A JSON-serializable description of a config object (for hashing)."""
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    return repr(obj)


@dataclass(slots=True)
class SuiteSamples:
    """``repeat`` suite runs folded into per-(benchmark, build) samples.

    ``runs`` is the final repetition's full :class:`BenchmarkRun` dict —
    figures, reports, and the baseline gate consume it exactly as they
    would a single run.  ``samples`` is the ledger payload: every
    repetition's cycles and wall times as parallel sample lists, which
    is what the statistical check (:mod:`repro.obs.history`) pools.
    """

    runs: dict[str, BenchmarkRun]
    samples: dict[str, dict[str, dict]]
    repeat: int
    jobs: int
    builds: tuple[str, ...]
    suite: str
    locality: bool = False

    def ledger_benchmarks(self) -> dict:
        """The ``benchmarks`` field of a ledger entry."""
        return self.samples

    def ledger_config(self) -> dict:
        """The hashed measurement configuration (``--jobs`` excluded:
        it is environment metadata, not part of what was measured)."""
        return {
            "suite": self.suite,
            "benchmarks": sorted(self.samples),
            "builds": list(self.builds),
            "locality": self.locality,
        }


def _fold_samples(
    samples: dict[str, dict[str, dict]], runs: dict[str, BenchmarkRun]
) -> None:
    """Append one repetition's measurements to the sample sheets."""
    for name, bench in runs.items():
        bench_samples = samples.setdefault(name, {})
        for build, result in bench.builds.items():
            slot = bench_samples.setdefault(
                build,
                {
                    "cycles": [],
                    "phases": {},
                    "optimize_seconds": [],
                    "run_seconds": [],
                    "code_size": result.code_size,
                    "locality": _locality_totals(result.locality),
                },
            )
            slot["cycles"].append(result.cycles)
            slot["optimize_seconds"].append(result.optimize_seconds)
            slot["run_seconds"].append(result.run_seconds)
            for phase, seconds in result.phase_seconds.items():
                slot["phases"].setdefault(phase, []).append(seconds)


def run_suite_samples(
    repeat: int = 1,
    jobs: int = 1,
    specs: dict[str, tuple[str, BenchmarkInfo | None]] | None = None,
    builds: tuple[str, ...] = BUILDS,
    cache_config: CacheConfig | None = None,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    locality: bool = False,
    suite: str = "figure17",
) -> SuiteSamples:
    """Run a suite ``repeat`` times and collect per-phase sample lists.

    Every repetition is a cold measurement — sessions (and their
    analysis caches) are rebuilt each time, so wall-time samples carry
    real run-to-run noise rather than cache hits.  The deterministic
    quantities (cycles, code size, locality totals) are identical across
    repetitions; recording them as lists anyway keeps the ledger shape
    uniform and lets the check prove they did not move.  All repetitions
    trace into ``tracer`` when one is given.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if specs is None:
        specs = performance_specs()
    samples: dict[str, dict[str, dict]] = {}
    runs: dict[str, BenchmarkRun] = {}
    for _ in range(repeat):
        if jobs > 1:
            runs = _run_matrix(
                specs,
                builds,
                jobs,
                cache_config=cache_config,
                config=config,
                tracer=tracer,
                locality=locality,
            )
        else:
            runs = {
                name: run_benchmark(
                    name,
                    source,
                    info,
                    builds,
                    cache_config=cache_config,
                    config=config,
                    tracer=tracer,
                    locality=locality,
                )
                for name, (source, info) in specs.items()
            }
        _fold_samples(samples, runs)
    return SuiteSamples(
        runs=runs,
        samples=samples,
        repeat=repeat,
        jobs=jobs,
        builds=builds,
        suite=suite,
        locality=locality,
    )
