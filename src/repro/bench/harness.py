"""Benchmark harness: compiles, optimizes, and runs every benchmark in
the three build configurations and collects everything the figures need.

Builds (matching the paper's Figure 17 bars):

- ``noinline`` — Concert without object inlining (devirtualization only).
- ``inline``   — Concert with object inlining.
- ``manual``   — the G++ ``-O2`` proxy: only manually annotated locations
  are inlined.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis import AnalysisCache, AnalysisConfig
from ..codegen import generate
from ..inlining.pipeline import OptimizeReport, optimize
from ..ir import compile_source
from ..ir.model import IRProgram
from ..obs import NULL_TRACER, Tracer
from ..runtime import CacheConfig, run_program
from ..runtime.interp import RunResult
from .metadata import BenchmarkInfo
from .programs import oopack, polyover, richards, silo

BUILDS = ("noinline", "inline", "manual")

#: name -> (source text, info).  ``polyover`` is the combined program used
#: for Figures 14-16; the array/list splits are separate Figure 17 entries.
BENCHMARKS: dict[str, tuple[str, BenchmarkInfo]] = {
    "oopack": (oopack.SOURCE, oopack.INFO),
    "richards": (richards.SOURCE, richards.INFO),
    "silo": (silo.SOURCE, silo.INFO),
    "polyover": (polyover.SOURCE, polyover.INFO),
}

#: Figure 17 additionally reports polyover's two variants separately.
PERFORMANCE_PROGRAMS: dict[str, str] = {
    "oopack": oopack.SOURCE,
    "richards": richards.SOURCE,
    "silo": silo.SOURCE,
    "polyover (array)": polyover.SOURCE_ARRAY,
    "polyover (list)": polyover.SOURCE_LIST,
}


#: Compile-phase span names surfaced as per-build timing breakdowns.
#: ``analysis.fixpoint``/``analysis.record`` are sub-spans of ``analyze``
#: (the worklist iteration and the fact-recording sweep), broken out
#: because they dominate compile time and are the incremental engine's
#: target (ROADMAP).
PHASE_NAMES = (
    "analyze",
    "analysis.fixpoint",
    "analysis.record",
    "plan",
    "transform",
    "opt.inline_methods",
    "opt.loadcse",
    "opt.dce",
)


@dataclass(slots=True)
class BuildResult:
    """One build of one benchmark."""

    build: str
    report: OptimizeReport
    run: RunResult
    code_size: int
    optimize_seconds: float
    run_seconds: float
    #: Wall time per compile phase (span name -> seconds), from the tracer.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.run.stats.cycles()


@dataclass(slots=True)
class BenchmarkRun:
    """All builds of one benchmark, plus the uniform-model reference run."""

    name: str
    info: BenchmarkInfo | None
    program: IRProgram
    reference_output: list[str]
    builds: dict[str, BuildResult] = field(default_factory=dict)

    def speedup(self, build: str) -> float:
        """Speedup of ``build`` over the no-inlining baseline."""
        return self.builds["noinline"].cycles / self.builds[build].cycles

    def normalized_time(self, build: str) -> float:
        """Runtime normalized to Concert-without-inlining (Figure 17)."""
        return self.builds[build].cycles / self.builds["noinline"].cycles


_OPTIMIZE_KW: dict[str, dict[str, bool]] = {
    "noinline": {"inline": False},
    "inline": {"inline": True},
    "manual": {"manual_only": True},
}


def run_benchmark(
    name: str,
    source: str,
    info: BenchmarkInfo | None = None,
    builds: tuple[str, ...] = BUILDS,
    cache_config: CacheConfig | None = None,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
) -> BenchmarkRun:
    """Compile, optimize, and execute one benchmark in each build.

    Per-phase compile times are always collected (via an in-memory tracer
    when no ``tracer`` is given) and land in ``BuildResult.phase_seconds``;
    pass a real ``tracer`` to also stream the full event log.
    """
    program = compile_source(source, f"{name}.icc")
    reference = run_program(program, cache_config)
    bench = BenchmarkRun(
        name=name,
        info=info,
        program=program,
        reference_output=list(reference.output),
    )
    # All builds analyze the same source program; the inline and manual
    # builds share identical (program, config) pairs, so the second of
    # the two reuses the first's analysis outright.
    analysis_cache = AnalysisCache()
    for build in builds:
        # Phase timings come from span aggregates; when the caller shares
        # one tracer across builds we diff around this build's work.
        build_tracer = tracer if tracer.enabled else Tracer()
        phases_before = {
            phase: totals[1] for phase, totals in build_tracer.span_totals.items()
        }
        started = time.perf_counter()
        with build_tracer.span("bench.build", benchmark=name, build=build):
            report = optimize(
                program,
                config=config,
                tracer=build_tracer,
                analysis_cache=analysis_cache,
                **_OPTIMIZE_KW[build],
            )
            optimized_at = time.perf_counter()
            run = run_program(report.program, cache_config, tracer=build_tracer)
        finished = time.perf_counter()
        phase_seconds = {
            phase: totals[1] - phases_before.get(phase, 0.0)
            for phase, totals in build_tracer.span_totals.items()
            if phase in PHASE_NAMES
        }
        if run.output != bench.reference_output:
            raise AssertionError(
                f"{name}/{build}: transformed program output diverged:\n"
                f"  expected {bench.reference_output}\n  actual   {run.output}"
            )
        bench.builds[build] = BuildResult(
            build=build,
            report=report,
            run=run,
            code_size=generate(report.program).size_bytes,
            optimize_seconds=optimized_at - started,
            run_seconds=finished - optimized_at,
            phase_seconds=phase_seconds,
        )
    return bench


def run_named(name: str, builds: tuple[str, ...] = BUILDS, **kwargs) -> BenchmarkRun:
    """Run one of the four paper benchmarks by name."""
    source, info = BENCHMARKS[name]
    return run_benchmark(name, source, info, builds, **kwargs)


def run_all(builds: tuple[str, ...] = BUILDS, **kwargs) -> dict[str, BenchmarkRun]:
    """Run every Figure 14-16 benchmark."""
    return {
        name: run_named(name, builds, **kwargs) for name in BENCHMARKS
    }


def run_performance_suite(**kwargs) -> dict[str, BenchmarkRun]:
    """Run the Figure 17 program set (polyover split by variant)."""
    results: dict[str, BenchmarkRun] = {}
    for name, source in PERFORMANCE_PROGRAMS.items():
        info = BENCHMARKS.get(name, (None, None))[1]
        results[name] = run_benchmark(name, source, info, BUILDS, **kwargs)
    return results
