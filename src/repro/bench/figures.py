"""Regeneration of every figure in the paper's evaluation (§6).

Each ``figure*`` function returns structured rows; ``render`` turns any
of them into an aligned text table.  The benchmark harness caches one
full run so all four figures can be produced together (the CLI's
``bench --figure all``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..inlining.pipeline import candidate_is_declared_inline
from .harness import BENCHMARKS, BenchmarkRun, run_all, run_performance_suite
from .metadata import FieldCounts


@dataclass(slots=True)
class FigureData:
    """One regenerated figure: header, rows, and a short caption."""

    figure: str
    caption: str
    header: list[str]
    rows: list[list[object]]

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        text_rows = [[_fmt(cell) for cell in row] for row in self.rows]
        for row in text_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"{self.figure}: {self.caption}"]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.header)))
        lines.append("  ".join("-" * w for w in widths))
        for row in text_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


# ----------------------------------------------------------------------
# Figure 14 — inlinable field counts.


def field_counts(run: BenchmarkRun) -> FieldCounts:
    """The four Figure 14 bars for one benchmark run."""
    plan = run.builds["inline"].report.plan
    candidates = list(plan.candidates.values())
    declared = sum(
        1 for c in candidates if candidate_is_declared_inline(run.program, c)
    )
    return FieldCounts(
        benchmark=run.name,
        total_object_fields=len(candidates),
        ideal_inlinable=run.info.ideal_inlinable if run.info else 0,
        declared_inline_cpp=declared,
        automatically_inlined=sum(1 for c in candidates if c.accepted),
    )


def figure14(runs: dict[str, BenchmarkRun] | None = None) -> FigureData:
    """Inlinable field counts per benchmark (paper Figure 14)."""
    runs = runs or run_all()
    rows = []
    for name in BENCHMARKS:
        counts = field_counts(runs[name])
        rows.append(
            [
                counts.benchmark,
                counts.total_object_fields,
                counts.ideal_inlinable,
                counts.declared_inline_cpp,
                counts.automatically_inlined,
            ]
        )
    return FigureData(
        figure="Figure 14",
        caption="Inlinable field counts (object-holding locations)",
        header=["benchmark", "total", "ideal", "declared C++", "automatic"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 15 — generated code size.


def figure15(runs: dict[str, BenchmarkRun] | None = None) -> FigureData:
    """Generated code size with vs without inlining (paper Figure 15)."""
    runs = runs or run_all()
    rows = []
    for name in BENCHMARKS:
        run = runs[name]
        without = run.builds["noinline"].code_size
        with_inlining = run.builds["inline"].code_size
        rows.append(
            [
                name,
                round(without / 1024, 1),
                round(with_inlining / 1024, 1),
                round(with_inlining / without, 3),
            ]
        )
    return FigureData(
        figure="Figure 15",
        caption="Generated code size in KiB (reachable C-like code)",
        header=["benchmark", "without KiB", "with KiB", "ratio"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 16 — analysis sensitivity (method contours per method).


def figure16(runs: dict[str, BenchmarkRun] | None = None) -> FigureData:
    """Method contours required per method (paper Figure 16), plus the
    §6.2.2 observation that object contours do not grow."""
    runs = runs or run_all()
    rows = []
    for name in BENCHMARKS:
        run = runs[name]
        without = run.builds["noinline"].report.analysis
        with_inlining = run.builds["inline"].report.analysis
        rows.append(
            [
                name,
                round(without.method_contours_per_method(), 2),
                round(with_inlining.method_contours_per_method(), 2),
                without.object_contour_count(),
                with_inlining.object_contour_count(),
            ]
        )
    return FigureData(
        figure="Figure 16",
        caption="Method contours per method; object contours (§6.2.2)",
        header=[
            "benchmark",
            "contours/method w/o",
            "contours/method w/",
            "obj contours w/o",
            "obj contours w/",
        ],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 17 — performance.


def figure17(runs: dict[str, BenchmarkRun] | None = None) -> FigureData:
    """Runtime normalized to Concert-without-inlining (paper Figure 17).

    Lower is better; the 'G++ -O2' column is the manual-inlining proxy.
    """
    runs = runs or run_performance_suite()
    rows = []
    for name, run in runs.items():
        rows.append(
            [
                name,
                1.0,
                round(run.normalized_time("inline"), 3),
                round(run.normalized_time("manual"), 3),
                round(run.speedup("inline"), 2),
            ]
        )
    return FigureData(
        figure="Figure 17",
        caption="Runtime normalized to Concert without inlining (lower is better)",
        header=[
            "benchmark",
            "Concert w/o",
            "Concert w/",
            "manual (G++ proxy)",
            "speedup",
        ],
        rows=rows,
    )


def all_figures(jobs: int = 1) -> list[FigureData]:
    """Regenerate every figure, sharing one benchmark run."""
    runs = run_all(jobs=jobs)
    performance = run_performance_suite(jobs=jobs)
    return [figure14(runs), figure15(runs), figure16(runs), figure17(performance)]
