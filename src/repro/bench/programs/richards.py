"""Richards operating-system simulator (mini-ICC++ port).

The classic Deutsch/Richards task scheduler: an idle task drives two
device tasks, two handler tasks, and a worker task by circulating work
and device packets through priority queues.

Two inlining opportunities the paper calls out:

- ``Packet.a2`` — a four-slot data array, ``int data[4]`` in C++
  (declared inline there): inlined as an *embedded fixed-length array*.
- ``Task.priv`` — the private data pointer, ``void*`` in C++ and hence
  **not declarable inline there**: every task subclass stores a different
  record type, so the automatic optimizer splits the Task class per
  subclass and inlines each record independently (Figure 14's
  "automatic > declared" for Richards).

Known limit reproduced: the global ``tasktab`` array holds tasks of
different classes (and tasks are compared against nil while walking the
run list), so its elements are *not* inlined — the paper's polymorphic
task-array limitation.
"""

from __future__ import annotations

from ..metadata import BenchmarkInfo

SOURCE = r"""
// Deutsch-Richards OS simulator.

var ID_IDLE = 0;
var ID_WORKER = 1;
var ID_HANDLER_A = 2;
var ID_HANDLER_B = 3;
var ID_DEVICE_A = 4;
var ID_DEVICE_B = 5;

var KIND_DEVICE = 0;
var KIND_WORK = 1;

var COUNT = 1000;

// Scheduler state.
var task_list = nil;
var current_task = nil;
var current_id = 0;
var tasktab = nil;
var queue_count = 0;
var hold_count = 0;

// 16-bit xor, bit by bit (the language has no bitwise operators).
def xor_bits(a, b) {
  var result = 0;
  var bit = 1;
  for (var i = 0; i < 16; i = i + 1) {
    var abit = a % 2;
    var bbit = b % 2;
    if (abit != bbit) {
      result = result + bit;
    }
    a = (a - abit) / 2;
    b = (b - bbit) / 2;
    bit = bit * 2;
  }
  return result;
}

class Packet {
  var link;
  var id;
  var kind;
  var a1;
  var inline a2;   // int data[4] in the C++ original
  def init(link, id, kind) {
    this.link = link;
    this.id = id;
    this.kind = kind;
    this.a1 = 0;
    var d = array(4);
    for (var i = 0; i < 4; i = i + 1) {
      d[i] = 0;
    }
    this.a2 = d;
  }
}

def packet_append(pkt, list) {
  pkt.link = nil;
  if (list == nil) {
    return pkt;
  }
  var p = list;
  while (p.link != nil) {
    p = p.link;
  }
  p.link = pkt;
  return list;
}

// Per-task private data records: the C++ original stores these through a
// void* slot, so they cannot be declared inline there.
class IdleRec {
  var control;
  var count;
  def init(control, count) {
    this.control = control;
    this.count = count;
  }
}
class WorkerRec {
  var destination;
  var count;
  def init(destination, count) {
    this.destination = destination;
    this.count = count;
  }
}
class HandlerRec {
  var work_in;
  var device_in;
  def init() {
    this.work_in = nil;
    this.device_in = nil;
  }
}
class DeviceRec {
  var pending;
  def init() {
    this.pending = nil;
  }
}

class Task {
  var link;
  var id;
  var pri;
  var queue;
  var held;
  var waiting;
  var runnable;
  var priv;        // void* in C++: cannot be declared inline there
  def init(id, pri, queue, waiting, runnable, priv) {
    this.link = task_list;
    this.id = id;
    this.pri = pri;
    this.queue = queue;
    this.held = false;
    this.waiting = waiting;
    this.runnable = runnable;
    this.priv = priv;
    task_list = this;
    tasktab[id] = this;
  }
  def is_held_or_suspended() {
    return this.held || (this.waiting && !this.runnable);
  }
  def take_packet() {
    // Dequeue the pending packet when in the waiting-with-packet state.
    var msg = nil;
    if (this.waiting && this.runnable) {
      msg = this.queue;
      this.queue = msg.link;
      this.waiting = false;
      this.runnable = this.queue != nil;
    }
    return msg;
  }
  def run_task() {
    var msg = this.take_packet();
    return this.run(msg);
  }
  def check_priority_add(task, pkt) {
    if (this.queue == nil) {
      this.queue = pkt;
      this.runnable = true;
      if (this.pri > task.pri) {
        return this;
      }
    } else {
      this.queue = packet_append(pkt, this.queue);
    }
    return task;
  }
}

def release(id) {
  var t = tasktab[id];
  if (t == nil) {
    return t;
  }
  t.held = false;
  if (t.pri > current_task.pri) {
    return t;
  }
  return current_task;
}

def hold_self() {
  hold_count = hold_count + 1;
  current_task.held = true;
  return current_task.link;
}

def suspend_self() {
  current_task.waiting = true;
  return current_task;
}

def queue_packet(pkt) {
  var t = tasktab[pkt.id];
  if (t == nil) {
    return t;
  }
  queue_count = queue_count + 1;
  pkt.link = nil;
  pkt.id = current_id;
  return t.check_priority_add(current_task, pkt);
}

class IdleTask : Task {
  def run(pkt) {
    var rec = this.priv;
    rec.count = rec.count - 1;
    if (rec.count == 0) {
      return hold_self();
    }
    if (rec.control % 2 == 0) {
      rec.control = rec.control / 2;
      return release(ID_DEVICE_A);
    }
    rec.control = xor_bits(rec.control / 2, 53256);
    return release(ID_DEVICE_B);
  }
}

class WorkerTask : Task {
  def run(pkt) {
    var rec = this.priv;
    if (pkt == nil) {
      return suspend_self();
    }
    var dest = ID_HANDLER_A;
    if (rec.destination == ID_HANDLER_A) {
      dest = ID_HANDLER_B;
    }
    rec.destination = dest;
    pkt.id = dest;
    pkt.a1 = 0;
    var d = pkt.a2;
    for (var i = 0; i < 4; i = i + 1) {
      rec.count = rec.count + 1;
      if (rec.count > 26) {
        rec.count = 1;
      }
      d[i] = 64 + rec.count;
    }
    return queue_packet(pkt);
  }
}

class HandlerTask : Task {
  def run(pkt) {
    var rec = this.priv;
    if (pkt != nil) {
      if (pkt.kind == KIND_WORK) {
        rec.work_in = packet_append(pkt, rec.work_in);
      } else {
        rec.device_in = packet_append(pkt, rec.device_in);
      }
    }
    var work = rec.work_in;
    if (work != nil) {
      var count = work.a1;
      if (count < 4) {
        var dev = rec.device_in;
        if (dev != nil) {
          rec.device_in = dev.link;
          var wd = work.a2;
          dev.a1 = wd[count];
          work.a1 = count + 1;
          return queue_packet(dev);
        }
      } else {
        rec.work_in = work.link;
        return queue_packet(work);
      }
    }
    return suspend_self();
  }
}

class DeviceTask : Task {
  def run(pkt) {
    var rec = this.priv;
    if (pkt == nil) {
      var pending = rec.pending;
      if (pending == nil) {
        return suspend_self();
      }
      rec.pending = nil;
      return queue_packet(pending);
    }
    rec.pending = pkt;
    return hold_self();
  }
}

def schedule() {
  current_task = task_list;
  while (current_task != nil) {
    if (current_task.is_held_or_suspended()) {
      current_task = current_task.link;
    } else {
      current_id = current_task.id;
      current_task = current_task.run_task();
    }
  }
}

def main() {
  tasktab = array(6);
  for (var i = 0; i < 6; i = i + 1) {
    tasktab[i] = nil;
  }
  queue_count = 0;
  hold_count = 0;
  task_list = nil;

  // Idle task: runnable, no queue.
  var idle = new IdleTask(ID_IDLE, 0, nil, false, true, new IdleRec(1, COUNT));

  // Worker task: waiting with two work packets.
  var wq = new Packet(nil, ID_WORKER, KIND_WORK);
  wq = new Packet(wq, ID_WORKER, KIND_WORK);
  var worker = new WorkerTask(
      ID_WORKER, 1000, wq, true, true, new WorkerRec(ID_HANDLER_A, 0));

  // Handler tasks: waiting with three device packets each.
  var ha = new Packet(nil, ID_DEVICE_A, KIND_DEVICE);
  ha = new Packet(ha, ID_DEVICE_A, KIND_DEVICE);
  ha = new Packet(ha, ID_DEVICE_A, KIND_DEVICE);
  var handler_a = new HandlerTask(
      ID_HANDLER_A, 2000, ha, true, true, new HandlerRec());

  var hb = new Packet(nil, ID_DEVICE_B, KIND_DEVICE);
  hb = new Packet(hb, ID_DEVICE_B, KIND_DEVICE);
  hb = new Packet(hb, ID_DEVICE_B, KIND_DEVICE);
  var handler_b = new HandlerTask(
      ID_HANDLER_B, 3000, hb, true, true, new HandlerRec());

  // Device tasks: waiting, no packet.
  var dev_a = new DeviceTask(ID_DEVICE_A, 4000, nil, true, false, new DeviceRec());
  var dev_b = new DeviceTask(ID_DEVICE_B, 5000, nil, true, false, new DeviceRec());

  schedule();

  print("richards queue_count", queue_count, "hold_count", hold_count);
  assert_true(queue_count == 2322);
  assert_true(hold_count == 928);
}
"""

INFO = BenchmarkInfo(
    name="richards",
    description="Deutsch-Richards OS simulator with polymorphic task records",
    ideal_inlinable=2,
    expected_accepted=("Packet.a2", "Task.priv"),
    expected_rejected=("Task.link", "Task.queue", "array-site"),
    notes=(
        "Task.priv is the void* private data pointer C++ cannot declare "
        "inline; the optimizer inlines it per subclass (automatic > "
        "declared).  The polymorphic tasktab array is a known limit."
    ),
)
