"""Silo event-driven simulator (mini-ICC++ port).

Silo is an event-driven simulation benchmark (University of Colorado
repository): tokens arrive at service facilities, wait in FIFO queues,
are served for pseudo-random times, and depart; a global time-ordered
event list drives the simulation.

Inlining opportunities from the paper's discussion:

- Each ``Facility`` owns a ``Queue`` wrapper and a ``Stats`` record —
  both inline-allocated in C++ (``var inline`` here) and recovered
  automatically.
- The waiting queues' cons cells are merged with their data: each
  enqueue wraps a freshly created ``Request`` record, so ``QCell.req``
  inlines — C++ *cannot* express that (a list node conceptually holds a
  reference), hence "automatic > declared" for Silo.

Known limit reproduced: the global event list recycles ``Event``
objects (a popped event is re-initialized and re-scheduled), so the
value stored into ``EvCell.ev`` flows from a field read, assignment
specialization fails, and the event-list cons cells are **not** merged
— exactly the paper's Silo limitation (it would need strong aliasing
information to prove an event is in the list at most once).
"""

from __future__ import annotations

from ..metadata import BenchmarkInfo

SOURCE = r"""
// Silo: event-driven queueing-network simulator.

var EV_ARRIVAL = 0;
var EV_DEPART = 1;

var NUM_FACILITIES = 4;
var NUM_TOKENS = 120;
var HORIZON = 12000;

var seed = 12345;
var now = 0;
var event_list = nil;   // global time-ordered cons list of events
var free_events = nil;  // recycled Event objects (the aliasing hazard)
var facilities = nil;
var completed = 0;
var hops = 0;

def next_random(limit) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  return (seed / 65536) % limit;
}

// ----------------------------------------------------------------------
// Tokens: the customers moving through the network.

class Token {
  var id;
  var created_at;
  var visits;
  def init(id, created_at) {
    this.id = id;
    this.created_at = created_at;
    this.visits = 0;
  }
}

// ----------------------------------------------------------------------
// Per-enqueue request record: created fresh for every enqueue, so the
// queue cons cells merge with it (cons + data combined).

class Request {
  var token_id;
  var enqueued_at;
  var service;
  def init(token_id, enqueued_at, service) {
    this.token_id = token_id;
    this.enqueued_at = enqueued_at;
    this.service = service;
  }
  def wait_until(t) {
    return t - this.enqueued_at;
  }
}

class QCell {
  var req;    // merged with its data by object inlining
  var next;
  def init(req, next) {
    this.req = req;
    this.next = next;
  }
}

// FIFO queue wrapper: inline allocated in the C++ original.
class Queue {
  var head;
  var tail;
  var length;
  def init() {
    this.head = nil;
    this.tail = nil;
    this.length = 0;
  }
  def enqueue_request(token_id, at, service) {
    var cell = new QCell(new Request(token_id, at, service), nil);
    if (this.tail == nil) {
      this.head = cell;
    } else {
      this.tail.next = cell;
    }
    this.tail = cell;
    this.length = this.length + 1;
  }
  def is_empty() {
    return this.head == nil;
  }
  def front() {
    return this.head.req;
  }
  def dequeue() {
    var cell = this.head;
    this.head = cell.next;
    if (this.head == nil) {
      this.tail = nil;
    }
    this.length = this.length - 1;
  }
}

// Running statistics record: inline allocated in the C++ original.
class Stats {
  var served;
  var busy_time;
  var total_wait;
  def init() {
    this.served = 0;
    this.busy_time = 0;
    this.total_wait = 0;
  }
  def record(wait, service) {
    this.served = this.served + 1;
    this.busy_time = this.busy_time + service;
    this.total_wait = this.total_wait + wait;
  }
}

class Facility {
  var id;
  var busy;
  var inline waiting;   // Queue wrapper: declared inline in C++
  var inline stats;     // Stats record: declared inline in C++
  def init(id) {
    this.id = id;
    this.busy = false;
    this.waiting = new Queue();
    this.stats = new Stats();
  }
  def request(token_id, at, service) {
    this.waiting.enqueue_request(token_id, at, service);
    if (!this.busy) {
      this.start_next(at);
      return true;
    }
    return false;
  }
  def start_next(at) {
    // Begin serving the front request; schedules its departure.
    var req = this.waiting.front();
    this.busy = true;
    this.stats.record(req.wait_until(at), req.service);
    schedule(at + req.service, EV_DEPART, this.id, req.token_id);
  }
  def release(at) {
    this.waiting.dequeue();
    if (this.waiting.is_empty()) {
      this.busy = false;
    } else {
      this.start_next(at);
    }
  }
}

// ----------------------------------------------------------------------
// Global event list: time-ordered cons cells over *recycled* events.

class Event {
  var time;
  var kind;
  var facility_id;
  var token_id;
  var next_free;   // intrusive recycling free-list link
  def fill(time, kind, facility_id, token_id) {
    this.time = time;
    this.kind = kind;
    this.facility_id = facility_id;
    this.token_id = token_id;
    return this;
  }
}

class EvCell {
  var ev;     // NOT inlinable: events are recycled (aliasing hazard)
  var next;
  def init(ev, next) {
    this.ev = ev;
    this.next = next;
  }
}

def alloc_event() {
  if (free_events == nil) {
    return new Event();
  }
  var ev = free_events;
  free_events = ev.next_free;
  return ev;
}

def recycle_event(ev) {
  ev.next_free = free_events;
  free_events = ev;
}

def schedule(time, kind, facility_id, token_id) {
  var ev = alloc_event();
  ev.fill(time, kind, facility_id, token_id);
  // Ordered insert, FIFO among equal timestamps.
  if (event_list == nil || event_list.ev.time > time) {
    event_list = new EvCell(ev, event_list);
    return;
  }
  var p = event_list;
  while (p.next != nil && p.next.ev.time <= time) {
    p = p.next;
  }
  p.next = new EvCell(ev, p.next);
}

def pop_event() {
  var cell = event_list;
  event_list = cell.next;
  return cell.ev;
}

// ----------------------------------------------------------------------
// Simulation driver.

def route(token_id, at) {
  // Send the token to a pseudo-random facility.
  hops = hops + 1;
  var f = facilities[next_random(NUM_FACILITIES)];
  var service = 5 + next_random(20);
  f.request(token_id, at, service);
}

def run_simulation() {
  while (event_list != nil) {
    var ev = pop_event();
    now = ev.time;
    if (now > HORIZON) {
      recycle_event(ev);
      return;
    }
    if (ev.kind == EV_ARRIVAL) {
      route(ev.token_id, now);
    } else {
      var f = facilities[ev.facility_id];
      f.release(now);
      completed = completed + 1;
      if (completed % 7 != 0) {
        route(ev.token_id, now);
      }
    }
    recycle_event(ev);
  }
}

def main() {
  facilities = array(NUM_FACILITIES);
  for (var i = 0; i < NUM_FACILITIES; i = i + 1) {
    var f = new Facility(i);
    facilities[i] = f;
    // Facilities are re-read after placement (configuration pass), so
    // the facilities array is not elem-inlinable.
    f.busy = false;
  }
  for (var t = 0; t < NUM_TOKENS; t = t + 1) {
    var tok = new Token(t, 0);
    schedule(next_random(50), EV_ARRIVAL, 0, tok.id);
  }
  run_simulation();

  var served = 0;
  var waited = 0;
  var busy = 0;
  for (var j = 0; j < NUM_FACILITIES; j = j + 1) {
    var fac = facilities[j];
    served = served + fac.stats.served;
    waited = waited + fac.stats.total_wait;
    busy = busy + fac.stats.busy_time;
  }
  print("silo completed", completed, "served", served, "hops", hops);
  print("silo waited", waited, "busy", busy, "t", now);
  assert_true(completed > 0);
  assert_true(served >= completed);
}
"""

INFO = BenchmarkInfo(
    name="silo",
    description="Event-driven queueing-network simulator with recycled events",
    ideal_inlinable=4,
    expected_accepted=("Facility.waiting", "Facility.stats", "QCell.req"),
    expected_rejected=("EvCell.ev",),
    notes=(
        "Queue wrapper and stats record are declared inline in C++; the "
        "queue cons cells merge with fresh Request records automatically "
        "(not expressible in C++).  The recycled global event list is the "
        "paper's Silo limitation: EvCell.ev must stay a reference."
    ),
)
