"""OOPACK ComplexBenchmark (mini-ICC++ port).

OOPACK is KAI's suite of kernels testing whether a compiler removes
object-oriented abstraction.  The paper reports timings for the
ComplexBenchmark kernel: arrays of complex-number *objects* that C++
would inline-allocate (``Complex a[N]``) but a uniform object model
stores as arrays of references.

Object inlining converts the three arrays to parallel-array layout
(the paper notes the Fortran-style layout helps cache behaviour) and
stack-allocates the per-element constructor results.
"""

from __future__ import annotations

from ..metadata import BenchmarkInfo

SOURCE = r"""
// OOPACK ComplexBenchmark: c[i] = c[i] + a[i]*b[i] over arrays of
// complex-number objects, iterated to amortize setup.

class Complex {
  var re;
  var im;
  def init(r, i) {
    this.re = r;
    this.im = i;
  }
  def norm() {
    return this.re * this.re + this.im * this.im;
  }
}

var N = 512;
var ITERS = 8;

def make_operand(n, scale, bias) {
  // In C++ these are arrays of Complex values (inline allocated).
  var a = inline_array(n);
  for (var i = 0; i < n; i = i + 1) {
    var x = float(i % 97) * scale + bias;
    var y = float((i * 13) % 89) * scale - bias;
    a[i] = new Complex(x * 0.01, y * 0.01);
  }
  return a;
}

def make_accumulator(n) {
  var c = inline_array(n);
  for (var i = 0; i < n; i = i + 1) {
    c[i] = new Complex(0.0, 0.0);
  }
  return c;
}

def complex_kernel(a, b, c, n) {
  // c[i] = c[i] + a[i] * b[i].  As in the C++ original, each iteration
  // constructs a complex value into the destination slot; the uniform
  // model pays a heap allocation for it, inline allocation does not.
  for (var i = 0; i < n; i = i + 1) {
    var ci = c[i];
    var ai = a[i];
    var bi = b[i];
    var nr = ci.re + ai.re * bi.re - ai.im * bi.im;
    var ni = ci.im + ai.re * bi.im + ai.im * bi.re;
    c[i] = new Complex(nr, ni);
  }
}

def checksum(c, n) {
  var total = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    total = total + c[i].norm();
  }
  return total;
}

def main() {
  var a = make_operand(N, 1.0, 0.5);
  var b = make_operand(N, 2.0, -0.25);
  var c = make_accumulator(N);
  for (var iter = 0; iter < ITERS; iter = iter + 1) {
    complex_kernel(a, b, c, N);
  }
  print("oopack complex checksum", checksum(c, N));
}
"""

INFO = BenchmarkInfo(
    name="oopack",
    description=(
        "KAI OOPACK ComplexBenchmark: complex multiply-accumulate over "
        "arrays of complex-number objects"
    ),
    ideal_inlinable=2,
    expected_accepted=("array-site",),
    expected_rejected=(),
    notes=(
        "All three arrays of Complex are declared inline in C++ "
        "(inline_array); the automatic optimizer must match the manual "
        "allocation exactly (Figure 14: automatic == declared for OOPACK)."
    ),
)
