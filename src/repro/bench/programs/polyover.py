"""Polygon overlay (mini-ICC++ port).

The benchmark from *Parallel Programming Using C++* (Wilson & Lu):
compute the overlay of two polygon maps — every non-empty pairwise
intersection between map A and map B — using several data-structure
strategies.  The paper reports two variants (Figure 17 shows both):

- **array**: maps as arrays of polygons (inline allocated in C++), plus
  a spatial-hash grid whose buckets are chains of *pool-allocated cons
  cells that reference each other* — the paper's most interesting case,
  requiring the analysis to flow tags through object fields.
- **list**: maps as cons lists; map cells and result cells merge with
  their polygons (cons + data combined — not expressible in C++).

Known limit reproduced: the post-pass "summary" list stores polygons
*read back out of result cells*, so assignment specialization cannot
prove ownership and those cells stay unmerged — the analog of the
paper's "a list constructed in a loop cannot be blocked" limitation.
"""

from __future__ import annotations

from ..metadata import BenchmarkInfo

_COMMON = r"""
// Polygon overlay: intersect two maps of axis-aligned boxes.

var seed = 99991;

def next_random(limit) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  return (seed / 65536) % limit;
}

class Polygon {
  var xl;
  var yl;
  var xh;
  var yh;
  def init(xl, yl, xh, yh) {
    this.xl = xl;
    this.yl = yl;
    this.xh = xh;
    this.yh = yh;
  }
  def area() {
    return (this.xh - this.xl) * (this.yh - this.yl);
  }
}

def random_box(span) {
  // A small box inside the [0, 1000)^2 map plane.
  var x = float(next_random(960));
  var y = float(next_random(960));
  var w = 2.0 + float(next_random(span));
  var h = 2.0 + float(next_random(span));
  return new Polygon(x, y, x + w, y + h);
}

// Result list: freshly computed intersection polygons merged with their
// cons cells (cannot be expressed with C++ inline declarations).
class RCell {
  var poly;
  var next;
  def init(poly, next) {
    this.poly = poly;
    this.next = next;
  }
}

var result_count = 0;
var result_area = 0.0;

def tally_results(results) {
  result_count = 0;
  result_area = 0.0;
  var r = results;
  while (r != nil) {
    result_count = result_count + 1;
    result_area = result_area + r.poly.area();
    r = r.next;
  }
}

// The post-pass summary list stores polygons read back out of result
// cells: ownership cannot be proven, so these cells stay unmerged (the
// paper's loop-constructed-list limitation analog).
class SCell {
  var poly;
  var next;
  def init(poly, next) {
    this.poly = poly;
    this.next = next;
  }
}

def summarize_large(results, threshold) {
  var summary = nil;
  var r = results;
  while (r != nil) {
    var p = r.poly;
    if (p.area() > threshold) {
      summary = new SCell(p, summary);
    }
    r = r.next;
  }
  var n = 0;
  var s = summary;
  while (s != nil) {
    n = n + 1;
    s = s.next;
  }
  return n;
}
"""

_LIST = r"""
// ---------------------------------------------------------------------
// List variant: maps as cons lists, O(n^2) pairwise intersection.

class MCell {
  var poly;
  var next;
  def init(poly, next) {
    this.poly = poly;
    this.next = next;
  }
}

def make_map_list(n, span) {
  var head = nil;
  for (var i = 0; i < n; i = i + 1) {
    head = new MCell(random_box(span), head);
  }
  return head;
}

def overlay_lists(map_a, map_b) {
  var out = nil;
  var pa = map_a;
  while (pa != nil) {
    var a = pa.poly;
    var axl = a.xl;
    var ayl = a.yl;
    var axh = a.xh;
    var ayh = a.yh;
    var pb = map_b;
    while (pb != nil) {
      var b = pb.poly;
      var ixl = max(axl, b.xl);
      var iyl = max(ayl, b.yl);
      var ixh = min(axh, b.xh);
      var iyh = min(ayh, b.yh);
      if (ixl < ixh && iyl < iyh) {
        out = new RCell(new Polygon(ixl, iyl, ixh, iyh), out);
      }
      pb = pb.next;
    }
    pa = pa.next;
  }
  return out;
}

def run_list_variant(n) {
  seed = 99991;
  var map_a = make_map_list(n, 170);
  var map_b = make_map_list(n, 170);
  var results = overlay_lists(map_a, map_b);
  tally_results(results);
  var big = summarize_large(results, 220.0);
  print("polyover list", result_count, big, result_area);
}
"""

_ARRAY = r"""
// ---------------------------------------------------------------------
// Array variant: maps as arrays of polygons (inline allocated in C++),
// map B bucketed into a spatial grid of pool-allocated cons cells that
// reference each other through their next fields.

var GRID = 16;
var CELL_POOL_CAP = 3072;
var pool_used = 0;

def make_map_array(n, span) {
  var a = inline_array(n);
  for (var i = 0; i < n; i = i + 1) {
    a[i] = random_box(span);
  }
  return a;
}

// Grid chain cell: carries a copy of the box plus a reference to the
// next cell *in the same pool array* (cells reference each other).
class GCell {
  var is_end;
  var xl;
  var yl;
  var xh;
  var yh;
  var next;
  def init(is_end, xl, yl, xh, yh, next) {
    this.is_end = is_end;
    this.xl = xl;
    this.yl = yl;
    this.xh = xh;
    this.yh = yh;
    this.next = next;
  }
}

def bucket_of(v) {
  var b = int(v) * GRID / 1000;
  if (b < 0) {
    b = 0;
  }
  if (b >= GRID) {
    b = GRID - 1;
  }
  return b;
}

def build_grid(map_b, n) {
  // Pool of chain cells, inline allocated (tuned C++ uses a cell pool).
  var pool = inline_array(CELL_POOL_CAP);
  pool[0] = new GCell(true, 0.0, 0.0, 0.0, 0.0, nil);
  pool_used = 1;
  var heads = array(GRID * GRID);
  var sentinel = pool[0];
  for (var g = 0; g < GRID * GRID; g = g + 1) {
    heads[g] = sentinel;
  }
  for (var i = 0; i < n; i = i + 1) {
    var p = map_b[i];
    var pxl = p.xl;
    var pyl = p.yl;
    var pxh = p.xh;
    var pyh = p.yh;
    var bx0 = bucket_of(pxl);
    var bx1 = bucket_of(pxh);
    var by0 = bucket_of(pyl);
    var by1 = bucket_of(pyh);
    for (var bx = bx0; bx <= bx1; bx = bx + 1) {
      for (var by = by0; by <= by1; by = by + 1) {
        var g2 = bx * GRID + by;
        pool[pool_used] = new GCell(false, pxl, pyl, pxh, pyh, heads[g2]);
        heads[g2] = pool[pool_used];
        pool_used = pool_used + 1;
      }
    }
  }
  return heads;
}

def overlay_grid(map_a, heads, n) {
  var out = nil;
  for (var i = 0; i < n; i = i + 1) {
    var a = map_a[i];
    var axl = a.xl;
    var ayl = a.yl;
    var axh = a.xh;
    var ayh = a.yh;
    var bx0 = bucket_of(axl);
    var bx1 = bucket_of(axh);
    var by0 = bucket_of(ayl);
    var by1 = bucket_of(ayh);
    for (var bx = bx0; bx <= bx1; bx = bx + 1) {
      for (var by = by0; by <= by1; by = by + 1) {
        var c = heads[bx * GRID + by];
        while (!c.is_end) {
          var ixl = max(axl, c.xl);
          var iyl = max(ayl, c.yl);
          var ixh = min(axh, c.xh);
          var iyh = min(ayh, c.yh);
          if (ixl < ixh && iyl < iyh) {
            // Note: a pair can land in several shared buckets; count
            // it once by attributing it to its lowest-left bucket.
            if (bx == bucket_of(ixl) && by == bucket_of(iyl)) {
              out = new RCell(new Polygon(ixl, iyl, ixh, iyh), out);
            }
          }
          c = c.next;
        }
      }
    }
  }
  return out;
}

def overlay_arrays(map_a, map_b, n) {
  // Straight pairwise overlay across the two polygon arrays.
  var out = nil;
  for (var i = 0; i < n; i = i + 1) {
    var a = map_a[i];
    var axl = a.xl;
    var ayl = a.yl;
    var axh = a.xh;
    var ayh = a.yh;
    for (var j = 0; j < n; j = j + 1) {
      var b = map_b[j];
      var ixl = max(axl, b.xl);
      var iyl = max(ayl, b.yl);
      var ixh = min(axh, b.xh);
      var iyh = min(ayh, b.yh);
      if (ixl < ixh && iyl < iyh) {
        out = new RCell(new Polygon(ixl, iyl, ixh, iyh), out);
      }
    }
  }
  return out;
}

def run_array_variant(n, rounds) {
  seed = 99991;
  var map_a = make_map_array(n, 90);
  var map_b = make_map_array(n, 90);
  var results = nil;
  for (var r = 0; r < rounds; r = r + 1) {
    results = overlay_arrays(map_a, map_b, n);
  }
  tally_results(results);
  var big = summarize_large(results, 220.0);
  print("polyover array", result_count, big, result_area);

  // Second algorithm: spatial grid of pool-allocated chain cells (the
  // paper's "array of cons cells storing references to each other").
  var heads = build_grid(map_b, n);
  var grid_results = overlay_grid(map_a, heads, n);
  tally_results(grid_results);
  print("polyover grid", result_count, result_area, pool_used);
}
"""

_MAIN_BOTH = r"""
def main() {
  run_array_variant(380, 2);
  run_list_variant(240);
}
"""

_MAIN_ARRAY = r"""
def main() {
  run_array_variant(380, 2);
}
"""

_MAIN_LIST = r"""
def main() {
  run_list_variant(240);
}
"""


def source(variant: str = "both") -> str:
    """Assemble the benchmark source for one driver variant."""
    if variant == "both":
        return _COMMON + _LIST + _ARRAY + _MAIN_BOTH
    if variant == "array":
        return _COMMON + _ARRAY + _MAIN_ARRAY
    if variant == "list":
        return _COMMON + _LIST + _MAIN_LIST
    raise ValueError(f"unknown polyover variant {variant!r}")


SOURCE = source("both")
SOURCE_ARRAY = source("array")
SOURCE_LIST = source("list")

INFO = BenchmarkInfo(
    name="polyover",
    description="Polygon-map overlay with array (spatial grid of pooled "
    "cons cells) and list strategies",
    ideal_inlinable=5,
    expected_accepted=("RCell.poly", "MCell.poly", "array-site"),
    expected_rejected=("SCell.poly", "GCell.next"),
    notes=(
        "Map arrays and the cell pool are inline allocated in C++ "
        "(inline_array); result/map cons cells merge with their polygons "
        "automatically (not expressible in C++).  The summary list built "
        "from field reads reproduces the paper's loop-list limitation."
    ),
)
