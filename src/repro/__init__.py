"""repro — a reproduction of *Automatic Inline Allocation of Objects*
(Julian Dolby, PLDI 1997).

The package implements, from scratch:

- **mini-ICC++** (:mod:`repro.lang`): a dynamic uniform-object-model
  language in the spirit of the paper's ICC++ input.
- **IR** (:mod:`repro.ir`): a register CFG consumed by everything below.
- **Concert-style analysis** (:mod:`repro.analysis`): context-sensitive
  concrete type inference over method/object contours, plus the paper's
  field-origin tag analysis (§4.1) and pass-by-value predicates (§4.2).
- **Object inlining** (:mod:`repro.inlining`, :mod:`repro.cloning`): the
  decision engine, class/method cloning, and the §5 program rewriting.
- **An instrumented VM** (:mod:`repro.runtime`): simulated heap + cache
  simulator + cost model, standing in for the paper's SparcStation runs.
- **The paper's benchmarks** (:mod:`repro.bench`): OOPACK, Richards,
  Silo, and polygon overlay, with harnesses regenerating Figures 14-17.

Quickstart::

    from repro import Session

    session = Session(SOURCE)
    report = session.optimize()                # object inlining ON
    result = session.run("inline")
    print(result.output, result.stats.cycles())

:class:`Session` owns the config + tracer threading and caches every
intermediate artifact (IR, analysis results, per-build reports).  The
classic one-shot functions still work as thin wrappers::

    from repro import compile_source, optimize, run_program

    program = compile_source(SOURCE)
    report = optimize(program)                 # object inlining ON
    result = run_program(report.program)
"""

from .analysis import AnalysisCache, AnalysisConfig, AnalysisResult
from .inlining.decisions import Candidate, DecisionEngine, InlinePlan
from .inlining.pipeline import OptimizeReport
from .ir import format_program, validate_program
from .lang import parse_program, tokenize
from .obs import NULL_TRACER, Tracer, tracer_to_file
from .runtime import (
    CacheConfig,
    CostModel,
    ExecutionStats,
    Interpreter,
    ReproRuntimeError,
    RunResult,
)
from .session import Session, analyze, compile_source, optimize, run_program

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analyze",
    "AnalysisCache",
    "AnalysisConfig",
    "AnalysisResult",
    "CacheConfig",
    "Candidate",
    "compile_source",
    "CostModel",
    "DecisionEngine",
    "ExecutionStats",
    "format_program",
    "InlinePlan",
    "Interpreter",
    "NULL_TRACER",
    "optimize",
    "Tracer",
    "tracer_to_file",
    "OptimizeReport",
    "parse_program",
    "ReproRuntimeError",
    "run_program",
    "RunResult",
    "Session",
    "tokenize",
    "validate_program",
]
