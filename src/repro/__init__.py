"""repro — a reproduction of *Automatic Inline Allocation of Objects*
(Julian Dolby, PLDI 1997).

The package implements, from scratch:

- **mini-ICC++** (:mod:`repro.lang`): a dynamic uniform-object-model
  language in the spirit of the paper's ICC++ input.
- **IR** (:mod:`repro.ir`): a register CFG consumed by everything below.
- **Concert-style analysis** (:mod:`repro.analysis`): context-sensitive
  concrete type inference over method/object contours, plus the paper's
  field-origin tag analysis (§4.1) and pass-by-value predicates (§4.2).
- **Object inlining** (:mod:`repro.inlining`, :mod:`repro.cloning`): the
  decision engine, class/method cloning, and the §5 program rewriting.
- **An instrumented VM** (:mod:`repro.runtime`): simulated heap + cache
  simulator + cost model, standing in for the paper's SparcStation runs.
- **The paper's benchmarks** (:mod:`repro.bench`): OOPACK, Richards,
  Silo, and polygon overlay, with harnesses regenerating Figures 14-17.

Quickstart::

    from repro import CompileConfig, Session

    session = Session(SOURCE)
    report = session.optimize(CompileConfig(inline=True))
    result = session.run("inline")
    print(result.output, result.stats.cycles())

:class:`Session` owns the config + tracer threading and caches every
intermediate artifact (IR, analysis results, per-build reports);
:class:`CompileConfig` is the immutable, content-hashable description
of one build, and :class:`SessionPool` manages per-tenant sessions for
long-lived drivers.  The **compile service** builds on all three::

    repro serve --socket /tmp/repro.sock     # async compile daemon
    repro loadgen --requests 500             # latency/throughput client

(see :mod:`repro.service` and docs/SERVICE.md).  The classic one-shot
functions (``compile_source``/``analyze``/``optimize``/``run_program``)
remain as deprecated shims; use :class:`Session` or the subpackage
primitives (:func:`repro.ir.compile_source`, ...) instead.
"""

from .analysis import AnalysisCache, AnalysisConfig, AnalysisResult
from .inlining.decisions import Candidate, DecisionEngine, InlinePlan
from .inlining.pipeline import OptimizeReport
from .ir import format_program, validate_program
from .lang import parse_program, tokenize
from .obs import NULL_TRACER, Tracer, tracer_to_file
from .runtime import (
    CacheConfig,
    CostModel,
    ExecutionStats,
    Interpreter,
    ReproRuntimeError,
    RunResult,
)
from .session import (
    CompileConfig,
    Session,
    SessionPool,
    analyze,
    compile_source,
    optimize,
    run_program,
    source_key,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analyze",
    "AnalysisCache",
    "AnalysisConfig",
    "AnalysisResult",
    "CacheConfig",
    "Candidate",
    "CompileConfig",
    "compile_source",
    "CostModel",
    "DecisionEngine",
    "ExecutionStats",
    "format_program",
    "InlinePlan",
    "Interpreter",
    "NULL_TRACER",
    "optimize",
    "Tracer",
    "tracer_to_file",
    "OptimizeReport",
    "parse_program",
    "ReproRuntimeError",
    "run_program",
    "RunResult",
    "Session",
    "SessionPool",
    "source_key",
    "tokenize",
    "validate_program",
]
