"""Inlining decisions: candidate discovery, safety screening, and the
use-specialization purity fixpoint.

A *candidate* is one inlinable location:

- a **field candidate** ``('field', DeclaringClass, field_name)`` — inline
  the objects held by that field into their containers, or
- an **array candidate** ``('array', site_uid)`` — inline the element
  objects of the arrays created at one ``array(n)`` site into the array
  itself (parallel-array layout), or
- a field candidate whose child is a fixed-length array (the Richards
  "arrays inlined into containing objects" case) — the array's slots are
  embedded into the container.

The decision pipeline mirrors the paper:

1. structural screening (concrete, non-nil, per-contour-monomorphic
   contents; no analysis widening; construction-time stores for object
   fields; no identity comparisons of child objects; no recursive or
   nested containment),
2. assignment specialization (§4.2) on every store site, and
3. the use-specialization purity fixpoint (§4.1): every instruction that
   dereferences a possibly-inlined value must see exactly one surviving
   candidate representation and no raw (``NoField``) values; candidates
   that mix are rejected and the check repeats until stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.assignspec import AssignmentSpecializer
from ..analysis.results import AnalysisResult, StoreSite
from ..analysis.tags import ELEM_FIELD, Slot, TOP_SLOT, Tag
from ..analysis.values import AbstractVal
from ..ir import model as ir

#: ('field', declaring class, field name) or ('array', NewArray site uid).
CandidateKey = tuple

#: Child descriptors: what one container contour holds in the candidate
#: location.  ('class', name) for objects; ('array', length) for embedded
#: fixed-length arrays.
ChildDesc = tuple

RAW = "raw"

#: Resolution of a widened (TOP) tag: representation statically unknown.
UNKNOWN = "unknown"

_RAW_SET = frozenset({RAW})
_UNKNOWN_SET = frozenset({UNKNOWN})

def compute_slot_reps(
    result: AnalysisResult,
    slot_to_candidate: dict[Slot, CandidateKey],
    alive: frozenset,
) -> dict[Slot, frozenset]:
    """Least fixpoint of representation sets over the slot graph.

    ``reps[slot]`` is what a value read out of ``slot`` may denote once
    every dead/non-candidate slot is treated as transparent: live
    candidate keys, RAW (a NoField object), and UNKNOWN (widened origin).
    An iterative fixpoint handles the cyclic slot graphs recursive
    structures produce (packet chains, cons lists).
    """
    reps: dict[Slot, frozenset] = {slot: frozenset() for slot in result.slots}

    def contribution(tag: Tag, current: dict[Slot, frozenset]) -> frozenset:
        if not tag:
            return _RAW_SET
        head = tag[0]
        if head == TOP_SLOT:
            return _UNKNOWN_SET
        key = slot_to_candidate.get(head)
        if key is not None and key in alive:
            return frozenset({key})
        return current.get(head, frozenset())

    changed = True
    while changed:
        changed = False
        for slot, content in result.slots.items():
            if not content.may_be_object():
                continue
            if not content.tags:
                new = _RAW_SET
            else:
                new: frozenset = frozenset()
                for tag in content.tags:
                    new |= contribution(tag, reps)
            if new != reps[slot]:
                reps[slot] = reps[slot] | new
                changed = True
    return reps


def resolve_value_reps(
    value: AbstractVal,
    slot_to_candidate: dict[Slot, CandidateKey],
    alive: frozenset,
    slot_reps: dict[Slot, frozenset],
) -> set[object]:
    """Representations of one value given precomputed slot resolutions."""
    reps: set[object] = set()
    for tag in value.tags:
        if not tag:
            reps.add(RAW)
            continue
        head = tag[0]
        if head == TOP_SLOT:
            reps.add(UNKNOWN)
            continue
        key = slot_to_candidate.get(head)
        if key is not None and key in alive:
            reps.add(key)
        else:
            reps |= slot_reps.get(head, frozenset())
    if not value.tags:
        reps.add(RAW)
    return reps



@dataclass(slots=True)
class Candidate:
    """One potentially inlinable field or array-element location."""

    key: CandidateKey
    kind: str  # 'field' | 'array'
    declaring_class: str | None
    field_name: str
    site_uid: int | None
    slots: set[Slot] = field(default_factory=set)
    container_contours: set[int] = field(default_factory=set)
    child_contours: set[int] = field(default_factory=set)
    child_desc_of: dict[int, ChildDesc] = field(default_factory=dict)
    stores: list[StoreSite] = field(default_factory=list)
    reject_reason: str | None = None
    #: Which decision stage rejected the candidate ('structure', 'stores',
    #: 'identity', 'purity', 'containment', 'policy', 'replan'); None while
    #: accepted.  First rejection wins, matching ``reject_reason``.
    reject_stage: str | None = None
    #: ``new`` instructions whose allocation becomes stack-like once this
    #: candidate's copies are in place: {(method contour id, instr uid)}.
    stackable_allocations: set[tuple[int, int]] = field(default_factory=set)

    @property
    def accepted(self) -> bool:
        return self.reject_reason is None

    def reject(self, reason: str, stage: str | None = None) -> None:
        if self.reject_reason is None:
            self.reject_reason = reason
            self.reject_stage = stage

    def decision_record(self) -> dict:
        """Structured audit record for trace events and ``--json`` output."""
        return {
            "candidate": self.describe(),
            "key": list(self.key),
            "kind": self.kind,
            "accepted": self.accepted,
            "stage": self.reject_stage,
            "reason": self.reject_reason,
        }

    def child_classes(self) -> set[str]:
        return {desc[1] for desc in self.child_desc_of.values() if desc[0] == "class"}

    def describe(self) -> str:
        if self.kind == "array":
            return f"array-site#{self.site_uid}[]"
        return f"{self.declaring_class}.{self.field_name}"


@dataclass(slots=True)
class InlinePlan:
    """The outcome of the decision stage."""

    result: AnalysisResult
    candidates: dict[CandidateKey, Candidate]
    slot_to_candidate: dict[Slot, CandidateKey]
    _rep_cache: dict = field(default_factory=dict)

    def accepted(self) -> list[Candidate]:
        return [c for c in self.candidates.values() if c.accepted]

    def rejected(self) -> list[Candidate]:
        return [c for c in self.candidates.values() if not c.accepted]

    def candidate_of_slot(self, slot: Slot) -> Candidate | None:
        key = self.slot_to_candidate.get(slot)
        return self.candidates.get(key) if key is not None else None

    def accepted_candidate_of_slot(self, slot: Slot) -> Candidate | None:
        candidate = self.candidate_of_slot(slot)
        if candidate is not None and candidate.accepted:
            return candidate
        return None

    def holder_of_contour(self, contour_id: int) -> Candidate | None:
        """The accepted candidate whose children include this contour."""
        for candidate in self.candidates.values():
            if candidate.accepted and contour_id in candidate.child_contours:
                return candidate
        return None

    def representations(self, value: AbstractVal) -> set[object]:
        """Resolve a value to accepted-candidate representations / RAW /
        UNKNOWN, against the current accepted set (recomputed lazily when
        the accepted set changes)."""
        alive = frozenset(key for key, c in self.candidates.items() if c.accepted)
        cached = self._rep_cache.get(alive)
        if cached is None:
            cached = compute_slot_reps(self.result, self.slot_to_candidate, alive)
            self._rep_cache[alive] = cached
        return resolve_value_reps(value, self.slot_to_candidate, alive, cached)


class DecisionEngine:
    """Computes an :class:`InlinePlan` from an :class:`AnalysisResult`.

    ``containment_preference`` picks the winner when candidates nest (one
    candidate's containers are another's children): ``"outer"`` (default)
    keeps the enclosing structure — the better standalone choice — while
    ``"inner"`` keeps the innermost, which is what multi-round nested
    inlining wants (each round peels one level outward; the inner child
    must be flattened first so the next round can prove its container is
    consumed by value).
    """

    def __init__(
        self, result: AnalysisResult, containment_preference: str = "outer"
    ) -> None:
        if containment_preference not in ("outer", "inner"):
            raise ValueError(f"bad containment preference {containment_preference!r}")
        self.result = result
        self.program = result.program
        self.assign = AssignmentSpecializer(result)
        self.containment_preference = containment_preference
        self.candidates: dict[CandidateKey, Candidate] = {}
        self.slot_to_candidate: dict[Slot, CandidateKey] = {}
        self._slot_reps: dict[Slot, frozenset] | None = None

    # ------------------------------------------------------------------
    # Entry point.

    def plan(self) -> InlinePlan:
        self._discover()
        for candidate in self.candidates.values():
            self._screen_structure(candidate)
        for candidate in self.candidates.values():
            if candidate.accepted:
                self._screen_stores(candidate)
        self._screen_identity()
        self._purity_fixpoint()
        self._screen_containment()
        return InlinePlan(
            result=self.result,
            candidates=self.candidates,
            slot_to_candidate=self.slot_to_candidate,
        )

    # ------------------------------------------------------------------
    # Discovery.

    def _declaring_class(self, class_name: str, field_name: str) -> str | None:
        for name in self.program.superclass_chain(class_name):
            if field_name in self.program.classes[name].fields:
                return name
        return None

    def _discover(self) -> None:
        """Every slot that may hold heap objects spawns/joins a candidate."""
        for slot, content in self.result.slots.items():
            if not content.may_be_object():
                continue
            container_id, field_name = slot
            container = self.result.object_contour(container_id)
            if container.is_array:
                key: CandidateKey = ("array", container.site_uid)
                candidate = self.candidates.get(key)
                if candidate is None:
                    candidate = Candidate(
                        key=key,
                        kind="array",
                        declaring_class=None,
                        field_name=ELEM_FIELD,
                        site_uid=container.site_uid,
                    )
                    self.candidates[key] = candidate
            else:
                declaring = self._declaring_class(container.class_name, field_name)
                if declaring is None:
                    continue
                key = ("field", declaring, field_name)
                candidate = self.candidates.get(key)
                if candidate is None:
                    candidate = Candidate(
                        key=key,
                        kind="field",
                        declaring_class=declaring,
                        field_name=field_name,
                        site_uid=None,
                    )
                    self.candidates[key] = candidate
            candidate.slots.add(slot)
            candidate.container_contours.add(container_id)
            self.slot_to_candidate[slot] = candidate.key

        for store in self.result.stores:
            slot = (store.container_contour, store.field_name)
            key = self.slot_to_candidate.get(slot)
            if key is not None:
                self.candidates[key].stores.append(store)

    # ------------------------------------------------------------------
    # Structural screening.

    def _screen_structure(self, candidate: Candidate) -> None:
        for slot in candidate.slots:
            content = self.result.slot_value(slot)
            if content.prims():
                kinds = ", ".join(sorted(content.prims()))
                candidate.reject(f"contents may be non-object ({kinds})", stage="structure")
                return
            container_id = slot[0]
            if self.result.object_contour_is_widened(container_id):
                candidate.reject("container contour widened", stage="structure")
                return

            # Determine the per-contour child descriptor.
            child_ids = content.object_contours()
            classes: set[str] = set()
            array_lengths: set[int] = set()
            for child_id in child_ids:
                child = self.result.object_contour(child_id)
                if child.summary:
                    candidate.reject("child contour widened", stage="structure")
                    return
                if child.is_array:
                    length = self._constant_array_length(child.site_uid)
                    if length is None:
                        candidate.reject("child array has non-constant length", stage="structure")
                        return
                    array_lengths.add(length)
                else:
                    classes.add(child.class_name)
                candidate.child_contours.add(child_id)
            if classes and array_lengths:
                candidate.reject("contents mix objects and arrays", stage="structure")
                return
            if len(classes) > 1:
                candidate.reject(
                    "polymorphic within one container contour: "
                    + ", ".join(sorted(classes)),
                    stage="structure",
                )
                return
            if len(array_lengths) > 1:
                candidate.reject("child arrays of differing lengths in one contour", stage="structure")
                return
            if classes:
                candidate.child_desc_of[container_id] = ("class", classes.pop())
            elif array_lengths:
                if candidate.kind == "array":
                    candidate.reject("array-of-arrays inlining is not supported", stage="structure")
                    return
                candidate.child_desc_of[container_id] = ("array", array_lengths.pop())

        # A contour whose slot was never written but whose field is read
        # would observe nil; reject if any read may touch such a contour.
        if candidate.kind == "field":
            self._screen_unwritten_reads(candidate)
        if not candidate.accepted:
            return

        # Recursive containment (cons.next holding cons cells): the layout
        # would be infinite.  The child class chain must not contain the
        # declaring class, nor vice versa.
        for child_class in candidate.child_classes():
            chain = set(self.program.superclass_chain(child_class))
            related = chain | set(self.program.subclasses(child_class)) | {child_class}
            if candidate.declaring_class in related:
                candidate.reject(f"recursive containment via {child_class}", stage="structure")
                return

    def _constant_array_length(self, site_uid: int) -> int | None:
        """Length of the NewArray at ``site_uid`` if it is a literal const."""
        for callable_ in self.program.callables():
            du_defs: dict[int, list[ir.Instr]] = {}
            found: ir.NewArray | None = None
            for instr in callable_.instructions():
                if instr.dst is not None:
                    du_defs.setdefault(instr.dst, []).append(instr)
                if isinstance(instr, ir.NewArray) and instr.uid == site_uid:
                    found = instr
            if found is None:
                continue
            defs = du_defs.get(found.size, [])
            if len(defs) == 1 and isinstance(defs[0], ir.Const):
                value = defs[0].value
                if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
                    return value
            return None
        return None

    def _screen_unwritten_reads(self, candidate: Candidate) -> None:
        """Reject if a read may hit a container contour with no stored child."""
        written = {slot[0] for slot in candidate.slots}
        for (contour_id, _uid), fact in self.result.facts.items():
            obj = fact.get("obj")
            if not isinstance(obj, AbstractVal):
                continue
            for cid in obj.object_contours():
                contour = self.result.object_contour(cid)
                if contour.is_array:
                    continue
                if candidate.field_name not in self.program.layout(contour.class_name):
                    continue
                if (
                    self._declaring_class(contour.class_name, candidate.field_name)
                    == candidate.declaring_class
                    and cid not in written
                ):
                    candidate.reject(
                        f"field may be read on contour o{cid} that never stores it",
                        stage="structure",
                    )
                    return

    # ------------------------------------------------------------------
    # Store screening (construction-time rule + §4.2 by-value).

    def _screen_stores(self, candidate: Candidate) -> None:
        if not candidate.stores:
            candidate.reject("no stores found", stage="stores")
            return
        for store in candidate.stores:
            if self.result.contour_is_widened(store.contour_id):
                candidate.reject("store inside widened contour", stage="stores")
                return
            if candidate.kind == "field":
                # Stores must initialize `this` inside a constructor, so a
                # previously extracted reference can never observe a later
                # re-assignment of the inlined state.
                callable_name = store.callable_name
                if "::" not in callable_name or callable_name.split("::", 1)[1] != "init":
                    candidate.reject(
                        f"store outside a constructor ({callable_name})",
                        stage="stores",
                    )
                    return
                if store.obj_reg != 0:
                    candidate.reject("store through a non-this reference", stage="stores")
                    return
            ok, reason = self.assign.store_is_by_value(store)
            if not ok:
                candidate.reject(f"not passable by value: {reason}", stage="stores")
                return
            candidate.stackable_allocations |= self._collect_chain_allocations(store)

    def _collect_chain_allocations(self, store: StoreSite) -> set[tuple[int, int]]:
        """``new`` sites along the by-value chain of one store.

        These allocations stop escaping once the copy transformation is in
        place, so the transformation downgrades them to stack allocations —
        this is where the paper's "sub-objects are allocated with the
        container" savings come from.
        """
        collected: set[tuple[int, int]] = set()
        self._walk_chain(store.contour_id, store.src_reg, collected, set())
        return collected

    def _walk_chain(
        self,
        contour_id: int,
        reg: int,
        collected: set[tuple[int, int]],
        visited: set[tuple[int, int]],
    ) -> None:
        if (contour_id, reg) in visited:
            return
        visited.add((contour_id, reg))
        contour = self.result.method_contour(contour_id)
        du = self.assign.defuse.get(contour.callable_name)
        if du is None:
            return
        defs = du.defs.get(reg, [])
        if not defs and du.is_formal(reg):
            for caller_id, site_uid in contour.callers:
                caller = self.result.method_contour(caller_id)
                caller_du = self.assign.defuse.get(caller.callable_name)
                if caller_du is None or site_uid not in caller_du.by_uid:
                    continue
                block, index = caller_du.by_uid[site_uid]
                caller_callable = self.program.lookup_callable(caller.callable_name)
                call_instr = caller_callable.blocks[block].instrs[index]
                actual = AssignmentSpecializer._actual_for_formal(call_instr, reg)
                if actual is not None:
                    self._walk_chain(caller_id, actual, collected, visited)
            return
        for definition in defs:
            instr = definition.instr
            if isinstance(instr, (ir.New, ir.NewArray)):
                collected.add((contour_id, instr.uid))
            elif isinstance(instr, ir.Move):
                self._walk_chain(contour_id, instr.src, collected, visited)
            elif isinstance(instr, (ir.CallFunction, ir.CallMethod, ir.CallStatic)):
                # Factory call proven fresh by assignment specialization:
                # the allocations sit behind the callee's returns.
                for callee_id in self.result.callees_at(contour_id, instr.uid):
                    callee = self.result.method_contour(callee_id)
                    callable_ = self.program.lookup_callable(callee.callable_name)
                    if callable_ is None:
                        continue
                    for callee_instr in callable_.instructions():
                        if (
                            isinstance(callee_instr, ir.Return)
                            and callee_instr.src is not None
                        ):
                            self._walk_chain(
                                callee_id, callee_instr.src, collected, visited
                            )

    # ------------------------------------------------------------------
    # Identity comparisons.

    def _screen_identity(self) -> None:
        """Child objects must never flow into ``==``/``!=``: post-transform
        they are container views and identity would change meaning."""
        for site in self.result.identity_sites:
            involved = site.lhs.object_contours() | site.rhs.object_contours()
            for candidate in self.candidates.values():
                if candidate.accepted and candidate.child_contours & involved:
                    candidate.reject(
                        f"child object identity-compared in {site.callable_name}",
                        stage="identity",
                    )

    # ------------------------------------------------------------------
    # Use-specialization purity (§4.1 decision).

    def _purity_fixpoint(self) -> None:
        """Reject candidates until every dereference site is unambiguous."""
        changed = True
        while changed:
            changed = False
            alive = {key for key, c in self.candidates.items() if c.accepted}
            if not alive:
                return
            for (contour_id, _uid), fact in self.result.facts.items():
                for role in ("obj", "array", "recv"):
                    value = fact.get(role)
                    if not isinstance(value, AbstractVal) or not value.may_be_object():
                        continue
                    if self._check_site_purity(value, alive):
                        changed = True
                        self._slot_reps = None
                        alive = {
                            key for key, c in self.candidates.items() if c.accepted
                        }

    def _check_site_purity(self, value: AbstractVal, alive: set[CandidateKey]) -> bool:
        """Reject candidates that mix at this site; True if any rejection."""
        reps = self._representations(value, alive)
        rejected = False
        if UNKNOWN in reps:
            # Tag widening lost this value's origin: any accepted candidate
            # whose child objects it may denote cannot be rewritten here.
            atoms = value.object_contours()
            for key in list(alive):
                candidate = self.candidates[key]
                if candidate.accepted and candidate.child_contours & atoms:
                    candidate.reject("origin widened (TOP tag) at a use site", stage="purity")
                    rejected = True
            reps = reps - {UNKNOWN}
        keys = {rep for rep in reps if rep != RAW}
        if len(keys) >= 2:
            for key in keys:
                self.candidates[key].reject(
                    "use site mixes representations: "
                    + " / ".join(self.candidates[k].describe() for k in sorted(keys)),
                    stage="purity",
                )
                rejected = True
        elif len(keys) == 1 and RAW in reps:
            (key,) = keys
            self.candidates[key].reject(
                "use site mixes inlined and raw objects", stage="purity"
            )
            rejected = True
        return rejected

    def _representations(
        self, value: AbstractVal, alive: set[CandidateKey]
    ) -> set[object]:
        """Resolve a value's tags to surviving-candidate representations.

        A tag headed by a slot of a *live* candidate denotes that
        candidate's inlined representation.  A tag headed by a
        dead/non-candidate slot is transparent: the value is whatever was
        stored there, resolved through the precomputed slot fixpoint.
        ``NOFIELD`` is a raw object; ``TOP`` is UNKNOWN.
        """
        frozen_alive = frozenset(alive)
        if self._slot_reps is None:
            self._slot_reps = compute_slot_reps(
                self.result, self.slot_to_candidate, frozen_alive
            )
        return resolve_value_reps(
            value, self.slot_to_candidate, frozen_alive, self._slot_reps
        )

    # ------------------------------------------------------------------
    # Containment ordering.

    def _screen_containment(self) -> None:
        """Reject nested inlining (a candidate whose containers are children
        of another accepted candidate) and containment cycles.

        The transformation runs in a single round; when structures nest we
        keep the outer candidate (it usually owns more traffic) and reject
        the inner one.
        """
        changed = True
        while changed:
            changed = False
            accepted = [c for c in self.candidates.values() if c.accepted]
            for inner in accepted:
                for outer in accepted:
                    if inner is outer or not outer.accepted or not inner.accepted:
                        continue
                    if inner.container_contours & outer.child_contours:
                        if self.containment_preference == "outer":
                            inner.reject(
                                f"container is itself inlined into {outer.describe()}",
                                stage="containment",
                            )
                        else:
                            outer.reject(
                                f"deferred to a later round (holds containers "
                                f"of inlined {inner.describe()})",
                                stage="containment",
                            )
                        changed = True
