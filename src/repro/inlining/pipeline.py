"""The end-to-end object-inlining pipeline and the library's main entry
points.

Three build configurations mirror the paper's evaluation bars:

- ``optimize(program, inline=False)`` — Concert **without** object
  inlining: the same analysis + cloning machinery, used only for
  type-directed devirtualization.
- ``optimize(program, inline=True)`` — Concert **with** object inlining
  (the paper's contribution).
- ``optimize(program, manual_only=True)`` — the G++ ``-O2`` proxy:
  inline only what the programmer annotated (``var inline f;`` /
  ``inline_array(n)``), still subject to the safety analyses.

When the cloning stage cannot emit a plan consistently (a dynamic
dispatch would need two clones under one name, a value may be either an
inline array or a plain one, ...), the conflicting candidates are
rejected and the pipeline replans — the moral equivalent of the paper's
iterative caller splitting, with rejection as the sound fallback.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

from ..analysis import (
    AnalysisCache,
    AnalysisConfig,
    AnalysisResult,
    SENSITIVITY_CONCERT,
    analyze,
)
from ..cloning.emit import CloneStats, TransformOutcome, transform_program
from ..opt.dce import DCEStats, eliminate_dead_code
from ..opt.escape import EscapeStats, apply_escape_optimization
from ..opt.inliner import InlinerStats, inline_methods
from ..opt.loadcse import LoadCSEStats, eliminate_redundant_loads
from ..ir import model as ir
from ..ir.validate import validate_program
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER
from .decisions import Candidate, DecisionEngine, InlinePlan

MAX_REPLAN_ROUNDS = 8


@dataclass(slots=True)
class OptimizeReport:
    """Everything produced by one optimization run."""

    program: ir.IRProgram
    analysis: AnalysisResult
    plan: InlinePlan
    clone_stats: CloneStats
    replan_rounds: int
    inliner_stats: InlinerStats | None = None
    escape_stats: EscapeStats | None = None
    cse_stats: LoadCSEStats | None = None
    dce_stats: DCEStats | None = None
    #: Total optimization rounds run (``max_rounds`` > 1 enables nested
    #: inlining: the pipeline re-analyzes the transformed program and
    #: inlines newly exposed container fields, innermost first).
    nested_rounds: int = 1
    #: describe() of candidates accepted in rounds after the first.
    nested_candidates: list[str] = field(default_factory=list)
    #: Scalar stages that failed and were rolled back (graceful
    #: degradation): ``{"stage": name, "error": "Type: message"}``.
    degraded_stages: list[dict] = field(default_factory=list)

    def accepted_candidates(self) -> list[Candidate]:
        return self.plan.accepted()

    def rejected_candidates(self) -> list[Candidate]:
        return self.plan.rejected()


class ReplanLimitExceeded(Exception):
    """The conflict-replan loop failed to converge (a compiler bug)."""


def _declared_inline_sites(program: ir.IRProgram) -> set[int]:
    """NewArray uids carrying the manual ``inline_array`` annotation."""
    sites: set[int] = set()
    for callable_ in program.callables():
        for instr in callable_.instructions():
            if isinstance(instr, ir.NewArray) and instr.declared_inline:
                sites.add(instr.uid)
    return sites


def candidate_is_declared_inline(program: ir.IRProgram, candidate: Candidate) -> bool:
    """Whether the manual C++ programmer marked this location inline."""
    if candidate.kind == "field":
        cls = program.classes.get(candidate.declaring_class)
        return cls is not None and candidate.field_name in cls.inline_fields
    return candidate.site_uid in _declared_inline_sites(program)


def _emit_round_decisions(tracer, plan: InlinePlan, round_index: int, nested_round: int) -> None:
    """Intermediate per-round verdicts (``decision.round`` events).

    One event per candidate per replan round, so a multi-round run can be
    audited round-by-round from a single JSONL trace; the final verdicts
    still land as ``decision`` events.
    """
    if not tracer.enabled:
        return
    for candidate in plan.candidates.values():
        tracer.event(
            "decision.round",
            round=round_index,
            nested_round=nested_round,
            **candidate.decision_record(),
        )


def _optimize_core(
    program: ir.IRProgram,
    inline: bool,
    devirtualize: bool,
    manual_only: bool,
    config: AnalysisConfig,
    containment_preference: str,
    tracer=NULL_TRACER,
    analysis_cache: AnalysisCache | None = None,
    nested_round: int = 1,
) -> tuple[TransformOutcome, "AnalysisResult", InlinePlan, int]:
    """One analyze → decide → transform round (no scalar passes)."""
    if not inline and not manual_only:
        config = config.with_sensitivity(SENSITIVITY_CONCERT)
    cached = analysis_cache.get(program, config) if analysis_cache is not None else None
    with tracer.span("analyze", cached=cached is not None):
        if cached is not None:
            tracer.count("analysis.cache_hits")
            result = cached
        else:
            result = analyze(program, config, tracer)
            if analysis_cache is not None:
                analysis_cache.put(program, config, result)
    with tracer.span("plan"):
        plan = DecisionEngine(result, containment_preference).plan()

    if not inline and not manual_only:
        for candidate in plan.candidates.values():
            candidate.reject("object inlining disabled", stage="policy")
    elif manual_only:
        for candidate in plan.candidates.values():
            if candidate.accepted and not candidate_is_declared_inline(program, candidate):
                candidate.reject("not declared inline in the source", stage="policy")

    rounds = 0
    while True:
        rounds += 1
        if rounds > MAX_REPLAN_ROUNDS:
            raise ReplanLimitExceeded(
                "transformation kept conflicting after "
                f"{MAX_REPLAN_ROUNDS} replanning rounds"
            )
        # Verdicts as they stand entering this transform attempt (round 1:
        # the post-policy plan; later rounds: after conflict rejections).
        _emit_round_decisions(tracer, plan, rounds, nested_round)
        with tracer.span("transform", round=rounds):
            outcome: TransformOutcome = transform_program(
                result, plan, devirtualize, tracer
            )
        if outcome.program is not None:
            break
        if not outcome.conflicts:
            raise ReplanLimitExceeded("transformation failed without naming conflicts")
        tracer.count("pipeline.replans")
        for key in outcome.conflicts:
            candidate = plan.candidates.get(key)
            if candidate is not None:
                candidate.reject(
                    "cloning conflict (dynamic dispatch or mixed site)", stage="replan"
                )

    # The decision trace: one structured event per candidate, final verdict,
    # tagged with the replan round that settled it and the nesting depth.
    if tracer.enabled:
        for candidate in plan.candidates.values():
            tracer.event(
                "decision",
                round=rounds,
                nested_round=nested_round,
                **candidate.decision_record(),
            )
        tracer.count("decisions.accepted", len(plan.accepted()))
        tracer.count("decisions.rejected", len(plan.rejected()))

    validate_program(outcome.program)
    return outcome, result, plan, rounds


def _reanalyzable(program: ir.IRProgram) -> bool:
    """Whether the flow analysis can soundly model this (transformed)
    program for another inlining round.

    Element views (inlined arrays) and embedded-array access are runtime
    constructs the analysis does not model; their presence ends the
    multi-round loop conservatively.
    """
    for callable_ in program.callables():
        for instr in callable_.instructions():
            if isinstance(
                instr, (ir.MakeView, ir.GetFieldIndexed, ir.SetFieldIndexed)
            ):
                return False
            if isinstance(instr, ir.NewArray) and instr.inline_layout:
                return False
    return True


def optimize(
    program: ir.IRProgram,
    inline: bool = True,
    devirtualize: bool = True,
    manual_only: bool = False,
    inline_methods_pass: bool = True,
    escape_pass: bool = True,
    cache_loads_pass: bool = True,
    dce_pass: bool = True,
    max_rounds: int = 1,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    analysis_cache: AnalysisCache | None = None,
    metrics=NULL_METRICS,
) -> OptimizeReport:
    """Analyze and transform ``program``; returns the new program + report.

    ``inline_methods_pass`` and ``cache_loads_pass`` control the classic
    scalar optimizations applied in *every* build (the Concert compiler
    ran them regardless of object inlining); they exist as switches for
    the ablation benchmarks.

    ``escape_pass`` runs the connection-graph escape analysis after
    method inlining and scalar-replaces or frame-allocates the no-escape
    sites — the allocation-removal axis object inlining cannot reach
    (objects that are never stored anywhere).  Its decisions land in the
    same audit stream as the inlining candidates (kind ``escape``).

    ``max_rounds > 1`` enables **nested object inlining** (the paper's
    future-work direction): the pipeline prefers innermost candidates,
    re-analyzes the transformed program, and inlines the newly exposed
    container fields — flattening ``outer.mid.point`` chains completely.
    The loop ends when a round accepts nothing, the program acquires
    constructs the analysis cannot re-model (inlined arrays), or
    ``max_rounds`` is reached.  The input program is not modified.

    ``tracer`` (a :class:`repro.obs.Tracer`) times every phase (analyze /
    plan / transform / scalar passes, per replan and nested round) and
    records the full decision trace; the default no-op tracer costs
    nothing.

    ``analysis_cache`` (an :class:`repro.analysis.AnalysisCache`) memoizes
    analysis results by (program, config) across this and other
    ``optimize`` calls — e.g. the three benchmark builds of one program,
    or a :class:`repro.Session`'s repeated pipelines.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) receives
    per-stage wall-time histograms, degradation counts, and the escape
    pass's reject-stage totals.  The default :data:`NULL_METRICS` costs
    nothing: all instrumentation is behind ``metrics.enabled`` guards.
    """
    config = config or AnalysisConfig()
    optimize_started = time.perf_counter() if metrics.enabled else 0.0
    nesting = max_rounds > 1 and inline and not manual_only
    preference = "inner" if nesting else "outer"

    with tracer.span(
        "optimize", inline=inline, manual_only=manual_only, max_rounds=max_rounds
    ):
        outcome, result, plan, replans = _optimize_core(
            program,
            inline,
            devirtualize,
            manual_only,
            config,
            preference,
            tracer,
            analysis_cache,
        )
        nested_rounds = 1
        nested_accepted: list[str] = []
        while (
            nesting
            and nested_rounds < max_rounds
            and plan_has_acceptances(plan)
            and _reanalyzable(outcome.program)
        ):
            with tracer.span("nested_round", number=nested_rounds + 1):
                next_outcome, _result, next_plan, _replans = _optimize_core(
                    outcome.program,
                    inline,
                    devirtualize,
                    manual_only,
                    config,
                    preference,
                    tracer,
                    analysis_cache,
                    nested_round=nested_rounds + 1,
                )
            accepted = next_plan.accepted()
            if not accepted:
                break
            nested_rounds += 1
            tracer.count("pipeline.nested_rounds")
            nested_accepted.extend(c.describe() for c in accepted)
            outcome = next_outcome
            # Keep the first round's analysis/plan in the report (they describe
            # the source program); later rounds only contribute their programs.

        inliner_stats = None
        escape_stats = None
        cse_stats = None
        dce_stats = None
        degraded_stages: list[dict] = []
        if analysis_cache is not None:
            # The scalar passes below mutate the program in place; any
            # analysis cached for it (a nested round that accepted nothing
            # leaves its analyzed program as the final one) would go stale.
            analysis_cache.discard(outcome.program)

        def _bracket(stage: str, span: str, fn):
            """Run one scalar stage in an isolated try/verify bracket.

            The stage mutates ``outcome.program`` in place; on an
            exception — from the stage itself or from the IR validation
            after it — the pre-stage snapshot is restored, a
            ``stage.degraded`` event is emitted, and compilation
            continues with the remaining stages.  A transform bug thus
            yields a slower-but-correct build, never a crashed Session
            (or daemon worker).  The snapshot is taken *outside* the
            stage's span so phase timings stay comparable to the
            unbracketed pipeline.
            """
            snapshot = pickle.dumps(outcome.program)
            stage_started = time.perf_counter() if metrics.enabled else 0.0
            try:
                with tracer.span(span):
                    stats = fn(outcome.program)
                validate_program(outcome.program)
                return stats
            except Exception as exc:  # noqa: BLE001 — any stage failure degrades
                outcome.program = pickle.loads(snapshot)
                record = {
                    "stage": stage,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                degraded_stages.append(record)
                tracer.event("stage.degraded", **record)
                tracer.count("pipeline.stage_degraded")
                if metrics.enabled:
                    metrics.counter(
                        "pipeline_stage_degraded_total",
                        "Scalar stages rolled back after a failure",
                        labels=("stage",),
                    ).labels(stage=stage).inc()
                return None
            finally:
                if metrics.enabled:
                    metrics.histogram(
                        "pipeline_stage_seconds",
                        "Pipeline stage wall time",
                        labels=("stage",),
                    ).labels(stage=stage).observe(time.perf_counter() - stage_started)

        if inline_methods_pass:
            inliner_stats = _bracket(
                "inline_methods", "opt.inline_methods", inline_methods
            )
        if escape_pass:
            escape_stats = _bracket(
                "escape",
                "opt.escape",
                lambda program: apply_escape_optimization(
                    program, splice_inits=inline_methods_pass
                ),
            )
            if escape_stats is not None and tracer.enabled:
                for record in escape_stats.decisions:
                    tracer.event("decision", **record)
                tracer.count("escape.sites", escape_stats.sites)
                tracer.count("escape.scalar_replaced", escape_stats.scalar_replaced)
                tracer.count("escape.stack_allocated", escape_stats.stack_allocated)
                tracer.count("escape.local_hits", escape_stats.local_hits)
                tracer.count("escape.local_misses", escape_stats.local_misses)
            if escape_stats is not None and metrics.enabled:
                rejects = metrics.counter(
                    "escape_rejects_total",
                    "Escape-analysis sites rejected, by audit stage",
                    labels=("stage",),
                )
                for stage_name, count in escape_stats.rejected.items():
                    rejects.labels(stage=stage_name).inc(count)
        if cache_loads_pass:
            cse_stats = _bracket("loadcse", "opt.loadcse", eliminate_redundant_loads)
        if dce_pass:
            dce_stats = _bracket("dce", "opt.dce", eliminate_dead_code)
    if metrics.enabled:
        metrics.histogram(
            "pipeline_stage_seconds",
            "Pipeline stage wall time",
            labels=("stage",),
        ).labels(stage="optimize").observe(time.perf_counter() - optimize_started)
    return OptimizeReport(
        program=outcome.program,
        analysis=result,
        plan=plan,
        clone_stats=outcome.stats,
        replan_rounds=replans,
        inliner_stats=inliner_stats,
        escape_stats=escape_stats,
        cse_stats=cse_stats,
        dce_stats=dce_stats,
        nested_rounds=nested_rounds,
        nested_candidates=nested_accepted,
        degraded_stages=degraded_stages,
    )


def plan_has_acceptances(plan: InlinePlan) -> bool:
    return bool(plan.accepted())
