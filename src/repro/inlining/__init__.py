"""Object-inlining decisions and the optimization pipeline."""

from .decisions import Candidate, CandidateKey, DecisionEngine, InlinePlan
from .pipeline import (
    MAX_REPLAN_ROUNDS,
    OptimizeReport,
    ReplanLimitExceeded,
    candidate_is_declared_inline,
    optimize,
)

__all__ = [
    "Candidate",
    "CandidateKey",
    "candidate_is_declared_inline",
    "DecisionEngine",
    "InlinePlan",
    "MAX_REPLAN_ROUNDS",
    "optimize",
    "OptimizeReport",
    "ReplanLimitExceeded",
]
