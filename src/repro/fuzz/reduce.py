"""Delta-debugging reducer for fuzzer-found divergences.

Given a program that trips the oracle, the reducer shrinks it while a
caller-supplied predicate keeps holding (canonically: *the same triage
bucket still fires*).  It works on the AST, not on text lines, so every
intermediate candidate is structurally plausible — the classic ddmin
failure mode of spending 95% of its iterations on unparseable files
does not arise.

The search is greedy multi-pass over whole-declaration removals
(classes, functions, globals, methods, fields), statement-chunk
removals inside every body (halves, then quarters, down to single
statements), and compound-statement hoisting (an ``if``/``while``/
``for``/block replaced by its own body).  Each pass restarts after an
accepted removal; the loop runs to fixpoint.  Reduction is best-effort
and deterministic — same input, same predicate, same output.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import replace

from ..lang import ast, parse_program
from ..lang.unparse import unparse_program


def count_nodes(obj: object) -> int:
    """Number of AST nodes in ``obj`` (any node or container of nodes)."""
    if isinstance(obj, ast.Node):
        return 1 + sum(
            count_nodes(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name != "location"
        )
    if isinstance(obj, (tuple, list)):
        return sum(count_nodes(item) for item in obj)
    return 0


# ----------------------------------------------------------------------
# Body-site traversal: every tuple[Stmt, ...] in the program, pre-order.


def _transform_bodies(program: ast.Program, fn):
    """Rebuild ``program`` with ``fn(site_index, body)`` applied to every
    statement tuple (function/method bodies and every nested compound)."""
    counter = itertools.count()

    def walk_body(body: tuple) -> tuple:
        body = tuple(fn(next(counter), tuple(body)))
        return tuple(walk_stmt(stmt) for stmt in body)

    def walk_stmt(stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.If):
            return replace(
                stmt,
                then_body=walk_body(stmt.then_body),
                else_body=walk_body(stmt.else_body),
            )
        if isinstance(stmt, ast.While):
            return replace(stmt, body=walk_body(stmt.body))
        if isinstance(stmt, ast.For):
            return replace(stmt, body=walk_body(stmt.body))
        if isinstance(stmt, ast.Block):
            return replace(stmt, body=walk_body(stmt.body))
        return stmt

    functions = tuple(
        replace(func, body=walk_body(func.body)) for func in program.functions
    )
    classes = tuple(
        replace(
            cls,
            methods=tuple(
                replace(method, body=walk_body(method.body))
                for method in cls.methods
            ),
        )
        for cls in program.classes
    )
    return replace(program, classes=classes, functions=functions)


def _body_sites(program: ast.Program) -> list[tuple[int, tuple]]:
    sites: list[tuple[int, tuple]] = []

    def record(index: int, body: tuple) -> tuple:
        sites.append((index, body))
        return body

    _transform_bodies(program, record)
    return sites


def _with_body(program: ast.Program, site: int, new_body: tuple) -> ast.Program:
    return _transform_bodies(
        program, lambda index, body: new_body if index == site else body
    )


# ----------------------------------------------------------------------
# Expression sites: every replaceable (non-lvalue) expression, pre-order.


def _transform_exprs(program: ast.Program, fn):
    """Rebuild ``program`` with ``fn(site_index, expr)`` applied to every
    non-lvalue expression.  When ``fn`` returns a different node the
    subtree is replaced wholesale (children are not visited)."""
    counter = itertools.count()

    def walk_expr(expr):
        if expr is None:
            return None
        new = fn(next(counter), expr)
        if new is not expr:
            return new
        if isinstance(expr, ast.FieldAccess):
            return replace(expr, obj=walk_expr(expr.obj))
        if isinstance(expr, ast.IndexAccess):
            return replace(
                expr, array=walk_expr(expr.array), index=walk_expr(expr.index)
            )
        if isinstance(expr, ast.UnaryOp):
            return replace(expr, operand=walk_expr(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return replace(
                expr, left=walk_expr(expr.left), right=walk_expr(expr.right)
            )
        if isinstance(expr, (ast.NewObject, ast.FunctionCall, ast.SuperCall)):
            return replace(expr, args=tuple(walk_expr(a) for a in expr.args))
        if isinstance(expr, ast.MethodCall):
            return replace(
                expr,
                receiver=walk_expr(expr.receiver),
                args=tuple(walk_expr(a) for a in expr.args),
            )
        return expr

    def walk_stmt(stmt):
        if isinstance(stmt, ast.ExprStmt):
            return replace(stmt, expr=walk_expr(stmt.expr))
        if isinstance(stmt, ast.VarDecl):
            return replace(stmt, init=walk_expr(stmt.init))
        if isinstance(stmt, ast.Assign):
            # The target is an lvalue — replacing it with a literal can
            # only produce parse-invalid candidates; leave it alone.
            return replace(stmt, value=walk_expr(stmt.value))
        if isinstance(stmt, ast.If):
            return replace(
                stmt,
                condition=walk_expr(stmt.condition),
                then_body=walk_body(stmt.then_body),
                else_body=walk_body(stmt.else_body),
            )
        if isinstance(stmt, ast.While):
            return replace(
                stmt, condition=walk_expr(stmt.condition), body=walk_body(stmt.body)
            )
        if isinstance(stmt, ast.For):
            return replace(
                stmt,
                init=walk_stmt(stmt.init) if stmt.init is not None else None,
                condition=walk_expr(stmt.condition),
                step=walk_stmt(stmt.step) if stmt.step is not None else None,
                body=walk_body(stmt.body),
            )
        if isinstance(stmt, ast.Return):
            return replace(stmt, value=walk_expr(stmt.value))
        if isinstance(stmt, ast.Block):
            return replace(stmt, body=walk_body(stmt.body))
        return stmt

    def walk_body(body):
        return tuple(walk_stmt(stmt) for stmt in body)

    functions = tuple(
        replace(func, body=walk_body(func.body)) for func in program.functions
    )
    classes = tuple(
        replace(
            cls,
            methods=tuple(
                replace(method, body=walk_body(method.body))
                for method in cls.methods
            ),
        )
        for cls in program.classes
    )
    globals_ = tuple(
        replace(decl, init=walk_expr(decl.init)) for decl in program.globals
    )
    return replace(
        program, classes=classes, functions=functions, globals=globals_
    )


def _expr_sites(program: ast.Program) -> list[tuple[int, ast.Expr]]:
    sites: list[tuple[int, ast.Expr]] = []

    def record(index, expr):
        sites.append((index, expr))
        return expr

    _transform_exprs(program, record)
    return sites


def _with_expr(program: ast.Program, site: int, new_expr: ast.Expr):
    return _transform_exprs(
        program, lambda index, expr: new_expr if index == site else expr
    )


# ----------------------------------------------------------------------
# Candidate generation.


def _candidates(program: ast.Program):
    """Yield smaller variants of ``program``, roughly biggest cut first."""
    # Whole declarations.
    for index in range(len(program.classes)):
        yield replace(
            program,
            classes=program.classes[:index] + program.classes[index + 1 :],
        )
    for index, func in enumerate(program.functions):
        if func.name == "main":
            continue
        yield replace(
            program,
            functions=program.functions[:index] + program.functions[index + 1 :],
        )
    for index in range(len(program.globals)):
        yield replace(
            program,
            globals=program.globals[:index] + program.globals[index + 1 :],
        )
    # Members.
    for cindex, cls in enumerate(program.classes):
        for mindex in range(len(cls.methods)):
            smaller = replace(
                cls, methods=cls.methods[:mindex] + cls.methods[mindex + 1 :]
            )
            yield replace(
                program,
                classes=program.classes[:cindex]
                + (smaller,)
                + program.classes[cindex + 1 :],
            )
        for findex in range(len(cls.fields)):
            smaller = replace(
                cls, fields=cls.fields[:findex] + cls.fields[findex + 1 :]
            )
            yield replace(
                program,
                classes=program.classes[:cindex]
                + (smaller,)
                + program.classes[cindex + 1 :],
            )
    # Statement chunks: halves, quarters, ..., singles per body site.
    for site, body in _body_sites(program):
        n = len(body)
        if n == 0:
            continue
        chunk = max(1, n // 2)
        while chunk >= 1:
            for start in range(0, n, chunk):
                yield _with_body(
                    program, site, body[:start] + body[start + chunk :]
                )
            if chunk == 1:
                break
            chunk //= 2
        # Hoist compound statements into their enclosing body.
        for index, stmt in enumerate(body):
            inner = None
            if isinstance(stmt, (ast.While, ast.Block)):
                inner = stmt.body
            elif isinstance(stmt, ast.If):
                inner = stmt.then_body + stmt.else_body
            elif isinstance(stmt, ast.For):
                inner = stmt.body
            if inner is not None:
                yield _with_body(
                    program, site, body[:index] + inner + body[index + 1 :]
                )
    # Expression pruning: any multi-node expression collapses to 0.
    for site, expr in _expr_sites(program):
        if count_nodes(expr) > 1:
            yield _with_expr(
                program, site, ast.IntLiteral(location=expr.location, value=0)
            )


def reduce_program(program: ast.Program, predicate, *, max_rounds: int = 40):
    """Greedily shrink ``program`` while ``predicate(candidate)`` holds.

    ``predicate`` receives an :class:`ast.Program` and returns ``True``
    when the candidate still exhibits the behaviour being chased.  The
    input program itself must satisfy the predicate.
    """
    if not predicate(program):
        raise ValueError("input program does not satisfy the predicate")
    for _ in range(max_rounds):
        shrunk = False
        for candidate in _candidates(program):
            if count_nodes(candidate) >= count_nodes(program):
                continue
            try:
                if predicate(candidate):
                    program = candidate
                    shrunk = True
                    break
            except Exception:
                continue  # a candidate that crashes the checker is rejected
        if not shrunk:
            return program
    return program


def reduce_source(
    source: str,
    predicate_kind: str,
    *,
    seed: int = -1,
    builds=None,
    max_steps: int | None = None,
    max_rounds: int = 40,
) -> str:
    """Shrink ``source`` while the oracle still reports ``predicate_kind``.

    Returns the unparsed reduced program.  ``predicate_kind`` is a
    divergence ``kind`` (``output-mismatch``, ``optimize-error``, ...);
    the reduced program is the smallest found that still produces at
    least one divergence of that kind.
    """
    from .oracle import DEFAULT_MAX_STEPS, FUZZ_BUILDS, check_program

    builds = tuple(builds) if builds is not None else FUZZ_BUILDS
    max_steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps

    def predicate(candidate: ast.Program) -> bool:
        text = unparse_program(candidate)
        result = check_program(
            text, seed=seed, builds=builds, max_steps=max_steps
        )
        return any(d.kind == predicate_kind for d in result.divergences)

    program = parse_program(source, filename=f"<reduce:{seed}>")
    reduced = reduce_program(program, predicate, max_rounds=max_rounds)
    return unparse_program(reduced)
