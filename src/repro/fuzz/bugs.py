"""Seeded compiler bugs for oracle/reducer/degradation self-tests.

A fuzzing rig that has never caught a bug proves nothing.  This module
injects known defects into the optimization pipeline so the test suite
can demonstrate the full robustness loop end to end:

- ``const-flip`` — a *miscompile*: after dead-code elimination, every
  integer constant is rebuilt off by one.  The IR stays perfectly
  valid, so no validator or stage bracket can object — only the
  differential oracle notices the wrong output.
- ``crash-loadcse`` — the load-CSE stage raises.  The pipeline's stage
  bracket must roll the program back and continue; the build degrades
  to correct-but-slower, bit-identical to a build without the stage.
- ``invalid-dce`` — dead-code elimination emits structurally invalid IR
  (a ``Const`` of a list).  Post-stage validation trips, and the
  bracket must roll back exactly as for a crash.

Each bug is a context manager patching one stage function on
``repro.inlining.pipeline``; the patch is always restored.  Because a
:class:`~repro.session.Session` memoizes optimize reports per config,
seed bugs **before** creating the session whose builds should be
affected.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

from ..ir import model as ir

#: Bug names accepted by :func:`seeded_bug`.
BUG_NAMES = ("const-flip", "crash-loadcse", "invalid-dce")


def _flip_int_consts(program) -> None:
    for callable_ in program.callables():
        for block in callable_.blocks:
            for index, instr in enumerate(block.instrs):
                if (
                    isinstance(instr, ir.Const)
                    and isinstance(instr.value, int)
                    and not isinstance(instr.value, bool)
                ):
                    block.instrs[index] = dataclasses.replace(
                        instr, value=instr.value + 1
                    )


def _poison_one_const(program) -> None:
    for callable_ in program.callables():
        for block in callable_.blocks:
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, ir.Const):
                    block.instrs[index] = dataclasses.replace(
                        instr, value=[instr.value]
                    )
                    return


@contextmanager
def seeded_bug(name: str):
    """Patch one pipeline stage with the named defect for the duration."""
    from ..inlining import pipeline

    if name == "const-flip":
        target = "eliminate_dead_code"
        original = pipeline.eliminate_dead_code

        def wrapper(program):
            stats = original(program)
            _flip_int_consts(program)
            return stats

    elif name == "crash-loadcse":
        target = "eliminate_redundant_loads"
        original = pipeline.eliminate_redundant_loads

        def wrapper(program):
            raise RuntimeError("injected loadcse crash")

    elif name == "invalid-dce":
        target = "eliminate_dead_code"
        original = pipeline.eliminate_dead_code

        def wrapper(program):
            stats = original(program)
            _poison_one_const(program)
            return stats

    else:
        raise ValueError(f"unknown seeded bug {name!r}; pick from {BUG_NAMES}")

    setattr(pipeline, target, wrapper)
    try:
        yield
    finally:
        setattr(pipeline, target, original)
