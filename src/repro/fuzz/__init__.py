"""Adversarial program fuzzing for the inline-allocation pipeline.

Three cooperating pieces:

- :mod:`repro.fuzz.gen` — a seeded random generator of well-formed,
  terminating mini-ICC++ programs (deep ownership chains, polymorphic
  fields, array-of-object torture, recursion, escaping/non-escaping
  allocation mixes).
- :mod:`repro.fuzz.oracle` — a differential oracle running each program
  across every build config (base/noinline/inline/noescape/opt),
  in-process and optionally through the service daemon, comparing
  outputs bit-for-bit and asserting structural invariants.
- :mod:`repro.fuzz.reduce` — a delta-debugging reducer shrinking a
  failing program to a minimal reproducer by AST-level chunk removal.

:mod:`repro.fuzz.bugs` holds deliberately seeded transform bugs used by
the tests to prove the oracle catches real miscompiles and the pipeline
survives crashing stages.
"""

from .bugs import BUG_NAMES, seeded_bug
from .gen import GenConfig, generate_source
from .oracle import (
    FUZZ_BUILDS,
    CheckResult,
    Divergence,
    FuzzReport,
    check_program,
    run_fuzz,
)
from .reduce import count_nodes, reduce_program, reduce_source

__all__ = [
    "BUG_NAMES",
    "CheckResult",
    "Divergence",
    "FUZZ_BUILDS",
    "FuzzReport",
    "GenConfig",
    "check_program",
    "count_nodes",
    "generate_source",
    "reduce_program",
    "reduce_source",
    "run_fuzz",
    "seeded_bug",
]
