"""Seeded random generator of adversarial mini-ICC++ programs.

Every program is **well-formed and terminating by construction** so the
differential oracle never has to explain away a hang or a nil
dereference:

- Classes form an **ownership DAG**: class ``Ci`` may only hold object
  fields of classes declared before it, so a constructor chain or a
  recursive ``total()`` walk always bottoms out.
- Subclasses extend earlier classes, override ``total``/``bump`` through
  ``super`` calls, and get substituted for their bases at construction
  sites — that is where polymorphic fields and megamorphic array slots
  come from.
- All loops run a constant number of iterations; recursive helpers
  decrement an integer argument toward a base case; division and modulo
  only ever see non-zero constant divisors.
- Object-typed locals are always initialized with ``new``; globals (the
  escape sinks) start ``nil`` and are only read under a ``!= nil``
  guard.
- Programs only print scalars (ints/floats/bools/strings), never object
  references, so output is bit-comparable across builds.

The generator is a pure function of ``(seed, GenConfig)``: the same pair
always yields the same source text, which is what makes the corpus
replayable and the reducer deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GenConfig:
    """Size/feature budget for one generated program."""

    max_classes: int = 7
    max_subclass_depth: int = 3
    max_scalar_fields: int = 3
    max_object_fields: int = 2
    max_scenarios: int = 9
    max_loop_iters: int = 8
    max_array_len: int = 6
    max_recursion_depth: int = 9
    allow_arrays: bool = True
    allow_recursion: bool = True
    allow_globals: bool = True
    allow_inline_annotations: bool = True
    allow_floats: bool = True


@dataclass(slots=True)
class _ClassInfo:
    name: str
    index: int  # declaration order; ownership edges only point backwards
    superclass: str | None
    # Own (non-inherited) members only.
    scalar_fields: list[str]
    object_fields: list[tuple[str, str]]  # (field name, declared class)
    depth: int  # inheritance depth (0 = base class)


class _Generator:
    def __init__(self, seed: int, config: GenConfig) -> None:
        self.rng = random.Random(seed)
        self.config = config
        self.classes: list[_ClassInfo] = []
        self.globals: list[str] = []
        self.rec_funcs: list[str] = []
        self.lines: list[str] = []
        self._tmp = 0

    # ------------------------------------------------------------------
    # Small helpers.

    def _fresh(self, prefix: str) -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def _int_expr(self, names: list[str], depth: int = 0) -> str:
        """A random int-valued expression over int locals + constants."""
        rng = self.rng
        if depth >= 2 or not names or rng.random() < 0.35:
            if names and rng.random() < 0.5:
                return rng.choice(names)
            return str(rng.randrange(0, 12))
        op = rng.choice(["+", "-", "*", "%", "/"])
        left = self._int_expr(names, depth + 1)
        if op in ("%", "/"):
            # Non-zero constant divisor; '/' on ints truncates like C.
            return f"({left} {op} {rng.randrange(2, 7)})"
        right = self._int_expr(names, depth + 1)
        return f"({left} {op} {right})"

    def _subclasses_of(self, name: str, before: int | None = None) -> list[str]:
        """``name`` plus every (transitive) subclass of it.

        ``before`` keeps substitution inside the ownership DAG: a
        constructor of class ``Ci`` may only build classes with index
        < i — a later subclass could (transitively) own ``Ci`` itself
        and turn construction into an infinite cycle.
        """
        out = [name]
        for cls in self.classes:
            if cls.superclass in out:
                out.append(cls.name)
        if before is not None:
            by_name = {c.name: c for c in self.classes}
            out = [n for n in out if n in by_name and by_name[n].index < before]
        return out

    def _concrete(self, declared: str, before: int | None = None) -> str:
        """A construction class for a field declared to hold ``declared``."""
        choices = self._subclasses_of(declared, before) or [declared]
        return self.rng.choice(choices)

    # ------------------------------------------------------------------
    # Classes.

    def _gen_classes(self) -> None:
        rng = self.rng
        count = rng.randrange(2, self.config.max_classes + 1)
        for index in range(count):
            name = f"C{index}"
            superclass: str | None = None
            depth = 0
            # Subclass an earlier class ~40% of the time (bounded depth).
            candidates = [
                c for c in self.classes if c.depth < self.config.max_subclass_depth
            ]
            if candidates and rng.random() < 0.4:
                parent = rng.choice(candidates)
                superclass = parent.name
                depth = parent.depth + 1
            scalar_fields = [
                f"s{index}_{i}"
                for i in range(rng.randrange(1, self.config.max_scalar_fields + 1))
            ]
            object_fields: list[tuple[str, str]] = []
            # Ownership DAG: object fields reference earlier classes only.
            if self.classes:
                for i in range(rng.randrange(0, self.config.max_object_fields + 1)):
                    target = rng.choice(self.classes).name
                    object_fields.append((f"o{index}_{i}", target))
            self.classes.append(
                _ClassInfo(name, index, superclass, scalar_fields, object_fields, depth)
            )

    def _emit_class(self, cls: _ClassInfo) -> None:
        rng = self.rng
        head = f"class {cls.name}"
        if cls.superclass is not None:
            head += f" : {cls.superclass}"
        self.lines.append(head + " {")
        for fname in cls.scalar_fields:
            self.lines.append(f"    var {fname};")
        for fname, _target in cls.object_fields:
            inline = (
                "inline "
                if self.config.allow_inline_annotations and rng.random() < 0.3
                else ""
            )
            self.lines.append(f"    var {inline}{fname};")

        # init(a): super first, then own scalars from `a`, then owned objects.
        self.lines.append("    def init(a) {")
        if cls.superclass is not None:
            self.lines.append("        super.init(a + 1);")
        for offset, fname in enumerate(cls.scalar_fields):
            self.lines.append(f"        this.{fname} = a + {offset};")
        for fname, target in cls.object_fields:
            concrete = self._concrete(target, before=cls.index)
            self.lines.append(f"        this.{fname} = new {concrete}(a + 2);")
        self.lines.append("    }")

        # total(): sum of every reachable scalar — the semantic fingerprint
        # the oracle compares across builds.
        self.lines.append("    def total() {")
        terms = [f"this.{fname}" for fname in cls.scalar_fields]
        terms += [f"this.{fname}.total()" for fname, _ in cls.object_fields]
        if cls.superclass is not None:
            terms.append("super.total()")
        if not terms:
            terms = ["0"]
        self.lines.append(f"        return {' + '.join(terms)};")
        self.lines.append("    }")

        # bump(n): field mutation, sometimes propagated into children.
        self.lines.append("    def bump(n) {")
        if cls.scalar_fields:
            field = rng.choice(cls.scalar_fields)
            self.lines.append(f"        this.{field} = this.{field} + n;")
        for fname, _ in cls.object_fields:
            if rng.random() < 0.5:
                self.lines.append(f"        this.{fname}.bump(n + 1);")
        if cls.superclass is not None and rng.random() < 0.5:
            self.lines.append("        super.bump(n);")
        self.lines.append("        return this.total();")
        self.lines.append("    }")
        self.lines.append("}")
        self.lines.append("")

    # ------------------------------------------------------------------
    # Helper functions.

    def _gen_rec_funcs(self) -> None:
        if not self.config.allow_recursion:
            return
        rng = self.rng
        for index in range(rng.randrange(1, 3)):
            name = f"rec{index}"
            self.rec_funcs.append(name)
            self.lines.append(f"def {name}(n) {{")
            self.lines.append("    if (n <= 0) {")
            self.lines.append(f"        return {rng.randrange(1, 5)};")
            self.lines.append("    }")
            if self.classes and rng.random() < 0.6:
                # A per-activation allocation: non-escaping unless the
                # callee's total() walk is considered escaping by analysis.
                cls = rng.choice(self.classes).name
                self.lines.append(f"    var t = new {cls}(n);")
                self.lines.append(f"    return t.total() + {name}(n - 1);")
            else:
                self.lines.append(f"    return n + {name}(n - 1);")
            self.lines.append("}")
            self.lines.append("")

    # ------------------------------------------------------------------
    # main() scenarios.  Each emits statements into `body` and may extend
    # the int-local name pool; all accumulate into `acc` (int) and
    # `facc` (float).

    def _scenario_alloc_total(self, body: list[str], ints: list[str]) -> None:
        cls = self._concrete(self.rng.choice(self.classes).name)
        obj = self._fresh("o")
        body.append(f"    var {obj} = new {cls}({self._int_expr(ints)});")
        body.append(f"    acc = acc + {obj}.total();")
        if self.rng.random() < 0.5:
            body.append(f"    acc = acc + {obj}.bump({self.rng.randrange(1, 4)});")

    def _scenario_loop_mix(self, body: list[str], ints: list[str]) -> None:
        rng = self.rng
        iters = rng.randrange(2, self.config.max_loop_iters + 1)
        i = self._fresh("i")
        cls = self._concrete(rng.choice(self.classes).name)
        body.append(f"    for (var {i} = 0; {i} < {iters}; {i} = {i} + 1) {{")
        body.append(f"        var t = new {cls}({i});")
        body.append(f"        acc = acc + t.total();")
        if self.globals and rng.random() < 0.6:
            # Escaping mix: some iterations leak the allocation globally.
            slot = rng.choice(self.globals)
            mod = rng.randrange(2, 4)
            body.append(f"        if ({i} % {mod} == 0) {{")
            body.append(f"            {slot} = t;")
            body.append("        }")
        body.append("    }")

    def _scenario_array(self, body: list[str], ints: list[str]) -> None:
        rng = self.rng
        size = rng.randrange(1, self.config.max_array_len + 1)
        arr = self._fresh("a")
        i = self._fresh("i")
        kind = "inline_array" if rng.random() < 0.4 else "array"
        base = rng.choice(self.classes).name
        variants = self._subclasses_of(base)
        body.append(f"    var {arr} = {kind}({size});")
        body.append(f"    for (var {i} = 0; {i} < {size}; {i} = {i} + 1) {{")
        if len(variants) > 1 and rng.random() < 0.7:
            # Megamorphic slots: alternate base and subclass per index.
            other = rng.choice(variants[1:])
            body.append(f"        if ({i} % 2 == 0) {{")
            body.append(f"            {arr}[{i}] = new {base}({i});")
            body.append("        } else {")
            body.append(f"            {arr}[{i}] = new {other}({i} + 1);")
            body.append("        }")
        else:
            body.append(f"        {arr}[{i}] = new {rng.choice(variants)}({i});")
        body.append("    }")
        body.append(f"    for (var {i} = 0; {i} < len({arr}); {i} = {i} + 1) {{")
        body.append(f"        acc = acc + {arr}[{i}].total();")
        body.append("    }")

    def _scenario_recursion(self, body: list[str], ints: list[str]) -> None:
        if not self.rec_funcs:
            return self._scenario_while(body, ints)
        fn = self.rng.choice(self.rec_funcs)
        depth = self.rng.randrange(1, self.config.max_recursion_depth + 1)
        body.append(f"    acc = acc + {fn}({depth});")

    def _scenario_while(self, body: list[str], ints: list[str]) -> None:
        w = self._fresh("w")
        start = self.rng.randrange(1, self.config.max_loop_iters + 1)
        body.append(f"    var {w} = {start};")
        body.append(f"    while ({w} > 0) {{")
        body.append(f"        acc = acc + {self._int_expr(ints + [w])};")
        body.append(f"        {w} = {w} - 1;")
        body.append("    }")
        ints.append(w)

    def _scenario_global_read(self, body: list[str], ints: list[str]) -> None:
        if not self.globals:
            return self._scenario_scalar(body, ints)
        slot = self.rng.choice(self.globals)
        body.append(f"    if ({slot} != nil) {{")
        body.append(f"        acc = acc + {slot}.total();")
        body.append("    }")

    def _scenario_scalar(self, body: list[str], ints: list[str]) -> None:
        name = self._fresh("v")
        body.append(f"    var {name} = {self._int_expr(ints)};")
        body.append(f"    acc = acc + {name};")
        ints.append(name)

    def _scenario_float(self, body: list[str], ints: list[str]) -> None:
        if not self.config.allow_floats:
            return self._scenario_scalar(body, ints)
        rng = self.rng
        expr = rng.choice(
            [
                f"sqrt(abs({self._int_expr(ints)}) + 1)",
                f"float({self._int_expr(ints)}) / {rng.randrange(2, 5)}.0",
                f"{rng.randrange(1, 9)}.5 * float({self._int_expr(ints)})",
            ]
        )
        body.append(f"    facc = facc + {expr};")

    def _scenario_branch(self, body: list[str], ints: list[str]) -> None:
        rng = self.rng
        cond = f"{self._int_expr(ints)} {rng.choice(['<', '<=', '>', '>=', '==', '!='])} {self._int_expr(ints)}"
        body.append(f"    if ({cond}) {{")
        body.append(f"        acc = acc + {rng.randrange(1, 9)};")
        body.append("    } else {")
        body.append(f"        acc = acc - {rng.randrange(1, 9)};")
        body.append("    }")

    def _scenario_print(self, body: list[str], ints: list[str]) -> None:
        body.append("    print(acc);")

    # ------------------------------------------------------------------
    # Whole-program assembly.

    def generate(self) -> str:
        rng = self.rng
        if self.config.allow_globals:
            for index in range(rng.randrange(0, 3)):
                self.globals.append(f"g{index}")
                self.lines.append(f"var g{index};")
            if self.globals:
                self.lines.append("")

        self._gen_classes()
        for cls in self.classes:
            self._emit_class(cls)
        self._gen_rec_funcs()

        scenarios = [
            self._scenario_alloc_total,
            self._scenario_loop_mix,
            self._scenario_recursion,
            self._scenario_while,
            self._scenario_global_read,
            self._scenario_scalar,
            self._scenario_float,
            self._scenario_branch,
            self._scenario_print,
        ]
        if self.config.allow_arrays:
            scenarios.append(self._scenario_array)

        body: list[str] = ["    var acc = 0;", "    var facc = 0.0;"]
        ints: list[str] = []
        for _ in range(rng.randrange(3, self.config.max_scenarios + 1)):
            rng.choice(scenarios)(body, ints)
        body.append("    print(acc);")
        if self.config.allow_floats:
            body.append("    print(facc);")

        self.lines.append("def main() {")
        self.lines.extend(body)
        self.lines.append("}")
        return "\n".join(self.lines) + "\n"


def generate_source(seed: int, config: GenConfig | None = None) -> str:
    """The mini-ICC++ program for ``seed`` (deterministic)."""
    return _Generator(seed, config or GenConfig()).generate()
