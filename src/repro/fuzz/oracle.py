"""Differential oracle over the build matrix.

One fuzz iteration compiles a generated program under every build
configuration and runs each on the instrumented VM.  The **plain**
build (compiled, unoptimized) is the reference semantics; every
optimized build must agree with it bit for bit on printed output, and
must additionally satisfy the optimizer's own promises:

- **output** — identical ``print`` stream across all builds;
- **allocations** — an optimizing build never heap-allocates *more*
  than the plain build (inlining and escape promotion only remove
  heap traffic, never add it);
- **frame balance** — the frame region ends a run at depth one (the
  entry activation's region), i.e. every ``push_frame`` was popped;
- **no crashes** — no build raises ``HeapError``, a validation error,
  or any unexpected exception the plain build does not raise.

A violation becomes a :class:`Divergence`.  Divergences are bucketed by
a **triage key** — ``kind:build:normalized-detail`` with digit runs
collapsed to ``#`` — so a thousand seeds tripping one compiler bug
produce one bucket, not a thousand reports.  When a corpus directory is
given, the first few offending programs per bucket are archived as
replayable ``.icc`` sources with a ``.json`` sidecar.

The oracle can additionally round-trip every program through a live
compile daemon (``service=True``) and compare the daemon's run replies
against the in-process results, which exercises the whole
protocol/worker/cache stack with adversarial inputs.

Resource-limit aborts on the *reference* build (a generated program
that is simply too hot for the step budget) are **explained skips**,
not divergences: the generator aims for terminating programs, but the
oracle does not trust it — the budget is the backstop.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field

from ..runtime import HeapError, ResourceLimitError
from ..session import BUILD_CONFIGS, Session
from .gen import GenConfig, generate_source

#: The builds every fuzzed program is checked under.  ``plain`` is the
#: reference; the rest must agree with it.
FUZZ_BUILDS: tuple[str, ...] = tuple(BUILD_CONFIGS)

#: Step budget for the reference run; optimized builds get a multiple
#: (inlining can trade instructions for locality, never orders of
#: magnitude more steps).
DEFAULT_MAX_STEPS = 2_000_000
_OPT_BUDGET_FACTOR = 4

#: How many offending programs to archive per triage bucket.
_CORPUS_CAP_PER_BUCKET = 5

_DIGITS = re.compile(r"\d+")
_HEX = re.compile(r"0x[0-9a-fA-F]+")


def _normalize_detail(detail: str) -> str:
    """Collapse run-specific noise so one bug yields one triage key."""
    detail = detail.splitlines()[0] if detail else ""
    detail = _HEX.sub("0x#", detail)
    detail = _DIGITS.sub("#", detail)
    return detail[:160]


@dataclass(frozen=True, slots=True)
class Divergence:
    """One oracle violation on one (seed, build)."""

    seed: int
    kind: str  # frontend | optimize-error | runtime-error | heap-error |
    #            output-mismatch | alloc-regression | frame-imbalance |
    #            service-error | service-mismatch
    build: str
    detail: str
    source: str

    @property
    def triage_key(self) -> str:
        return f"{self.kind}:{self.build}:{_normalize_detail(self.detail)}"

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "build": self.build,
            "detail": self.detail,
            "triage_key": self.triage_key,
        }


@dataclass(slots=True)
class CheckResult:
    """The oracle's verdict on one generated program."""

    seed: int
    divergences: list[Divergence] = field(default_factory=list)
    skipped: str | None = None

    @property
    def clean(self) -> bool:
        return not self.divergences and self.skipped is None


def check_program(
    source: str,
    *,
    seed: int = -1,
    builds: tuple[str, ...] = FUZZ_BUILDS,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_heap_cells: int | None = None,
    client=None,
) -> CheckResult:
    """Run the differential oracle on one program.

    ``client`` (a connected :class:`~repro.service.client.ServiceClient`)
    additionally replays every build through the daemon and compares its
    run replies to the in-process outputs.
    """
    result = CheckResult(seed=seed)

    def diverge(kind: str, build: str, detail: str = "") -> None:
        result.divergences.append(
            Divergence(seed=seed, kind=kind, build=build, detail=detail, source=source)
        )

    try:
        session = Session(source, path=f"<fuzz:{seed}>")
    except Exception as exc:  # parse/lower errors on generated code
        diverge("frontend", "-", f"{type(exc).__name__}: {exc}")
        return result

    budgets = {"max_steps": max_steps, "max_heap_cells": max_heap_cells}

    # Reference semantics first; a program too hot for the budget is an
    # explained skip, not a finding.
    try:
        base = session.run("plain", **budgets)
    except ResourceLimitError as exc:
        result.skipped = f"{type(exc).__name__}: {exc}"
        return result
    except HeapError as exc:
        diverge("heap-error", "plain", f"{type(exc).__name__}: {exc}")
        return result
    except Exception as exc:
        diverge("runtime-error", "plain", f"{type(exc).__name__}: {exc}")
        return result
    if base.heap.frame_depth != 1:
        diverge("frame-imbalance", "plain", f"depth={base.heap.frame_depth}")

    opt_budgets = {
        "max_steps": max_steps * _OPT_BUDGET_FACTOR,
        "max_heap_cells": max_heap_cells,
    }
    outputs: dict[str, list[str]] = {"plain": base.output}
    for build in builds:
        if build == "plain":
            continue
        try:
            program = session.program_for(build)
        except Exception as exc:
            diverge("optimize-error", build, f"{type(exc).__name__}: {exc}")
            continue
        del program
        try:
            run = session.run(build, **opt_budgets)
        except HeapError as exc:
            diverge("heap-error", build, f"{type(exc).__name__}: {exc}")
            continue
        except Exception as exc:  # includes ResourceLimitError: the 4x
            # budget means an optimized build that blows it diverged.
            diverge("runtime-error", build, f"{type(exc).__name__}: {exc}")
            continue
        outputs[build] = run.output
        if run.output != base.output:
            diverge(
                "output-mismatch",
                build,
                _first_difference(base.output, run.output),
            )
        if run.stats.allocations > base.stats.allocations:
            diverge(
                "alloc-regression",
                build,
                f"{run.stats.allocations} > base {base.stats.allocations}",
            )
        if run.heap.frame_depth != 1:
            diverge("frame-imbalance", build, f"depth={run.heap.frame_depth}")

    if client is not None:
        _check_service(source, seed, builds, outputs, budgets, client, diverge)
    return result


def _first_difference(expected: list[str], got: list[str]) -> str:
    for index, (a, b) in enumerate(zip(expected, got)):
        if a != b:
            return f"line {index}: {a!r} != {b!r}"
    return f"length {len(expected)} != {len(got)}"


def _check_service(source, seed, builds, outputs, budgets, client, diverge) -> None:
    """Replay every successfully-run build through the daemon."""
    for build, expected in outputs.items():
        if build not in builds:
            continue
        try:
            response = client.request(
                "run",
                source=source,
                path=f"<fuzz:{seed}>",
                build=build,
                max_steps=budgets["max_steps"] * _OPT_BUDGET_FACTOR,
                max_heap_cells=budgets["max_heap_cells"],
            )
        except Exception as exc:
            diverge("service-error", build, f"{type(exc).__name__}: {exc}")
            continue
        if not response.ok:
            diverge("service-error", build, response.error or "error reply")
            continue
        got = response.result.get("output") if isinstance(response.result, dict) else None
        if got != expected:
            diverge(
                "service-mismatch",
                build,
                _first_difference(expected, got if isinstance(got, list) else []),
            )


@dataclass(slots=True)
class FuzzReport:
    """The aggregate outcome of one fuzzing run."""

    seeds_run: int = 0
    clean: int = 0
    skipped: int = 0
    elapsed: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)
    #: triage_key -> occurrence count across all seeds.
    buckets: dict[str, int] = field(default_factory=dict)
    #: triage_key -> representative seeds (first few).
    examples: dict[str, list[int]] = field(default_factory=dict)
    archived: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seeds_run": self.seeds_run,
            "clean": self.clean,
            "skipped": self.skipped,
            "elapsed_s": round(self.elapsed, 3),
            "ok": self.ok,
            "archived": self.archived,
            "buckets": [
                {
                    "triage_key": key,
                    "count": count,
                    "example_seeds": self.examples.get(key, []),
                }
                for key, count in sorted(
                    self.buckets.items(), key=lambda kv: -kv[1]
                )
            ],
            "divergences": [d.to_dict() for d in self.divergences[:200]],
        }

    def render(self) -> str:
        lines = [
            f"fuzz: {self.seeds_run} seeds, {self.clean} clean, "
            f"{self.skipped} skipped (resource budget), "
            f"{len(self.divergences)} divergences in {len(self.buckets)} "
            f"buckets, {self.elapsed:.1f}s"
        ]
        for key, count in sorted(self.buckets.items(), key=lambda kv: -kv[1]):
            seeds = ", ".join(str(s) for s in self.examples.get(key, [])[:5])
            lines.append(f"  {count:5d}x {key}  (seeds: {seeds})")
        if self.ok:
            lines.append("  no divergences")
        return "\n".join(lines)


def _bucket_slug(key: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:80] or "bucket"


def run_fuzz(
    *,
    seeds: int = 100,
    start_seed: int = 0,
    time_budget: float | None = None,
    corpus_dir: str | None = None,
    gen_config: GenConfig | None = None,
    builds: tuple[str, ...] = FUZZ_BUILDS,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_heap_cells: int | None = None,
    client=None,
    progress=None,
) -> FuzzReport:
    """Fuzz ``seeds`` programs (or until ``time_budget`` seconds elapse).

    ``corpus_dir`` archives up to a handful of offending programs per
    triage bucket as ``<bucket>/<seed>.icc`` plus a ``.json`` sidecar
    holding the divergence records, replayable with
    ``repro fuzz --replay`` or simply ``repro run``.
    """
    report = FuzzReport()
    started = time.monotonic()
    for seed in range(start_seed, start_seed + seeds):
        if time_budget is not None and time.monotonic() - started >= time_budget:
            break
        source = generate_source(seed, gen_config)
        result = check_program(
            source,
            seed=seed,
            builds=builds,
            max_steps=max_steps,
            max_heap_cells=max_heap_cells,
            client=client,
        )
        report.seeds_run += 1
        if result.skipped is not None:
            report.skipped += 1
        elif not result.divergences:
            report.clean += 1
        for divergence in result.divergences:
            report.divergences.append(divergence)
            key = divergence.triage_key
            report.buckets[key] = report.buckets.get(key, 0) + 1
            seen = report.examples.setdefault(key, [])
            if len(seen) < _CORPUS_CAP_PER_BUCKET:
                seen.append(seed)
                if corpus_dir is not None:
                    _archive(corpus_dir, divergence)
                    report.archived += 1
        if progress is not None:
            progress(seed, result)
    report.elapsed = time.monotonic() - started
    return report


def _archive(corpus_dir: str, divergence: Divergence) -> None:
    import os

    bucket = os.path.join(corpus_dir, _bucket_slug(divergence.triage_key))
    os.makedirs(bucket, exist_ok=True)
    stem = os.path.join(bucket, f"seed{divergence.seed}")
    with open(stem + ".icc", "w", encoding="utf-8") as handle:
        handle.write(divergence.source)
    with open(stem + ".json", "w", encoding="utf-8") as handle:
        json.dump(divergence.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
