"""Field-load caching (local common-subexpression elimination on loads).

The paper motivates this directly: "more precise aliasing information
concomitantly enables more thoroughgoing register allocation of object
state" — once ``Point::area`` is specialized for inline-allocated points,
``this`` and ``p`` cannot alias, so repeated field loads can be kept in
registers.

This pass removes redundant loads within a basic block:

- a second ``GetField r.f`` with no intervening write to any ``f`` slot,
  call, or redefinition of ``r`` reuses the first load's register;
- same for ``GetGlobal`` and ``ArrayLen``.

Alias discipline is name-based and conservative: a store to field ``f``
through *any* reference invalidates every cached load of ``f`` (two
references of the same class may alias); calls and element stores
invalidate everything.  The precision the paper describes comes from the
inlining transformation itself: container variants give inlined state
*distinct field names* (``lower_left__x_pos`` vs ``upper_right__x_pos``),
so loads that would have aliased under the uniform model no longer
invalidate each other — exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import model as ir


@dataclass(slots=True)
class LoadCSEStats:
    loads_eliminated: int = 0
    globals_eliminated: int = 0
    lengths_eliminated: int = 0


_CALL_INSTRS = (
    ir.CallMethod,
    ir.CallStatic,
    ir.CallFunction,
    ir.New,
)

#: Builtins that cannot touch the heap.
_PURE_BUILTINS = frozenset(
    {"sqrt", "abs", "floor", "ceil", "min", "max", "pow", "int", "float"}
)


def _process_block(block: ir.Block, stats: LoadCSEStats) -> None:
    #: (obj reg, field name) -> register holding the loaded value.
    fields: dict[tuple[int, str], int] = {}
    #: global name -> register.
    globals_: dict[str, int] = {}
    #: array reg -> register holding its length.
    lengths: dict[int, int] = {}
    new_instrs: list[ir.Instr] = []

    def kill_register(reg: int) -> None:
        for key in [k for k in fields if k[0] == reg or fields[k] == reg]:
            del fields[key]
        for key in [k for k in globals_ if globals_[k] == reg]:
            del globals_[key]
        for key in [k for k in lengths if k == reg or lengths[k] == reg]:
            del lengths[key]

    def kill_field_name(field_name: str) -> None:
        for key in [k for k in fields if k[1] == field_name]:
            del fields[key]

    def kill_heap() -> None:
        fields.clear()
        lengths.clear()

    for instr in block.instrs:
        replaced = False
        if isinstance(instr, ir.GetField):
            key = (instr.obj, instr.field_name)
            cached = fields.get(key)
            if cached is not None and cached != instr.dest:
                new_instrs.append(
                    ir.make_instr(ir.Move, instr.loc, dest=instr.dest, src=cached)
                )
                stats.loads_eliminated += 1
                replaced = True
            kill_register(instr.dest)
            if instr.obj != instr.dest:
                # (r = r.f overwrites its own base: nothing cacheable.)
                fields[key] = cached if replaced else instr.dest
        elif isinstance(instr, ir.GetGlobal):
            cached = globals_.get(instr.name)
            if cached is not None and cached != instr.dest:
                new_instrs.append(
                    ir.make_instr(ir.Move, instr.loc, dest=instr.dest, src=cached)
                )
                stats.globals_eliminated += 1
                replaced = True
            kill_register(instr.dest)
            globals_[instr.name] = cached if replaced else instr.dest
        elif isinstance(instr, ir.ArrayLen):
            cached = lengths.get(instr.array)
            if cached is not None and cached != instr.dest:
                new_instrs.append(
                    ir.make_instr(ir.Move, instr.loc, dest=instr.dest, src=cached)
                )
                stats.lengths_eliminated += 1
                replaced = True
            kill_register(instr.dest)
            if instr.array != instr.dest:
                lengths[instr.array] = cached if replaced else instr.dest
        elif isinstance(instr, ir.SetField):
            # Name-based aliasing: any store to f may hit any cached f.
            kill_field_name(instr.field_name)
            fields[(instr.obj, instr.field_name)] = instr.src
        elif isinstance(instr, ir.SetFieldIndexed):
            kill_heap()
        elif isinstance(instr, (ir.SetIndex, ir.SetGlobal)):
            if isinstance(instr, ir.SetGlobal):
                globals_[instr.name] = instr.src
            else:
                kill_heap()
        elif isinstance(instr, _CALL_INSTRS):
            # The callee may read/write anything.
            kill_heap()
            globals_.clear()
            dest = instr.dst
            if dest is not None:
                kill_register(dest)
        elif isinstance(instr, ir.CallBuiltin):
            if instr.builtin_name not in _PURE_BUILTINS:
                kill_heap()
                globals_.clear()
            kill_register(instr.dest)
        else:
            dest = instr.dst
            if dest is not None:
                kill_register(dest)
        if not replaced:
            new_instrs.append(instr)

    block.instrs = new_instrs


def eliminate_redundant_loads(program: ir.IRProgram) -> LoadCSEStats:
    """Run load CSE over every block of every callable (mutates program)."""
    stats = LoadCSEStats()
    for callable_ in program.callables():
        for block in callable_.blocks:
            _process_block(block, stats)
    return stats
