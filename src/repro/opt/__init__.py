"""Classic scalar optimizations the Concert compiler applied around object
inlining: method inlining (procedure integration) and field-load caching."""

from .dce import DCEStats, eliminate_dead_code
from .escape import ESCAPE_REJECT_STAGES, EscapeStats, apply_escape_optimization
from .inliner import InlinerStats, inline_methods
from .loadcse import LoadCSEStats, eliminate_redundant_loads

__all__ = [
    "apply_escape_optimization",
    "DCEStats",
    "eliminate_dead_code",
    "eliminate_redundant_loads",
    "ESCAPE_REJECT_STAGES",
    "EscapeStats",
    "inline_methods",
    "InlinerStats",
    "LoadCSEStats",
]
