"""Classic scalar optimizations the Concert compiler applied around object
inlining: method inlining (procedure integration) and field-load caching."""

from .dce import DCEStats, eliminate_dead_code
from .inliner import InlinerStats, inline_methods
from .loadcse import LoadCSEStats, eliminate_redundant_loads

__all__ = [
    "DCEStats",
    "eliminate_dead_code",
    "eliminate_redundant_loads",
    "inline_methods",
    "InlinerStats",
    "LoadCSEStats",
]
