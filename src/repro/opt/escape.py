"""Escape-directed allocation removal: scalar replacement + frame slots.

Runs after method inlining.  Every allocation site the connection-graph
analysis (``repro.analysis.escape``) proves *no-escape* is either

- **scalar-replaced** — the object's fields become fresh registers, field
  accesses become register moves, and the allocation is deleted — when
  its shape allows (single definition of the destination register and
  every use is a direct field access on it), or
- **frame-allocated** — the ``New`` is flagged ``frame_local`` so the VM
  carves it out of the per-activation frame region and reclaims it when
  the frame pops — when it is not loop-resident (the frame region only
  shrinks at return, so a loop would grow it without bound).

To give scalar replacement a chance on ordinary ``new C(...)`` sites,
no-escape allocations with an implicit constructor are first *exploded*
into ``new C [skip-init]`` + an explicit ``CallStatic C::init`` —
bit-identical semantics (same resolution, same static-call accounting) —
and the method inliner reruns to splice small constructors inline.  The
second classification pass then sees the constructor's field stores
directly in the allocating method.  Both passes share an
:class:`~repro.analysis.escape.EscapeCache`, so the rerun only recomputes
callables the explosion actually touched.

Every considered site leaves a record in the decision audit (kind
``escape``) with the same shape the inlining candidates use; rejections
carry one of the stages ``escape-global`` / ``escape-arg`` /
``escape-loop`` / ``escape-shape``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.escape import (
    ARG_ESCAPE,
    EscapeCache,
    EscapeResult,
    EscapeSite,
    GLOBAL_ESCAPE,
    NO_ESCAPE,
    analyze_escapes,
)
from ..ir import model as ir
from .inliner import inline_methods

#: Documented reject stages of the escape decision, in check order.
ESCAPE_REJECT_STAGES = (
    "escape-global",
    "escape-arg",
    "escape-loop",
    "escape-shape",
)


@dataclass(slots=True)
class EscapeStats:
    """Outcome of the escape stage, attached to the optimize report."""

    sites: int = 0
    scalar_replaced: int = 0
    stack_allocated: int = 0
    exploded_inits: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    decisions: list[dict] = field(default_factory=list)
    #: Local connection-graph cache traffic across both analysis passes.
    local_hits: int = 0
    local_misses: int = 0

    def _record(
        self,
        site: EscapeSite,
        *,
        accepted: bool,
        stage: str | None,
        reason: str,
        mode: str | None = None,
    ) -> None:
        self.sites += 1
        if not accepted:
            self.rejected[stage] = self.rejected.get(stage, 0) + 1
        block_index, instr_index = site.position
        if site.is_array:
            what = f"new {site.class_name or ''}[]"
        else:
            what = f"new {site.class_name}"
        self.decisions.append(
            {
                "candidate": f"{what} in {site.callable_name}",
                "key": [site.callable_name, f"B{block_index}.{instr_index}"],
                "kind": "escape",
                "accepted": accepted,
                "stage": stage,
                "reason": reason,
                "mode": mode,
            }
        )


def apply_escape_optimization(
    program: ir.IRProgram,
    *,
    splice_inits: bool = True,
    cache: EscapeCache | None = None,
) -> EscapeStats:
    """Scalar-replace / frame-allocate the program's no-escape sites."""
    if cache is None:
        cache = EscapeCache()
    stats = EscapeStats()
    hits_before, misses_before = cache.hits, cache.misses

    analysis = analyze_escapes(program, cache)
    exploded = _explode_constructors(program, analysis)
    stats.exploded_inits = exploded
    if exploded:
        if splice_inits:
            inline_methods(program)
        analysis = analyze_escapes(program, cache)
    stats.local_hits = cache.hits - hits_before
    stats.local_misses = cache.misses - misses_before

    # Group scalar-eligible sites per callable so each callable is
    # rewritten once.
    scalar_plans: dict[str, list[_ScalarPlan]] = {}
    for site in analysis.sites:
        callable_ = program.lookup_callable(site.callable_name)
        if callable_ is None:  # pragma: no cover - classification is fresh
            continue
        if site.state == GLOBAL_ESCAPE:
            stats._record(site, accepted=False, stage="escape-global", reason=site.reason)
            continue
        if site.state == ARG_ESCAPE:
            stats._record(site, accepted=False, stage="escape-arg", reason=site.reason)
            continue
        assert site.state == NO_ESCAPE
        plan, scalar_reason = _scalar_plan(program, callable_, site)
        if plan is not None:
            scalar_plans.setdefault(site.callable_name, []).append(plan)
            stats.scalar_replaced += 1
            stats._record(
                site,
                accepted=True,
                stage=None,
                reason="fields scalarized into registers",
                mode="scalar",
            )
            continue
        if site.is_array:
            stats._record(
                site,
                accepted=False,
                stage="escape-shape",
                reason=f"{scalar_reason}; arrays have no frame form",
            )
            continue
        if site.in_loop:
            stats._record(
                site,
                accepted=False,
                stage="escape-loop",
                reason=f"{scalar_reason}; loop-resident (frame region would grow per iteration)",
            )
            continue
        _mark_frame_local(callable_, site.uid)
        stats.stack_allocated += 1
        stats._record(
            site,
            accepted=True,
            stage=None,
            reason=f"{scalar_reason}; allocated in the frame region",
            mode="stack",
        )

    for name, plans in scalar_plans.items():
        callable_ = program.lookup_callable(name)
        assert callable_ is not None
        _scalar_replace(callable_, plans)
    return stats


# ----------------------------------------------------------------------
# Constructor explosion.


def _explode_constructors(program: ir.IRProgram, analysis: EscapeResult) -> int:
    """Split implicit constructors of no-escape object sites into explicit
    ``CallStatic init`` calls (so the inliner can splice them)."""
    candidates = {
        site.uid
        for site in analysis.sites
        if site.state == NO_ESCAPE and not site.is_array
    }
    if not candidates:
        return 0
    exploded = 0
    for callable_ in program.callables():
        rewritten: list[ir.Block] | None = None
        for block_index, block in enumerate(callable_.blocks):
            new_instrs: list[ir.Instr] | None = None
            for instr_index, instr in enumerate(block.instrs):
                if (
                    type(instr) is not ir.New
                    or instr.uid not in candidates
                    or instr.skip_init
                ):
                    if new_instrs is not None:
                        new_instrs.append(instr)
                    continue
                resolved = program.resolve_method(instr.class_name, "init")
                if resolved is None:
                    if new_instrs is not None:
                        new_instrs.append(instr)
                    continue
                if new_instrs is None:
                    new_instrs = list(block.instrs[:instr_index])
                result_reg = callable_.num_regs
                callable_.num_regs += 1
                new_instrs.append(replace(instr, args=(), skip_init=True))
                new_instrs.append(
                    ir.make_instr(
                        ir.CallStatic,
                        loc=instr.loc,
                        dest=result_reg,
                        recv=instr.dest,
                        class_name=instr.class_name,
                        method_name="init",
                        args=instr.args,
                    )
                )
                exploded += 1
            if new_instrs is not None:
                if rewritten is None:
                    rewritten = list(callable_.blocks)
                rewritten[block_index] = ir.Block(instrs=new_instrs)
        if rewritten is not None:
            callable_.blocks = rewritten
    return exploded


# ----------------------------------------------------------------------
# Scalar replacement.


@dataclass(slots=True)
class _ScalarPlan:
    """How to rewrite one scalar-replaceable site."""

    site_uid: int
    layout: list[str]
    members: frozenset[int]  # registers aliasing the object (dest + moves)
    alias_move_uids: frozenset[int]


def _scalar_plan(
    program: ir.IRProgram, callable_: ir.IRCallable, site: EscapeSite
) -> tuple[_ScalarPlan | None, str | None]:
    """A rewrite plan for the site, or (None, why it cannot be one).

    The shape requirement: starting from the allocation's destination and
    closing over ``Move`` aliases, every register in the group is defined
    exactly once (the ``New`` or the joining move) and every use is a
    direct field access on it or another alias move.  Then the object has
    no identity, never meets a call, and its fields can live in
    registers.
    """
    if site.is_array:
        return None, "array state is indexed dynamically"
    new_instr = _find_new(callable_, site.uid)
    if new_instr is None:  # pragma: no cover - classification is fresh
        return None, "allocation instruction not found"
    if not new_instr.skip_init and program.resolve_method(new_instr.class_name, "init"):
        return None, "constructor not inlined"
    layout = program.layout(new_instr.class_name)
    layout_set = set(layout)

    defs: dict[int, list[ir.Instr]] = {}
    uses: dict[int, list[ir.Instr]] = {}
    for instr in callable_.instructions():
        dest = instr.dst
        if dest is not None:
            defs.setdefault(dest, []).append(instr)
        for reg in set(instr.sources()):
            uses.setdefault(reg, []).append(instr)

    members: set[int] = {site.dest}
    alias_moves: set[int] = set()
    worklist = [site.dest]
    while worklist:
        reg = worklist.pop()
        if reg < callable_.num_formals:
            return None, f"alias register r{reg} carries an incoming value"
        reg_defs = defs.get(reg, [])
        if len(reg_defs) != 1:
            return None, f"alias register r{reg} has {len(reg_defs)} definitions"
        the_def = reg_defs[0]
        if reg == site.dest:
            if the_def.uid != site.uid:
                return None, "destination register is redefined"
        elif not (type(the_def) is ir.Move and the_def.src in members):
            # A member joined through a Move from the group but has another
            # definition kind — conservatively give up.
            return None, f"alias register r{reg} has a non-move definition"
        for use in uses.get(reg, []):
            kind = type(use)
            if kind is ir.Move and use.src == reg:
                if use.dest not in members:
                    members.add(use.dest)
                    worklist.append(use.dest)
                alias_moves.add(use.uid)
            elif kind is ir.GetField and use.obj == reg:
                if use.field_name not in layout_set:
                    return None, f"reads undeclared field .{use.field_name}"
            elif kind is ir.SetField and use.obj == reg and use.src != reg:
                if use.field_name not in layout_set:
                    return None, f"writes undeclared field .{use.field_name}"
            else:
                return None, (
                    f"used by {kind.__name__.lower()}"
                    " (not a direct field access or alias move)"
                )
    return (
        _ScalarPlan(
            site_uid=site.uid,
            layout=layout,
            members=frozenset(members),
            alias_move_uids=frozenset(alias_moves),
        ),
        None,
    )


def _find_new(callable_: ir.IRCallable, uid: int) -> ir.New | None:
    for instr in callable_.instructions():
        if instr.uid == uid and type(instr) is ir.New:
            return instr
    return None


def _scalar_replace(callable_: ir.IRCallable, plans: list[_ScalarPlan]) -> None:
    """Rewrite ``callable_`` so each planned site's fields live in registers."""
    field_reg_of: dict[int, dict[str, int]] = {}  # member reg -> field -> reg
    plan_of_uid: dict[int, _ScalarPlan] = {}
    alias_move_uids: set[int] = set()
    for plan in plans:
        regs = {}
        for field_name in plan.layout:
            regs[field_name] = callable_.num_regs
            callable_.num_regs += 1
        # Alias groups of distinct sites are disjoint (a shared register
        # would need two definitions and fail the plan), so keying the
        # field registers by every member register is unambiguous.
        for member in plan.members:
            field_reg_of[member] = regs
        plan_of_uid[plan.site_uid] = plan
        alias_move_uids |= plan.alias_move_uids

    for block_index, block in enumerate(callable_.blocks):
        new_instrs: list[ir.Instr] = []
        for instr in block.instrs:
            kind = type(instr)
            if kind is ir.New and instr.uid in plan_of_uid:
                # The object is gone: materialize its nil-initialized
                # fields as registers.
                plan = plan_of_uid[instr.uid]
                for field_name in plan.layout:
                    new_instrs.append(
                        ir.make_instr(
                            ir.Const,
                            loc=instr.loc,
                            dest=field_reg_of[instr.dest][field_name],
                            value=None,
                        )
                    )
                continue
            if instr.uid in alias_move_uids:
                # The alias no longer carries a reference; nothing reads
                # it after the rewrite, so pin it to nil (DCE sweeps it).
                new_instrs.append(
                    ir.make_instr(ir.Const, loc=instr.loc, dest=instr.dest, value=None)
                )
                continue
            if kind is ir.GetField and instr.obj in field_reg_of:
                new_instrs.append(
                    ir.make_instr(
                        ir.Move,
                        loc=instr.loc,
                        dest=instr.dest,
                        src=field_reg_of[instr.obj][instr.field_name],
                    )
                )
                continue
            if kind is ir.SetField and instr.obj in field_reg_of:
                new_instrs.append(
                    ir.make_instr(
                        ir.Move,
                        loc=instr.loc,
                        dest=field_reg_of[instr.obj][instr.field_name],
                        src=instr.src,
                    )
                )
                continue
            new_instrs.append(instr)
        callable_.blocks[block_index] = ir.Block(instrs=new_instrs)


def _mark_frame_local(callable_: ir.IRCallable, uid: int) -> None:
    for block_index, block in enumerate(callable_.blocks):
        for instr_index, instr in enumerate(block.instrs):
            if instr.uid == uid:
                assert type(instr) is ir.New
                instrs = list(block.instrs)
                instrs[instr_index] = replace(instr, frame_local=True)
                callable_.blocks[block_index] = ir.Block(instrs=instrs)
                return
