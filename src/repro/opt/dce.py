"""Dead-code elimination.

Removes pure instructions whose results are never used: the residue the
other passes leave behind (the ``Move`` a field elision turns into, loads
made redundant by CSE, argument-shuffling moves from method inlining) and
— the payoff the paper describes — *dead allocations*: a ``new`` whose
object was copied into its inlined slot and is referenced nowhere else.

Purity here means "no observable effect on a non-erroring execution":
reads, arithmetic, moves, view construction, and initializer-free
allocations.  Calls, stores, terminators, and ``new`` with an attached
constructor call stay.  Iterates to a fixpoint (removing a move can kill
its source's last use).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import model as ir

_PURE = (
    ir.Const,
    ir.Move,
    ir.UnOp,
    ir.BinOp,
    ir.GetField,
    ir.GetFieldIndexed,
    ir.GetIndex,
    ir.ArrayLen,
    ir.GetGlobal,
    ir.MakeView,
)


@dataclass(slots=True)
class DCEStats:
    instructions_removed: int = 0
    allocations_removed: int = 0


def _is_removable(instr: ir.Instr, used: set[int]) -> bool:
    dest = instr.dst
    if dest is None or dest in used:
        return False
    if isinstance(instr, _PURE):
        return True
    if isinstance(instr, ir.New) and instr.skip_init:
        # Allocation with no constructor side effects: dead if unused.
        return True
    if isinstance(instr, ir.NewArray):
        return True
    return False


def _sweep_callable(callable_: ir.IRCallable, stats: DCEStats) -> None:
    while True:
        used: set[int] = set(range(callable_.num_formals))
        for instr in callable_.instructions():
            used.update(instr.sources())
        removed = 0
        for block in callable_.blocks:
            kept: list[ir.Instr] = []
            for instr in block.instrs:
                if _is_removable(instr, used):
                    removed += 1
                    if isinstance(instr, (ir.New, ir.NewArray)):
                        stats.allocations_removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        if removed == 0:
            return
        stats.instructions_removed += removed


def eliminate_dead_code(program: ir.IRProgram) -> DCEStats:
    """Run DCE over every callable (mutates ``program``)."""
    stats = DCEStats()
    for callable_ in program.callables():
        _sweep_callable(callable_, stats)
    return stats
