"""Human-readable IR dumps, used by tests and the CLI."""

from __future__ import annotations

from . import model as ir


def format_instr(instr: ir.Instr) -> str:
    """Render one instruction as a single line (without indentation)."""
    if isinstance(instr, ir.Const):
        return f"r{instr.dest} = const {instr.value!r}"
    if isinstance(instr, ir.Move):
        return f"r{instr.dest} = r{instr.src}"
    if isinstance(instr, ir.UnOp):
        return f"r{instr.dest} = {instr.op} r{instr.src}"
    if isinstance(instr, ir.BinOp):
        return f"r{instr.dest} = r{instr.lhs} {instr.op} r{instr.rhs}"
    if isinstance(instr, ir.New):
        args = ", ".join(f"r{a}" for a in instr.args)
        stack = " [stack]" if instr.on_stack else ""
        frame = " [frame]" if instr.frame_local else ""
        raw = " [skip-init]" if instr.skip_init else ""
        return f"r{instr.dest} = new {instr.class_name}({args}){stack}{frame}{raw}"
    if isinstance(instr, ir.NewArray):
        layout = f" inline[{instr.inline_layout}]" if instr.inline_layout else ""
        parallel = " parallel" if instr.parallel_layout else ""
        elem = (
            f" elem[{instr.elem_class}]"
            if instr.elem_class and not instr.inline_layout
            else ""
        )
        return f"r{instr.dest} = newarray r{instr.size}{layout}{parallel}{elem}"
    if isinstance(instr, ir.GetField):
        return f"r{instr.dest} = r{instr.obj}.{instr.field_name}"
    if isinstance(instr, ir.SetField):
        return f"r{instr.obj}.{instr.field_name} = r{instr.src}"
    if isinstance(instr, ir.GetIndex):
        return f"r{instr.dest} = r{instr.array}[r{instr.index}]"
    if isinstance(instr, ir.SetIndex):
        return f"r{instr.array}[r{instr.index}] = r{instr.src}"
    if isinstance(instr, ir.ArrayLen):
        return f"r{instr.dest} = len r{instr.array}"
    if isinstance(instr, ir.CallMethod):
        args = ", ".join(f"r{a}" for a in instr.args)
        return f"r{instr.dest} = send r{instr.recv}.{instr.method_name}({args})"
    if isinstance(instr, ir.CallStatic):
        args = ", ".join(f"r{a}" for a in instr.args)
        return (
            f"r{instr.dest} = call r{instr.recv}"
            f" {instr.class_name}::{instr.method_name}({args})"
        )
    if isinstance(instr, ir.CallFunction):
        args = ", ".join(f"r{a}" for a in instr.args)
        return f"r{instr.dest} = call {instr.func_name}({args})"
    if isinstance(instr, ir.CallBuiltin):
        args = ", ".join(f"r{a}" for a in instr.args)
        return f"r{instr.dest} = builtin {instr.builtin_name}({args})"
    if isinstance(instr, ir.GetGlobal):
        return f"r{instr.dest} = global {instr.name}"
    if isinstance(instr, ir.SetGlobal):
        return f"global {instr.name} = r{instr.src}"
    if isinstance(instr, ir.GetFieldIndexed):
        return (
            f"r{instr.dest} = r{instr.obj}.{instr.base_field}"
            f"[r{instr.index} of {instr.length}]"
        )
    if isinstance(instr, ir.SetFieldIndexed):
        return (
            f"r{instr.obj}.{instr.base_field}[r{instr.index} of {instr.length}]"
            f" = r{instr.src}"
        )
    if isinstance(instr, ir.MakeView):
        return f"r{instr.dest} = view r{instr.array}[r{instr.index}] : {instr.class_name}"
    if isinstance(instr, ir.Jump):
        return f"jump B{instr.target}"
    if isinstance(instr, ir.Branch):
        return f"branch r{instr.cond} ? B{instr.then_target} : B{instr.else_target}"
    if isinstance(instr, ir.Return):
        return "return" if instr.src is None else f"return r{instr.src}"
    raise TypeError(f"unknown instruction {type(instr).__name__}")


def format_callable(callable_: ir.IRCallable) -> str:
    """Render a whole callable as labelled basic blocks."""
    lines = [f"{callable_.name}({', '.join(callable_.params)}) [{callable_.num_regs} regs]"]
    for index, block in enumerate(callable_.blocks):
        lines.append(f"  B{index}:")
        for instr in block.instrs:
            lines.append(f"    {format_instr(instr)}")
    return "\n".join(lines)


def format_program(program: ir.IRProgram) -> str:
    """Render every class and function of the program."""
    lines: list[str] = []
    for cls in program.classes.values():
        superclass = f" : {cls.superclass}" if cls.superclass else ""
        lines.append(f"class {cls.name}{superclass} {{ fields: {', '.join(cls.fields)} }}")
        for info in cls.inlined_state.values():
            pairs = ", ".join(f"{c}->{f}" for c, f in info.state_fields)
            lines.append(f"  inlined {info.field_name}: {info.child_class} [{pairs}]")
        for method in cls.methods.values():
            lines.append(_indent(format_callable(method)))
    for func in program.functions.values():
        lines.append(format_callable(func))
    return "\n".join(lines)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
