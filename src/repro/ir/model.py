"""Register-based control-flow-graph IR.

Every callable (top-level function, method, or synthesized global
initializer) lowers to an :class:`IRCallable`: a list of basic blocks of
three-address instructions over an infinite register file.  The same IR is
consumed by the flow analysis, executed by the VM, rewritten by the object
inlining transformation, and emitted by the code generator.

Instructions are immutable; passes rewrite by building new blocks.  Every
instruction carries a program-unique ``uid`` so analyses can key facts on
instruction identity (creation sites, call sites, uses) even across copies
of a block list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator

from ..lang.errors import SourceLocation, UNKNOWN_LOCATION

#: Process-wide uid source.  uids only need to be unique within a program,
#: but a global counter is simpler and keeps uids unique across rewrites.
_UID_COUNTER = itertools.count(1)


def fresh_uid() -> int:
    """Return a new program-unique instruction uid."""
    return next(_UID_COUNTER)


def renumber_uids(program: "IRProgram") -> None:
    """Renumber every instruction uid densely to 1..N in traversal order.

    uids otherwise carry whatever the process-wide counter happened to be
    at, and their absolute values leak into anything sorted or named by
    uid (clone partition order, ``array-site#N`` candidate keys) — so two
    compiles of the same source in differently-warmed processes would
    diverge.  Lowering calls this once per compile; the global counter has
    already advanced past N, so later ``fresh_uid`` calls during rewrites
    cannot collide with the renumbered range.
    """
    next_uid = itertools.count(1)
    for callable_ in program.callables():
        for block in callable_.blocks:
            block.instrs = [
                replace(instr, uid=next(next_uid)) for instr in block.instrs
            ]


def copy_callable(callable_: "IRCallable") -> "IRCallable":
    """A structurally independent copy of a callable.

    Blocks and the callable itself are fresh objects (the scalar passes
    mutate ``num_regs``, block lists, and ``block.instrs`` in place);
    instructions are immutable and stay shared.
    """
    return IRCallable(
        name=callable_.name,
        params=callable_.params,
        num_regs=callable_.num_regs,
        blocks=[Block(instrs=list(block.instrs)) for block in callable_.blocks],
        is_method=callable_.is_method,
        class_name=callable_.class_name,
        source_name=callable_.source_name,
    )


# ----------------------------------------------------------------------
# Instructions.


@dataclass(frozen=True, slots=True)
class Instr:
    """Base instruction.  ``uid`` identifies the instruction; ``loc`` points
    at the source construct it was lowered from."""

    uid: int
    loc: SourceLocation

    @property
    def dst(self) -> int | None:
        """Destination register, if the instruction produces a value."""
        return getattr(self, "dest", None)

    def sources(self) -> tuple[int, ...]:
        """Registers this instruction reads."""
        return ()

    def with_sources(self, new_sources: tuple[int, ...]) -> "Instr":
        """Return a copy with source registers replaced (same arity)."""
        if not new_sources and not self.sources():
            return self
        raise NotImplementedError(type(self).__name__)


@dataclass(frozen=True, slots=True)
class Const(Instr):
    dest: int
    value: object  # int | float | str | bool | None


@dataclass(frozen=True, slots=True)
class Move(Instr):
    dest: int
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.src,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "Move":
        return replace(self, src=new_sources[0])


@dataclass(frozen=True, slots=True)
class UnOp(Instr):
    dest: int
    op: str  # '-' | '!'
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.src,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "UnOp":
        return replace(self, src=new_sources[0])


@dataclass(frozen=True, slots=True)
class BinOp(Instr):
    dest: int
    op: str  # arithmetic / comparison; '&&','||' are lowered to CFG
    lhs: int
    rhs: int

    def sources(self) -> tuple[int, ...]:
        return (self.lhs, self.rhs)

    def with_sources(self, new_sources: tuple[int, ...]) -> "BinOp":
        return replace(self, lhs=new_sources[0], rhs=new_sources[1])


@dataclass(frozen=True, slots=True)
class New(Instr):
    """Allocate an instance of ``class_name`` and run its ``init``.

    ``on_stack`` is set by the inlining transformation when assignment
    specialization proved the object is consumed by value into an inlined
    slot: the allocation no longer escapes, so it is charged stack-like
    costs (the paper's "sub-objects are allocated with the container").
    """

    dest: int
    class_name: str
    args: tuple[int, ...]
    on_stack: bool = False
    #: Set when the transformation emits an explicit CallStatic to a cloned
    #: constructor right after the allocation.
    skip_init: bool = False
    #: Set by the escape-analysis stage when the object provably never
    #: escapes its allocating activation: the VM allocates it in the frame
    #: region and reclaims it when the frame pops.  Unlike ``on_stack``
    #: (whose objects may be copied by value into containers and outlive
    #: the frame), a ``frame_local`` object is dead at return.
    frame_local: bool = False

    def sources(self) -> tuple[int, ...]:
        return self.args

    def with_sources(self, new_sources: tuple[int, ...]) -> "New":
        return replace(self, args=tuple(new_sources))


@dataclass(frozen=True, slots=True)
class NewArray(Instr):
    """Allocate an array of ``size`` nil slots.

    ``inline_layout`` is installed by the inlining transformation: when set
    to a class name, the array stores that class's field state directly
    (parallel-array layout) instead of element references.
    """

    dest: int
    size: int  # register holding the length
    inline_layout: str | None = None
    #: Parallel-array (structure-of-arrays) layout for inline arrays; the
    #: default is interleaved (array-of-structures).  The transformation
    #: picks SoA for narrow elements (the paper notes the Fortran-style
    #: layout helped OOPACK's complex-number arrays).
    parallel_layout: bool = False
    #: Source-level manual annotation (``inline_array(n)``): the C++
    #: programmer would have declared this an array of objects by value.
    #: Ignored by the uniform model; consumed by the manual baseline.
    declared_inline: bool = False
    #: Element class when the analysis proved every element of this array
    #: is one class (annotated by the transformation, never the parser).
    #: Purely observational — it sharpens locality labels from the
    #: generic ``<array>`` to ``Cls[]``; no execution semantics hang off
    #: it.
    elem_class: str | None = None

    def sources(self) -> tuple[int, ...]:
        return (self.size,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "NewArray":
        return replace(self, size=new_sources[0])


@dataclass(frozen=True, slots=True)
class GetField(Instr):
    dest: int
    obj: int
    field_name: str

    def sources(self) -> tuple[int, ...]:
        return (self.obj,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "GetField":
        return replace(self, obj=new_sources[0])


@dataclass(frozen=True, slots=True)
class SetField(Instr):
    obj: int
    field_name: str
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.obj, self.src)

    def with_sources(self, new_sources: tuple[int, ...]) -> "SetField":
        return replace(self, obj=new_sources[0], src=new_sources[1])


@dataclass(frozen=True, slots=True)
class GetIndex(Instr):
    dest: int
    array: int
    index: int

    def sources(self) -> tuple[int, ...]:
        return (self.array, self.index)

    def with_sources(self, new_sources: tuple[int, ...]) -> "GetIndex":
        return replace(self, array=new_sources[0], index=new_sources[1])


@dataclass(frozen=True, slots=True)
class SetIndex(Instr):
    array: int
    index: int
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.array, self.index, self.src)

    def with_sources(self, new_sources: tuple[int, ...]) -> "SetIndex":
        return replace(self, array=new_sources[0], index=new_sources[1], src=new_sources[2])


@dataclass(frozen=True, slots=True)
class ArrayLen(Instr):
    dest: int
    array: int

    def sources(self) -> tuple[int, ...]:
        return (self.array,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "ArrayLen":
        return replace(self, array=new_sources[0])


@dataclass(frozen=True, slots=True)
class CallMethod(Instr):
    """Dynamically dispatched send ``recv.method(args)``."""

    dest: int
    recv: int
    method_name: str
    args: tuple[int, ...]

    def sources(self) -> tuple[int, ...]:
        return (self.recv, *self.args)

    def with_sources(self, new_sources: tuple[int, ...]) -> "CallMethod":
        return replace(self, recv=new_sources[0], args=tuple(new_sources[1:]))


@dataclass(frozen=True, slots=True)
class CallStatic(Instr):
    """Statically bound call to ``class_name::method_name``.

    Produced by lowering ``super.m(...)`` and by the inlining transformation
    when a dispatch has been resolved to a specialized clone.
    """

    dest: int
    recv: int
    class_name: str
    method_name: str
    args: tuple[int, ...]

    def sources(self) -> tuple[int, ...]:
        return (self.recv, *self.args)

    def with_sources(self, new_sources: tuple[int, ...]) -> "CallStatic":
        return replace(self, recv=new_sources[0], args=tuple(new_sources[1:]))


@dataclass(frozen=True, slots=True)
class CallFunction(Instr):
    dest: int
    func_name: str
    args: tuple[int, ...]

    def sources(self) -> tuple[int, ...]:
        return self.args

    def with_sources(self, new_sources: tuple[int, ...]) -> "CallFunction":
        return replace(self, args=tuple(new_sources))


@dataclass(frozen=True, slots=True)
class CallBuiltin(Instr):
    dest: int
    builtin_name: str
    args: tuple[int, ...]

    def sources(self) -> tuple[int, ...]:
        return self.args

    def with_sources(self, new_sources: tuple[int, ...]) -> "CallBuiltin":
        return replace(self, args=tuple(new_sources))


@dataclass(frozen=True, slots=True)
class GetGlobal(Instr):
    dest: int
    name: str


@dataclass(frozen=True, slots=True)
class SetGlobal(Instr):
    name: str
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.src,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "SetGlobal":
        return replace(self, src=new_sources[0])


@dataclass(frozen=True, slots=True)
class GetFieldIndexed(Instr):
    """Read slot ``base_field + index`` of an object.

    Produced when a fixed-length array was inlined into its container: the
    array's ``length`` slots live at consecutive container fields starting
    at ``base_field``.  ``index`` is bounds-checked against ``length``.
    """

    dest: int
    obj: int
    base_field: str
    length: int
    index: int

    def sources(self) -> tuple[int, ...]:
        return (self.obj, self.index)

    def with_sources(self, new_sources: tuple[int, ...]) -> "GetFieldIndexed":
        return replace(self, obj=new_sources[0], index=new_sources[1])


@dataclass(frozen=True, slots=True)
class SetFieldIndexed(Instr):
    """Write slot ``base_field + index`` of an object (see GetFieldIndexed)."""

    obj: int
    base_field: str
    length: int
    index: int
    src: int

    def sources(self) -> tuple[int, ...]:
        return (self.obj, self.index, self.src)

    def with_sources(self, new_sources: tuple[int, ...]) -> "SetFieldIndexed":
        return replace(
            self, obj=new_sources[0], index=new_sources[1], src=new_sources[2]
        )


@dataclass(frozen=True, slots=True)
class MakeView(Instr):
    """Fat pointer to an inline-allocated array element: (array, index).

    Only appears after the inlining transformation; ``class_name`` records
    the element class whose state the view exposes.
    """

    dest: int
    array: int
    index: int
    class_name: str

    def sources(self) -> tuple[int, ...]:
        return (self.array, self.index)

    def with_sources(self, new_sources: tuple[int, ...]) -> "MakeView":
        return replace(self, array=new_sources[0], index=new_sources[1])


# Terminators -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Jump(Instr):
    target: int  # block index


@dataclass(frozen=True, slots=True)
class Branch(Instr):
    cond: int
    then_target: int
    else_target: int

    def sources(self) -> tuple[int, ...]:
        return (self.cond,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "Branch":
        return replace(self, cond=new_sources[0])


@dataclass(frozen=True, slots=True)
class Return(Instr):
    src: int | None

    def sources(self) -> tuple[int, ...]:
        return () if self.src is None else (self.src,)

    def with_sources(self, new_sources: tuple[int, ...]) -> "Return":
        if self.src is None:
            return self
        return replace(self, src=new_sources[0])


TERMINATORS = (Jump, Branch, Return)

#: Instructions that read or write the heap (used by the cost model and by
#: simple local analyses).
HEAP_INSTRS = (New, NewArray, GetField, SetField, GetIndex, SetIndex, ArrayLen)


# ----------------------------------------------------------------------
# Containers.


@dataclass(slots=True)
class Block:
    """A basic block: straight-line instructions ending in a terminator."""

    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        return self.instrs[-1]

    def successors(self) -> tuple[int, ...]:
        term = self.terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.then_target, term.else_target)
        return ()


@dataclass(slots=True)
class IRCallable:
    """A lowered function or method.

    For methods, register 0 holds ``this`` and registers ``1..n`` hold the
    declared parameters; for functions, parameters start at register 0.
    """

    name: str  # qualified: 'Class::method' or plain function name
    params: tuple[str, ...]  # declared parameter names (excluding this)
    num_regs: int
    blocks: list[Block]
    is_method: bool
    class_name: str | None = None  # defining class for methods
    source_name: str | None = None  # original name before cloning

    @property
    def method_name(self) -> str | None:
        if not self.is_method:
            return None
        return self.name.split("::", 1)[1]

    @property
    def num_formals(self) -> int:
        """Registers occupied by incoming values (this + params for methods)."""
        return len(self.params) + (1 if self.is_method else 0)

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def instructions_with_position(self) -> Iterator[tuple[int, int, Instr]]:
        for block_index, block in enumerate(self.blocks):
            for instr_index, instr in enumerate(block.instrs):
                yield block_index, instr_index, instr


@dataclass(slots=True)
class IRClass:
    """A class: its own (non-inherited) field list plus its methods.

    ``fields`` preserves declaration order — the transformation's layout
    rules depend on it.  ``inline_fields`` records which fields carried the
    manual ``inline`` annotation in the source.  ``inlined_state`` maps a
    removed (inlined) field name to the container field names now holding
    the child's state, in the child's field order.
    """

    name: str
    superclass: str | None
    fields: list[str]
    methods: dict[str, IRCallable]
    inline_fields: set[str] = field(default_factory=set)
    inlined_state: dict[str, "InlinedFieldInfo"] = field(default_factory=dict)
    source_name: str | None = None  # original name before class cloning


@dataclass(frozen=True, slots=True)
class InlinedFieldInfo:
    """How an inlined field's state is laid out in its container.

    ``child_class`` is the (possibly cloned) class whose state was inlined;
    ``state_fields`` maps each child field name to the container field that
    now holds it.
    """

    field_name: str
    child_class: str
    state_fields: tuple[tuple[str, str], ...]  # (child field, container field)

    def container_field(self, child_field: str) -> str:
        for child, container in self.state_fields:
            if child == child_field:
                return container
        raise KeyError(child_field)


@dataclass(slots=True)
class IRProgram:
    """A whole lowered program.

    ``global_names`` lists declared globals in order; their initializers are
    lowered into the synthesized ``@global_init`` function, which the VM
    runs before ``main``.
    """

    classes: dict[str, IRClass]
    functions: dict[str, IRCallable]
    global_names: list[str]

    ENTRY_FUNCTION = "main"
    GLOBAL_INIT = "@global_init"

    def callables(self) -> Iterator[IRCallable]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()

    def lookup_callable(self, qualified_name: str) -> IRCallable | None:
        if "::" in qualified_name:
            class_name, method_name = qualified_name.split("::", 1)
            cls = self.classes.get(class_name)
            if cls is None:
                return None
            return cls.methods.get(method_name)
        return self.functions.get(qualified_name)

    # -- class hierarchy helpers ------------------------------------

    def superclass_chain(self, class_name: str) -> list[str]:
        """``class_name`` followed by its ancestors, root last."""
        chain: list[str] = []
        current: str | None = class_name
        while current is not None:
            chain.append(current)
            current = self.classes[current].superclass
        return chain

    def layout(self, class_name: str) -> list[str]:
        """Full field layout: inherited fields first (root-most first)."""
        fields: list[str] = []
        for name in reversed(self.superclass_chain(class_name)):
            fields.extend(self.classes[name].fields)
        return fields

    def resolve_method(self, class_name: str, method_name: str) -> tuple[str, IRCallable] | None:
        """Dynamic dispatch: find ``method_name`` on ``class_name`` or an
        ancestor.  Returns (defining class, callable)."""
        for name in self.superclass_chain(class_name):
            method = self.classes[name].methods.get(method_name)
            if method is not None:
                return name, method
        return None

    def subclasses(self, class_name: str) -> list[str]:
        """Direct and transitive subclasses of ``class_name``."""
        result: list[str] = []
        for name, cls in self.classes.items():
            if name == class_name:
                continue
            if class_name in self.superclass_chain(name):
                result.append(name)
        return result

    def inlined_info(self, class_name: str, field_name: str) -> InlinedFieldInfo | None:
        """Look up inlined-field metadata along the superclass chain."""
        for name in self.superclass_chain(class_name):
            info = self.classes[name].inlined_state.get(field_name)
            if info is not None:
                return info
        return None


def make_instr(cls: type, loc: SourceLocation = UNKNOWN_LOCATION, **kwargs: object) -> Instr:
    """Construct an instruction with a fresh uid."""
    return cls(uid=fresh_uid(), loc=loc, **kwargs)
