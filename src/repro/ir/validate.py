"""IR well-formedness checks.

Run after lowering and after every transformation pass; a validation
failure indicates a compiler bug, so failures raise
:class:`ValidationError` with enough context to locate the problem.
"""

from __future__ import annotations

from . import model as ir


class ValidationError(Exception):
    """Raised when an IR invariant is violated."""


def validate_callable(callable_: ir.IRCallable, program: ir.IRProgram | None = None) -> None:
    """Check structural invariants of one callable."""
    name = callable_.name
    if not callable_.blocks:
        raise ValidationError(f"{name}: no blocks")
    num_blocks = len(callable_.blocks)
    seen_uids: set[int] = set()
    for block_index, block in enumerate(callable_.blocks):
        if not block.instrs:
            raise ValidationError(f"{name}: block B{block_index} is empty")
        for pos, instr in enumerate(block.instrs):
            if instr.uid in seen_uids:
                raise ValidationError(f"{name}: duplicate uid {instr.uid}")
            seen_uids.add(instr.uid)
            is_term = isinstance(instr, ir.TERMINATORS)
            is_last = pos == len(block.instrs) - 1
            if is_term and not is_last:
                raise ValidationError(
                    f"{name}: terminator mid-block in B{block_index} at {pos}"
                )
            if is_last and not is_term:
                raise ValidationError(f"{name}: block B{block_index} lacks terminator")
            for reg in instr.sources():
                if not (0 <= reg < callable_.num_regs):
                    raise ValidationError(
                        f"{name}: source register r{reg} out of range in B{block_index}"
                    )
            dest = instr.dst
            if dest is not None and not (0 <= dest < callable_.num_regs):
                raise ValidationError(
                    f"{name}: dest register r{dest} out of range in B{block_index}"
                )
            if isinstance(instr, ir.Const) and not isinstance(
                instr.value, (bool, int, float, str, type(None))
            ):
                # A transform writing a non-scalar constant is a compiler
                # bug; catching it here lets the pipeline's stage
                # brackets roll the stage back instead of letting a
                # corrupt value leak into the VM.
                raise ValidationError(
                    f"{name}: Const of non-scalar {type(instr.value).__name__} "
                    f"in B{block_index}"
                )
        for successor in block.successors():
            if not (0 <= successor < num_blocks):
                raise ValidationError(
                    f"{name}: jump target B{successor} out of range in B{block_index}"
                )

    if program is not None:
        _validate_references(callable_, program)


def _validate_references(callable_: ir.IRCallable, program: ir.IRProgram) -> None:
    """Check that names mentioned by instructions exist in the program."""
    name = callable_.name
    for instr in callable_.instructions():
        if isinstance(instr, ir.New):
            if instr.class_name not in program.classes:
                raise ValidationError(f"{name}: new of unknown class {instr.class_name!r}")
        elif isinstance(instr, ir.CallFunction):
            if instr.func_name not in program.functions:
                raise ValidationError(
                    f"{name}: call of unknown function {instr.func_name!r}"
                )
        elif isinstance(instr, ir.CallStatic):
            cls = program.classes.get(instr.class_name)
            if cls is None:
                raise ValidationError(
                    f"{name}: static call into unknown class {instr.class_name!r}"
                )
            if program.resolve_method(instr.class_name, instr.method_name) is None:
                raise ValidationError(
                    f"{name}: static call to missing method "
                    f"{instr.class_name}::{instr.method_name}"
                )
        elif isinstance(instr, (ir.GetGlobal, ir.SetGlobal)):
            if instr.name not in program.global_names:
                raise ValidationError(f"{name}: unknown global {instr.name!r}")
        elif isinstance(instr, ir.MakeView):
            if instr.class_name not in program.classes:
                raise ValidationError(
                    f"{name}: view of unknown class {instr.class_name!r}"
                )


def validate_program(program: ir.IRProgram) -> None:
    """Validate every callable plus program-level invariants."""
    for cls in program.classes.values():
        if cls.superclass is not None and cls.superclass not in program.classes:
            raise ValidationError(
                f"class {cls.name!r}: unknown superclass {cls.superclass!r}"
            )
    for callable_ in program.callables():
        validate_callable(callable_, program)
    if program.GLOBAL_INIT not in program.functions:
        raise ValidationError("missing @global_init")
