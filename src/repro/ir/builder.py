"""AST → IR lowering.

The builder walks the AST once per callable, producing a CFG of
three-address instructions.  Lowering decisions of note:

- ``&&`` / ``||`` become control flow (they short-circuit).
- ``new C(...)`` lowers to a single :class:`~repro.ir.model.New`
  instruction; the VM (and the analysis) treat it as allocate-then-init.
- ``super.m(...)`` lowers to :class:`~repro.ir.model.CallStatic` bound at
  the superclass of the *defining* class of the current method.
- ``array(n)`` and ``len(a)`` lower to the dedicated array instructions;
  other known builtins lower to :class:`~repro.ir.model.CallBuiltin`.
- Global variable initializers are concatenated into a synthesized
  ``@global_init`` function, run by the VM before ``main``.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.errors import SemanticError, SourceLocation, UNKNOWN_LOCATION
from . import model as ir

#: Builtins callable as ``name(args...)``.  ``array`` and ``len`` are
#: special-cased to dedicated instructions.
BUILTIN_NAMES = frozenset(
    {
        "print",
        "sqrt",
        "abs",
        "floor",
        "ceil",
        "min",
        "max",
        "pow",
        "int",
        "float",
        "assert_true",
    }
)

_BUILTIN_ARITY: dict[str, tuple[int, int]] = {
    "sqrt": (1, 1),
    "abs": (1, 1),
    "floor": (1, 1),
    "ceil": (1, 1),
    "min": (2, 2),
    "max": (2, 2),
    "pow": (2, 2),
    "int": (1, 1),
    "float": (1, 1),
    "assert_true": (1, 1),
    # print is variadic (0..N)
}


class _LoopContext:
    """Jump targets for break/continue inside the innermost loop."""

    def __init__(self, break_target: int, continue_target: int) -> None:
        self.break_target = break_target
        self.continue_target = continue_target


class _CallableBuilder:
    """Builds one IRCallable from an AST body."""

    def __init__(
        self,
        program: ast.Program,
        name: str,
        params: tuple[str, ...],
        is_method: bool,
        class_name: str | None,
        global_names: set[str],
    ) -> None:
        self._program = program
        self._global_names = global_names
        self._name = name
        self._params = params
        self._is_method = is_method
        self._class_name = class_name
        self._blocks: list[ir.Block] = [ir.Block()]
        self._current = 0
        self._next_reg = 0
        self._scopes: list[dict[str, int]] = [{}]
        self._loops: list[_LoopContext] = []

        if is_method:
            self._next_reg = 1  # register 0 is `this`
        for param in params:
            self._scopes[0][param] = self._new_reg()

    # ------------------------------------------------------------------
    # Low-level helpers.

    def _new_reg(self) -> int:
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def _emit(self, cls: type, loc: SourceLocation, **kwargs: object) -> ir.Instr:
        instr = ir.make_instr(cls, loc, **kwargs)
        self._blocks[self._current].instrs.append(instr)
        return instr

    def _new_block(self) -> int:
        self._blocks.append(ir.Block())
        return len(self._blocks) - 1

    def _switch_to(self, block_index: int) -> None:
        self._current = block_index

    def _terminated(self) -> bool:
        instrs = self._blocks[self._current].instrs
        return bool(instrs) and isinstance(instrs[-1], ir.TERMINATORS)

    def _lookup(self, name: str) -> int | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # Statements.

    def build(self, body: tuple[ast.Stmt, ...]) -> ir.IRCallable:
        for stmt in body:
            self._lower_stmt(stmt)
        if not self._terminated():
            self._emit(ir.Return, UNKNOWN_LOCATION, src=None)
        blocks = _prune_unreachable(self._blocks)
        return ir.IRCallable(
            name=self._name,
            params=self._params,
            num_regs=self._next_reg,
            blocks=blocks,
            is_method=self._is_method,
            class_name=self._class_name,
            source_name=self._name,
        )

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self._terminated():
            # Dead code after return/break; lower into a fresh unreachable
            # block so jump targets stay consistent, then prune later.
            self._switch_to(self._new_block())

        if isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            reg = self._new_reg()
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                self._emit(ir.Move, stmt.location, dest=reg, src=value)
            else:
                self._emit(ir.Const, stmt.location, dest=reg, value=None)
            if stmt.name in self._scopes[-1]:
                raise SemanticError(f"duplicate variable {stmt.name!r}", stmt.location)
            self._scopes[-1][stmt.name] = reg
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            src = None if stmt.value is None else self._lower_expr(stmt.value)
            self._emit(ir.Return, stmt.location, src=src)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise SemanticError("'break' outside loop", stmt.location)
            self._emit(ir.Jump, stmt.location, target=self._loops[-1].break_target)
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise SemanticError("'continue' outside loop", stmt.location)
            self._emit(ir.Jump, stmt.location, target=self._loops[-1].continue_target)
        elif isinstance(stmt, ast.Block):
            self._scopes.append({})
            try:
                for inner in stmt.body:
                    self._lower_stmt(inner)
            finally:
                self._scopes.pop()
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.location)

    def _lower_body(self, body: tuple[ast.Stmt, ...]) -> None:
        self._scopes.append({})
        try:
            for stmt in body:
                self._lower_stmt(stmt)
        finally:
            self._scopes.pop()

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.NameRef):
            reg = self._lookup(target.name)
            if reg is not None:
                value = self._lower_expr(stmt.value)
                self._emit(ir.Move, stmt.location, dest=reg, src=value)
            elif target.name in self._global_names:
                value = self._lower_expr(stmt.value)
                self._emit(ir.SetGlobal, stmt.location, name=target.name, src=value)
            else:
                raise SemanticError(
                    f"assignment to undeclared variable {target.name!r}", stmt.location
                )
        elif isinstance(target, ast.FieldAccess):
            obj = self._lower_expr(target.obj)
            value = self._lower_expr(stmt.value)
            self._emit(
                ir.SetField, stmt.location, obj=obj, field_name=target.field_name, src=value
            )
        elif isinstance(target, ast.IndexAccess):
            array = self._lower_expr(target.array)
            index = self._lower_expr(target.index)
            value = self._lower_expr(stmt.value)
            self._emit(ir.SetIndex, stmt.location, array=array, index=index, src=value)
        else:
            raise SemanticError("invalid assignment target", stmt.location)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.condition)
        then_block = self._new_block()
        else_block = self._new_block()
        join_block = self._new_block()
        self._emit(
            ir.Branch,
            stmt.location,
            cond=cond,
            then_target=then_block,
            else_target=else_block,
        )
        self._switch_to(then_block)
        self._lower_body(stmt.then_body)
        if not self._terminated():
            self._emit(ir.Jump, stmt.location, target=join_block)
        self._switch_to(else_block)
        self._lower_body(stmt.else_body)
        if not self._terminated():
            self._emit(ir.Jump, stmt.location, target=join_block)
        self._switch_to(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self._new_block()
        body = self._new_block()
        exit_block = self._new_block()
        self._emit(ir.Jump, stmt.location, target=head)
        self._switch_to(head)
        cond = self._lower_expr(stmt.condition)
        self._emit(
            ir.Branch, stmt.location, cond=cond, then_target=body, else_target=exit_block
        )
        self._switch_to(body)
        self._loops.append(_LoopContext(exit_block, head))
        try:
            self._lower_body(stmt.body)
        finally:
            self._loops.pop()
        if not self._terminated():
            self._emit(ir.Jump, stmt.location, target=head)
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self._scopes.append({})
        try:
            if stmt.init is not None:
                self._lower_stmt(stmt.init)
            head = self._new_block()
            body = self._new_block()
            step_block = self._new_block()
            exit_block = self._new_block()
            self._emit(ir.Jump, stmt.location, target=head)
            self._switch_to(head)
            if stmt.condition is not None:
                cond = self._lower_expr(stmt.condition)
            else:
                true_reg = self._new_reg()
                self._emit(ir.Const, stmt.location, dest=true_reg, value=True)
                cond = true_reg
            self._emit(
                ir.Branch,
                stmt.location,
                cond=cond,
                then_target=body,
                else_target=exit_block,
            )
            self._switch_to(body)
            self._loops.append(_LoopContext(exit_block, step_block))
            try:
                self._lower_body(stmt.body)
            finally:
                self._loops.pop()
            if not self._terminated():
                self._emit(ir.Jump, stmt.location, target=step_block)
            self._switch_to(step_block)
            if stmt.step is not None:
                self._lower_stmt(stmt.step)
            if not self._terminated():
                self._emit(ir.Jump, stmt.location, target=head)
            self._switch_to(exit_block)
        finally:
            self._scopes.pop()

    # ------------------------------------------------------------------
    # Expressions.

    def _lower_expr(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            return self._const(expr.location, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return self._const(expr.location, expr.value)
        if isinstance(expr, ast.StringLiteral):
            return self._const(expr.location, expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return self._const(expr.location, expr.value)
        if isinstance(expr, ast.NilLiteral):
            return self._const(expr.location, None)
        if isinstance(expr, ast.NameRef):
            reg = self._lookup(expr.name)
            if reg is not None:
                return reg
            if expr.name in self._global_names:
                dest = self._new_reg()
                self._emit(ir.GetGlobal, expr.location, dest=dest, name=expr.name)
                return dest
            raise SemanticError(f"undeclared variable {expr.name!r}", expr.location)
        if isinstance(expr, ast.ThisRef):
            if not self._is_method:
                raise SemanticError("'this' outside method", expr.location)
            return 0
        if isinstance(expr, ast.FieldAccess):
            obj = self._lower_expr(expr.obj)
            dest = self._new_reg()
            self._emit(ir.GetField, expr.location, dest=dest, obj=obj, field_name=expr.field_name)
            return dest
        if isinstance(expr, ast.IndexAccess):
            array = self._lower_expr(expr.array)
            index = self._lower_expr(expr.index)
            dest = self._new_reg()
            self._emit(ir.GetIndex, expr.location, dest=dest, array=array, index=index)
            return dest
        if isinstance(expr, ast.UnaryOp):
            src = self._lower_expr(expr.operand)
            dest = self._new_reg()
            self._emit(ir.UnOp, expr.location, dest=dest, op=expr.op, src=src)
            return dest
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("&&", "||"):
                return self._lower_logical(expr)
            lhs = self._lower_expr(expr.left)
            rhs = self._lower_expr(expr.right)
            dest = self._new_reg()
            self._emit(ir.BinOp, expr.location, dest=dest, op=expr.op, lhs=lhs, rhs=rhs)
            return dest
        if isinstance(expr, ast.NewObject):
            args = tuple(self._lower_expr(arg) for arg in expr.args)
            dest = self._new_reg()
            self._emit(ir.New, expr.location, dest=dest, class_name=expr.class_name, args=args)
            return dest
        if isinstance(expr, ast.MethodCall):
            recv = self._lower_expr(expr.receiver)
            args = tuple(self._lower_expr(arg) for arg in expr.args)
            dest = self._new_reg()
            self._emit(
                ir.CallMethod,
                expr.location,
                dest=dest,
                recv=recv,
                method_name=expr.method_name,
                args=args,
            )
            return dest
        if isinstance(expr, ast.SuperCall):
            if not self._is_method or self._class_name is None:
                raise SemanticError("'super' outside method", expr.location)
            cls = self._program.find_class(self._class_name)
            if cls is None or cls.superclass is None:
                raise SemanticError(
                    f"'super' in class {self._class_name!r} with no superclass",
                    expr.location,
                )
            args = tuple(self._lower_expr(arg) for arg in expr.args)
            dest = self._new_reg()
            self._emit(
                ir.CallStatic,
                expr.location,
                dest=dest,
                recv=0,
                class_name=cls.superclass,
                method_name=expr.method_name,
                args=args,
            )
            return dest
        if isinstance(expr, ast.FunctionCall):
            return self._lower_function_call(expr)
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.location)

    def _const(self, loc: SourceLocation, value: object) -> int:
        dest = self._new_reg()
        self._emit(ir.Const, loc, dest=dest, value=value)
        return dest

    def _lower_logical(self, expr: ast.BinaryOp) -> int:
        """Short-circuit lowering of ``&&`` / ``||`` into CFG + result reg."""
        result = self._new_reg()
        lhs = self._lower_expr(expr.left)
        self._emit(ir.Move, expr.location, dest=result, src=lhs)
        rhs_block = self._new_block()
        join_block = self._new_block()
        if expr.op == "&&":
            self._emit(
                ir.Branch,
                expr.location,
                cond=result,
                then_target=rhs_block,
                else_target=join_block,
            )
        else:
            self._emit(
                ir.Branch,
                expr.location,
                cond=result,
                then_target=join_block,
                else_target=rhs_block,
            )
        self._switch_to(rhs_block)
        rhs = self._lower_expr(expr.right)
        self._emit(ir.Move, expr.location, dest=result, src=rhs)
        self._emit(ir.Jump, expr.location, target=join_block)
        self._switch_to(join_block)
        return result

    def _lower_function_call(self, expr: ast.FunctionCall) -> int:
        name = expr.func_name
        dest = self._new_reg()
        if name in ("array", "inline_array"):
            if len(expr.args) != 1:
                raise SemanticError(f"{name}(n) takes exactly one argument", expr.location)
            size = self._lower_expr(expr.args[0])
            self._emit(
                ir.NewArray,
                expr.location,
                dest=dest,
                size=size,
                declared_inline=(name == "inline_array"),
            )
            return dest
        if name == "len":
            if len(expr.args) != 1:
                raise SemanticError("len(a) takes exactly one argument", expr.location)
            array = self._lower_expr(expr.args[0])
            self._emit(ir.ArrayLen, expr.location, dest=dest, array=array)
            return dest
        args = tuple(self._lower_expr(arg) for arg in expr.args)
        if self._program.find_function(name) is not None:
            func = self._program.find_function(name)
            if len(args) != len(func.params):
                raise SemanticError(
                    f"function {name!r} takes {len(func.params)} arguments, got {len(args)}",
                    expr.location,
                )
            self._emit(ir.CallFunction, expr.location, dest=dest, func_name=name, args=args)
            return dest
        if name in BUILTIN_NAMES:
            arity = _BUILTIN_ARITY.get(name)
            if arity is not None and not (arity[0] <= len(args) <= arity[1]):
                raise SemanticError(
                    f"builtin {name!r} takes {arity[0]} argument(s), got {len(args)}",
                    expr.location,
                )
            self._emit(ir.CallBuiltin, expr.location, dest=dest, builtin_name=name, args=args)
            return dest
        raise SemanticError(f"unknown function {name!r}", expr.location)


def _prune_unreachable(blocks: list[ir.Block]) -> list[ir.Block]:
    """Remove unreachable blocks and renumber jump targets."""
    reachable: set[int] = set()
    worklist = [0]
    while worklist:
        index = worklist.pop()
        if index in reachable:
            continue
        reachable.add(index)
        worklist.extend(blocks[index].successors())

    remap: dict[int, int] = {}
    kept: list[ir.Block] = []
    for index, block in enumerate(blocks):
        if index in reachable:
            remap[index] = len(kept)
            kept.append(block)

    for block in kept:
        term = block.terminator
        if isinstance(term, ir.Jump):
            block.instrs[-1] = ir.Jump(term.uid, term.loc, remap[term.target])
        elif isinstance(term, ir.Branch):
            block.instrs[-1] = ir.Branch(
                term.uid, term.loc, term.cond, remap[term.then_target], remap[term.else_target]
            )
    return kept


def _check_class_hierarchy(program: ast.Program) -> None:
    seen: dict[str, ast.ClassDecl] = {}
    for cls in program.classes:
        if cls.name in seen:
            raise SemanticError(f"duplicate class {cls.name!r}", cls.location)
        seen[cls.name] = cls
    for cls in program.classes:
        if cls.superclass is not None and cls.superclass not in seen:
            raise SemanticError(
                f"unknown superclass {cls.superclass!r} of {cls.name!r}", cls.location
            )
    # Detect inheritance cycles.
    for cls in program.classes:
        visited: set[str] = set()
        current: str | None = cls.name
        while current is not None:
            if current in visited:
                raise SemanticError(f"inheritance cycle through {cls.name!r}", cls.location)
            visited.add(current)
            current = seen[current].superclass if current in seen else None
    # Field shadowing between a class and its ancestors is not allowed: the
    # layout rules of the transformation assume distinct names per chain.
    for cls in program.classes:
        own = {f.name for f in cls.fields}
        if len(own) != len(cls.fields):
            raise SemanticError(f"duplicate field in class {cls.name!r}", cls.location)
        ancestor = cls.superclass
        while ancestor is not None:
            for f in seen[ancestor].fields:
                if f.name in own:
                    raise SemanticError(
                        f"field {f.name!r} of {cls.name!r} shadows {ancestor!r}",
                        cls.location,
                    )
            ancestor = seen[ancestor].superclass


def lower_program(program: ast.Program) -> ir.IRProgram:
    """Lower a parsed program into :class:`repro.ir.model.IRProgram`."""
    _check_class_hierarchy(program)

    global_names: list[str] = []
    for decl in program.globals:
        if decl.name in global_names:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.location)
        global_names.append(decl.name)
    global_set = set(global_names)

    function_names: set[str] = set()
    for func in program.functions:
        if func.name in function_names:
            raise SemanticError(f"duplicate function {func.name!r}", func.location)
        function_names.add(func.name)

    classes: dict[str, ir.IRClass] = {}
    for cls in program.classes:
        methods: dict[str, ir.IRCallable] = {}
        for method in cls.methods:
            if method.name in methods:
                raise SemanticError(
                    f"duplicate method {method.name!r} in {cls.name!r}", method.location
                )
            builder = _CallableBuilder(
                program,
                name=f"{cls.name}::{method.name}",
                params=method.params,
                is_method=True,
                class_name=cls.name,
                global_names=global_set,
            )
            methods[method.name] = builder.build(method.body)
        classes[cls.name] = ir.IRClass(
            name=cls.name,
            superclass=cls.superclass,
            fields=[f.name for f in cls.fields],
            methods=methods,
            inline_fields={f.name for f in cls.fields if f.declared_inline},
            source_name=cls.name,
        )

    functions: dict[str, ir.IRCallable] = {}
    for func in program.functions:
        builder = _CallableBuilder(
            program,
            name=func.name,
            params=func.params,
            is_method=False,
            class_name=None,
            global_names=global_set,
        )
        functions[func.name] = builder.build(func.body)

    # Synthesize @global_init from the global initializer expressions.
    init_stmts: list[ast.Stmt] = []
    for decl in program.globals:
        if decl.init is not None:
            init_stmts.append(
                ast.Assign(decl.location, ast.NameRef(decl.location, decl.name), decl.init)
            )
    init_builder = _CallableBuilder(
        program,
        name=ir.IRProgram.GLOBAL_INIT,
        params=(),
        is_method=False,
        class_name=None,
        global_names=global_set,
    )
    functions[ir.IRProgram.GLOBAL_INIT] = init_builder.build(tuple(init_stmts))

    result = ir.IRProgram(
        classes=classes, functions=functions, global_names=global_names
    )
    # Strip the process-global counter's offset so identical sources
    # always lower to identical programs (uid values feed clone naming
    # and candidate keys downstream).
    ir.renumber_uids(result)
    return result


def compile_source(source: str, filename: str = "<input>") -> ir.IRProgram:
    """Parse and lower ``source`` in one step."""
    from ..lang.parser import parse_program

    return lower_program(parse_program(source, filename))
