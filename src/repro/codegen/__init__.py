"""C-like code emission used for the Figure 15 code-size measurements."""

from .cgen import CodegenResult, code_size, generate

__all__ = ["code_size", "CodegenResult", "generate"]
