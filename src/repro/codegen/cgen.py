"""C-like code generation.

The Concert compiler emitted C++ as a portable assembly language and the
paper's Figure 15 measures the stripped object files G++ produced from
it.  Our stand-in emits C-like text from the IR and measures its size;
only code *reachable from main* is emitted (G++'s stripping removed dead
code), so the cloned-but-unreferenced originals do not distort the
comparison.

The emitted code is not meant to be compiled — it is a stable, realistic
proxy for generated-code volume (every instruction becomes a statement,
every class a struct + method table).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import model as ir
from ..ir.printer import format_instr


@dataclass(frozen=True, slots=True)
class CodegenResult:
    """Emitted text plus the size accounting used by Figure 15."""

    text: str
    reachable_callables: int
    reachable_classes: int

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


def _callable_key(callable_: ir.IRCallable) -> str:
    return callable_.name


def _reachable(program: ir.IRProgram) -> tuple[list[ir.IRCallable], list[ir.IRClass]]:
    """Callables and classes reachable from main/@global_init.

    Dynamic sends conservatively reach every same-named method on every
    reachable class (a vtable entry exists for each); static calls and
    allocations reach their exact targets.
    """
    callables: dict[str, ir.IRCallable] = {}
    classes: dict[str, ir.IRClass] = {}
    pending_sends: set[str] = set()
    worklist: list[ir.IRCallable] = []

    def reach_callable(target: ir.IRCallable | None) -> None:
        if target is None or target.name in callables:
            return
        callables[target.name] = target
        worklist.append(target)

    def reach_class(name: str) -> None:
        cls = program.classes.get(name)
        if cls is None or cls.name in classes:
            return
        classes[cls.name] = cls
        if cls.superclass is not None:
            reach_class(cls.superclass)
        # A newly reached class may answer already-seen dynamic sends.
        for method_name in pending_sends & set(cls.methods):
            reach_callable(cls.methods[method_name])

    for entry in (ir.IRProgram.GLOBAL_INIT, ir.IRProgram.ENTRY_FUNCTION):
        reach_callable(program.functions.get(entry))

    while worklist:
        current = worklist.pop()
        for instr in current.instructions():
            if isinstance(instr, ir.New):
                reach_class(instr.class_name)
                if not instr.skip_init:
                    resolved = program.resolve_method(instr.class_name, "init")
                    if resolved is not None:
                        reach_callable(resolved[1])
            elif isinstance(instr, ir.NewArray) and instr.inline_layout:
                reach_class(instr.inline_layout)
            elif isinstance(instr, ir.MakeView):
                reach_class(instr.class_name)
            elif isinstance(instr, ir.CallStatic):
                reach_class(instr.class_name)
                resolved = program.resolve_method(instr.class_name, instr.method_name)
                if resolved is not None:
                    reach_callable(resolved[1])
            elif isinstance(instr, ir.CallFunction):
                reach_callable(program.functions.get(instr.func_name))
            elif isinstance(instr, ir.CallMethod):
                if instr.method_name not in pending_sends:
                    pending_sends.add(instr.method_name)
                    for cls in list(classes.values()):
                        method = cls.methods.get(instr.method_name)
                        if method is not None:
                            reach_callable(method)

    ordered_callables = [callables[name] for name in sorted(callables)]
    ordered_classes = [classes[name] for name in sorted(classes)]
    return ordered_callables, ordered_classes


def _body_text(callable_: ir.IRCallable) -> str:
    """The body of a callable, without its name (for identical-code folding)."""
    lines = [f"    value r[{callable_.num_regs}];"]
    for index, block in enumerate(callable_.blocks):
        lines.append(f"  B{index}:")
        for instr in block.instrs:
            lines.append(f"    {format_instr(instr)};")
    return "\n".join(lines)


def generate(program: ir.IRProgram) -> CodegenResult:
    """Emit C-like code for the reachable part of ``program``.

    Identical bodies are folded: the cloning stage installs the same
    specialized body on several class variants, and — like a linker's
    identical-code-folding — only one copy of the text is emitted, with
    the other entry points as aliases.
    """
    callables, classes = _reachable(program)
    out: list[str] = []
    for cls in classes:
        superclass = f" /* : {cls.superclass} */" if cls.superclass else ""
        out.append(f"struct {cls.name}{superclass} {{")
        out.append("    header hdr;")
        for field_name in cls.fields:
            out.append(f"    value {field_name};")
        out.append("};")
        # Method table entries model the per-class dispatch metadata.
        for method_name in sorted(cls.methods):
            out.append(f"vtable_entry({cls.name}, {method_name});")
        out.append("")

    emitted_bodies: dict[str, str] = {}
    for callable_ in callables:
        symbol = callable_.name.replace("::", "_")
        params = ", ".join(
            ["value self"] * (1 if callable_.is_method else 0)
            + [f"value {p}" for p in callable_.params]
        )
        body = _body_text(callable_)
        key = f"{params}\n{body}"
        original = emitted_bodies.get(key)
        if original is not None:
            out.append(f"alias {symbol} = {original};")
            out.append("")
            continue
        emitted_bodies[key] = symbol
        out.append(f"value {symbol}({params}) {{")
        out.append(body)
        out.append("}")
        out.append("")
    text = "\n".join(out)
    return CodegenResult(
        text=text,
        reachable_callables=len(callables),
        reachable_classes=len(classes),
    )


def code_size(program: ir.IRProgram) -> int:
    """Bytes of reachable generated code (the Figure 15 metric)."""
    return generate(program).size_bytes
