"""Runtime value representations for the VM.

Primitive values are the host Python natives (``int``, ``float``, ``bool``,
``str``, ``None``).  Heap values are explicit handles carrying the simulated
heap address so the cache simulator sees realistic memory traffic:

- :class:`ObjectRef` — a reference to a heap object (uniform model).
- :class:`ArrayRef` — a reference to an array.  Plain arrays hold element
  references; *inline arrays* (created by the transformation) hold object
  state directly in parallel-array layout.
- :class:`ViewRef` — a fat pointer ``(array, index)`` to one inline array
  element, produced by :class:`repro.ir.model.MakeView`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ObjectRef:
    """Handle to a heap-allocated object."""

    address: int
    class_name: str

    def __repr__(self) -> str:
        return f"<{self.class_name}@{self.address:#x}>"


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """Handle to a heap-allocated array.

    ``inline_layout`` names the element class for inline arrays, or is
    ``None`` for ordinary reference arrays.
    """

    address: int
    length: int
    inline_layout: str | None = None

    def __repr__(self) -> str:
        kind = f" inline[{self.inline_layout}]" if self.inline_layout else ""
        return f"<array[{self.length}]{kind}@{self.address:#x}>"


@dataclass(frozen=True, slots=True)
class ViewRef:
    """Fat pointer to one element of an inline array.

    Field reads/writes through a view address the parallel arrays directly:
    no object header, no extra indirection.
    """

    array: ArrayRef
    index: int
    class_name: str

    def __repr__(self) -> str:
        return f"<view {self.class_name} {self.array!r}[{self.index}]>"


Value = object  # int | float | bool | str | None | ObjectRef | ArrayRef | ViewRef


def is_truthy(value: Value) -> bool:
    """Mini-ICC++ truthiness: nil, false, 0, 0.0, and "" are falsy."""
    if value is None or value is False:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return True


def format_value(value: Value) -> str:
    """Render a value the way ``print`` does (stable across builds)."""
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        # A fixed format keeps output identical between the uniform and
        # transformed builds regardless of accumulated float noise.
        return f"{value:.6g}"
    if isinstance(value, (ObjectRef, ViewRef)):
        # Class names change under the transformation (variants, views); a
        # uniform rendering keeps observable output identical across builds.
        return "<object>"
    if isinstance(value, ArrayRef):
        return f"<array[{value.length}]>"
    return str(value)
