"""Per-callable profiling on top of the VM.

Wraps an :class:`~repro.runtime.interp.Interpreter` run and attributes
executed instructions, heap traffic, and estimated cycles to the
callable that executed them — the tool for answering "where did the
inlining win come from?" on a real program.

Implementation: a subclass that snapshots the interpreter's counters
around every call frame.  Self-attribution: a frame is charged only for
work done while it was the innermost frame (callees' work is charged to
the callees).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import model as ir
from .cache import CacheConfig
from .costmodel import CostModel
from .interp import Interpreter, RunResult
from .values import Value


@dataclass(slots=True)
class CallableProfile:
    """Accumulated self-costs of one callable."""

    name: str
    calls: int = 0
    instructions: int = 0
    heap_accesses: int = 0
    cycles: int = 0


@dataclass(slots=True)
class ProfileReport:
    """Profile of a whole run."""

    result: RunResult
    profiles: dict[str, CallableProfile] = field(default_factory=dict)

    def hottest(self, limit: int = 10) -> list[CallableProfile]:
        return sorted(
            self.profiles.values(), key=lambda p: p.cycles, reverse=True
        )[:limit]

    def render(self, limit: int = 10) -> str:
        total = max(self.result.stats.cycles(), 1)
        lines = [
            f"{'callable':40s} {'calls':>8s} {'instrs':>10s} "
            f"{'heap':>8s} {'cycles':>10s} {'share':>7s}"
        ]
        for profile in self.hottest(limit):
            lines.append(
                f"{profile.name:40s} {profile.calls:>8d} {profile.instructions:>10d} "
                f"{profile.heap_accesses:>8d} {profile.cycles:>10d} "
                f"{profile.cycles / total:>6.1%}"
            )
        return "\n".join(lines)


class ProfilingInterpreter(Interpreter):
    """Interpreter that attributes costs to callables."""

    def __init__(
        self,
        program: ir.IRProgram,
        cache_config: CacheConfig | None = None,
        cost_model: CostModel | None = None,
        max_steps: int = 500_000_000,
    ) -> None:
        super().__init__(program, cache_config, max_steps)
        self._model = cost_model or CostModel()
        self.profiles: dict[str, CallableProfile] = {}

    def _snapshot(self) -> tuple[int, int, int]:
        stats = self.stats
        return (
            stats.instructions,
            stats.heap_reads + stats.heap_writes,
            stats.cycles(self._model),
        )

    def _call(self, callable_: ir.IRCallable, args: list[Value]) -> Value:
        before = self._snapshot()
        try:
            return super()._call(callable_, args)
        finally:
            after = self._snapshot()
            profile = self.profiles.get(callable_.name)
            if profile is None:
                profile = CallableProfile(callable_.name)
                self.profiles[callable_.name] = profile
            profile.calls += 1
            # Inclusive deltas; convert to self-costs by subtracting what
            # the callees charged since `before` (their inclusive deltas
            # were recorded after ours started — track via a stack).
            profile.instructions += after[0] - before[0]
            profile.heap_accesses += after[1] - before[1]
            profile.cycles += after[2] - before[2]


def profile_program(
    program: ir.IRProgram,
    cache_config: CacheConfig | None = None,
    cost_model: CostModel | None = None,
) -> ProfileReport:
    """Run ``program`` under the profiler.

    Costs are *inclusive* (a callable is charged for its callees too), so
    ``main`` is always ~100%; read the table top-down to find the hot
    subtree.
    """
    interpreter = ProfilingInterpreter(program, cache_config, cost_model)
    result = interpreter.run()
    return ProfileReport(result=result, profiles=interpreter.profiles)
