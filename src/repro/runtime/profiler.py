"""Per-callable profiling on top of the VM.

Wraps an :class:`~repro.runtime.interp.Interpreter` run and attributes
executed instructions, heap traffic, and estimated cycles to the
callable that executed them — the tool for answering "where did the
inlining win come from?" on a real program.

Implementation: a subclass that snapshots the interpreter's counters
around every call frame and keeps a stack of per-frame child-cost
accumulators.  Each callable records **both** attributions:

- *self* costs — work done while the frame was the innermost one
  (callees' work is charged to the callees), and
- *inclusive* costs — the frame's whole subtree (a recursive callable's
  inclusive numbers count each live activation, as in gprof).

Self costs are conservative: across a run they sum exactly to the VM's
totals, so "who is actually burning the cycles?" reads off the ``self``
column while "which subtree should I optimize?" reads off ``incl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import model as ir
from .cache import CacheConfig
from .costmodel import CostModel
from .interp import Interpreter, RunResult
from .values import Value


@dataclass(slots=True)
class CallableProfile:
    """Accumulated costs of one callable (self and inclusive)."""

    name: str
    calls: int = 0
    #: Inclusive: this callable plus everything it called.
    instructions: int = 0
    heap_accesses: int = 0
    cycles: int = 0
    #: Self: only work done while this callable's frame was innermost.
    self_instructions: int = 0
    self_heap_accesses: int = 0
    self_cycles: int = 0


@dataclass(slots=True)
class ProfileReport:
    """Profile of a whole run."""

    result: RunResult
    profiles: dict[str, CallableProfile] = field(default_factory=dict)

    def hottest(self, limit: int = 10, key: str = "inclusive") -> list[CallableProfile]:
        """Top callables by ``key``: 'inclusive' (default) or 'self'."""
        if key not in ("inclusive", "self"):
            raise ValueError(f"bad profile sort key {key!r}")
        attr = "cycles" if key == "inclusive" else "self_cycles"
        return sorted(
            self.profiles.values(), key=lambda p: getattr(p, attr), reverse=True
        )[:limit]

    def render(self, limit: int = 10) -> str:
        total = max(self.result.stats.cycles(), 1)
        lines = [
            f"{'callable':40s} {'calls':>8s} {'self-instr':>10s} "
            f"{'self-heap':>9s} {'self-cyc':>10s} {'self%':>6s} "
            f"{'incl-cyc':>10s} {'incl%':>6s}"
        ]
        for profile in self.hottest(limit, key="self"):
            lines.append(
                f"{profile.name:40s} {profile.calls:>8d} "
                f"{profile.self_instructions:>10d} {profile.self_heap_accesses:>9d} "
                f"{profile.self_cycles:>10d} {profile.self_cycles / total:>6.1%} "
                f"{profile.cycles:>10d} {profile.cycles / total:>6.1%}"
            )
        return "\n".join(lines)


class ProfilingInterpreter(Interpreter):
    """Interpreter that attributes costs to callables."""

    def __init__(
        self,
        program: ir.IRProgram,
        cache_config: CacheConfig | None = None,
        cost_model: CostModel | None = None,
        max_steps: int = 500_000_000,
    ) -> None:
        super().__init__(program, cache_config, max_steps)
        self._model = cost_model or CostModel()
        self.profiles: dict[str, CallableProfile] = {}
        #: One accumulator per active frame: inclusive costs of the
        #: frame's *direct callees*, to subtract for self-attribution.
        self._child_costs: list[list[int]] = []

    def _snapshot(self) -> tuple[int, int, int]:
        stats = self.stats
        return (
            stats.instructions,
            stats.heap_reads + stats.heap_writes,
            stats.cycles(self._model),
        )

    def _call(self, callable_: ir.IRCallable, args: list[Value]) -> Value:
        before = self._snapshot()
        self._child_costs.append([0, 0, 0])
        try:
            return super()._call(callable_, args)
        finally:
            after = self._snapshot()
            children = self._child_costs.pop()
            inclusive = [now - then for now, then in zip(after, before)]
            profile = self.profiles.get(callable_.name)
            if profile is None:
                profile = CallableProfile(callable_.name)
                self.profiles[callable_.name] = profile
            profile.calls += 1
            profile.instructions += inclusive[0]
            profile.heap_accesses += inclusive[1]
            profile.cycles += inclusive[2]
            profile.self_instructions += inclusive[0] - children[0]
            profile.self_heap_accesses += inclusive[1] - children[1]
            profile.self_cycles += inclusive[2] - children[2]
            if self._child_costs:
                parent = self._child_costs[-1]
                parent[0] += inclusive[0]
                parent[1] += inclusive[1]
                parent[2] += inclusive[2]


def profile_program(
    program: ir.IRProgram,
    cache_config: CacheConfig | None = None,
    cost_model: CostModel | None = None,
) -> ProfileReport:
    """Run ``program`` under the profiler.

    Each callable gets both attributions: *inclusive* (charged for its
    callees too — ``main`` is always ~100%; read top-down for the hot
    subtree) and *self* (only the work its own frames did — self costs
    sum to the run total; read for the actual hot code).
    """
    interpreter = ProfilingInterpreter(program, cache_config, cost_model)
    result = interpreter.run()
    return ProfileReport(result=result, profiles=interpreter.profiles)
