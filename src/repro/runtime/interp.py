"""The VM: a direct interpreter for the CFG IR.

The interpreter doubles as the paper's performance substrate.  Every heap
access goes through the simulated :class:`~repro.runtime.heap.Heap` and the
:class:`~repro.runtime.cache.CacheSimulator`, and every executed
instruction updates :class:`~repro.runtime.costmodel.ExecutionStats`; the
cost model then turns these counters into a cycle estimate.

Both the uniform-model program and the object-inlined program run on this
same VM, so the relative performance between them is attributable entirely
to the transformation (fewer dereferences, fewer allocations, static
dispatch, better locality).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from ..ir import model as ir
from ..lang.errors import SourceLocation
from ..obs.tracer import NULL_TRACER
from .builtins import BuiltinError, call_builtin
from .cache import CacheConfig, CacheSimulator
from .costmodel import CostModel, ExecutionStats
from .heap import Heap, HeapError
from .values import ArrayRef, ObjectRef, Value, ViewRef, format_value, is_truthy


class ReproRuntimeError(Exception):
    """A mini-ICC++ runtime error (type error, missing method, ...)."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        if location is not None and location.line:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)
        self.raw_message = message
        self.location = location


class ResourceLimitError(ReproRuntimeError):
    """A run exceeded one of its resource budgets (steps, heap cells).

    The fuzzer and the compile service both need hang-proof execution:
    catching this (rather than the broad :class:`ReproRuntimeError`)
    distinguishes "the program was too big for its budget" from "the
    program is wrong".
    """


class StepLimitExceeded(ResourceLimitError):
    """Raised when execution exceeds the configured instruction budget."""


class HeapLimitExceeded(ResourceLimitError):
    """Raised when heap allocation exceeds the configured cell budget."""


@dataclass(slots=True)
class RunResult:
    """Everything observable about one program run."""

    output: list[str]
    stats: ExecutionStats
    heap: Heap
    globals: dict[str, Value]
    return_value: Value = None

    def cycles(self, model: CostModel | None = None) -> int:
        return self.stats.cycles(model)


@dataclass(slots=True)
class _Frame:
    regs: list[Value]


class Interpreter:
    """Executes an :class:`~repro.ir.model.IRProgram`."""

    def __init__(
        self,
        program: ir.IRProgram,
        cache_config: CacheConfig | None = None,
        max_steps: int = 500_000_000,
        tracer=NULL_TRACER,
        attribute_locality: bool = False,
        locality_bucket_lines: int = 64,
        max_heap_cells: int | None = None,
    ) -> None:
        self.program = program
        self.heap = Heap()
        self.cache = CacheSimulator(cache_config)
        # Attribution is observation-only and off by default: when
        # ``_locality`` is None every accessor takes the exact pre-existing
        # call path, and the simulated counters are bit-identical either
        # way (differentially tested in tests/test_locality.py).
        self._locality = (
            self.cache.enable_attribution(locality_bucket_lines)
            if attribute_locality
            else None
        )
        self.stats = ExecutionStats(cache=self.cache.stats, locality=self._locality)
        self.globals: dict[str, Value] = {name: None for name in program.global_names}
        self.output: list[str] = []
        self._max_steps = max_steps
        self._max_heap_cells = max_heap_cells
        self._depth = 0
        # One program scan up front: frame push/pop bracketing in _call is
        # only armed when the escape stage actually produced frame-local
        # allocations, so untransformed programs pay nothing.
        self._frame_regions = any(
            type(instr) is ir.New and instr.frame_local
            for callable_ in program.callables()
            for instr in callable_.instructions()
        )
        # Consulted only at run()-end (never in the dispatch loop), so the
        # default no-op tracer adds zero per-instruction overhead.
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Entry points.

    def run(self, entry: str = ir.IRProgram.ENTRY_FUNCTION) -> RunResult:
        """Run @global_init then ``entry`` (default ``main``)."""
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            init = self.program.functions.get(ir.IRProgram.GLOBAL_INIT)
            if init is not None:
                self._call(init, [])
            entry_fn = self.program.functions.get(entry)
            if entry_fn is None:
                raise ReproRuntimeError(f"missing entry function {entry!r}")
            if entry_fn.params:
                raise ReproRuntimeError(f"entry function {entry!r} must take no arguments")
            result = self._call(entry_fn, [])
        finally:
            sys.setrecursionlimit(old_limit)
        if self.tracer.enabled:
            # Surface the VM's counters as trace data at run end.
            summary = self.stats.summary()
            self.tracer.event("run.stats", **summary)
            for key, value in summary.items():
                if isinstance(value, int):  # ratios stay event-only
                    self.tracer.count(f"run.{key}", value)
            if self._locality is not None:
                # Bounded breakdowns: top-K labels/buckets + truncation count.
                self.tracer.event("run.locality", **self._locality.label_summary())
                self.tracer.event("run.heatmap", **self._locality.heatmap_summary())
        return RunResult(
            output=self.output,
            stats=self.stats,
            heap=self.heap,
            globals=self.globals,
            return_value=result,
        )

    def call_function(self, name: str, args: list[Value]) -> Value:
        """Call a top-level function directly (used by tests)."""
        fn = self.program.functions.get(name)
        if fn is None:
            raise ReproRuntimeError(f"unknown function {name!r}")
        return self._call(fn, args)

    # ------------------------------------------------------------------
    # Core execution.

    def _call(self, callable_: ir.IRCallable, args: list[Value]) -> Value:
        expected = callable_.num_formals
        if len(args) != expected:
            raise ReproRuntimeError(
                f"{callable_.name} expects {expected} values, got {len(args)}"
            )
        self._depth += 1
        if self._depth > self.stats.max_call_depth:
            self.stats.max_call_depth = self._depth
        frame = _Frame(regs=[None] * callable_.num_regs)
        frame.regs[: len(args)] = args
        if not self._frame_regions:
            try:
                return self._run_frame(callable_, frame)
            finally:
                self._depth -= 1
        marker = self.heap.push_frame()
        try:
            return self._run_frame(callable_, frame)
        finally:
            self.heap.pop_frame(marker)
            self._depth -= 1

    def _run_frame(self, callable_: ir.IRCallable, frame: _Frame) -> Value:
        blocks = callable_.blocks
        regs = frame.regs
        stats = self.stats
        block_index = 0
        while True:
            block = blocks[block_index]
            for instr in block.instrs:
                stats.instructions += 1
                if stats.instructions > self._max_steps:
                    raise StepLimitExceeded(
                        f"exceeded {self._max_steps} instructions", instr.loc
                    )
                kind = type(instr)

                if kind is ir.Const:
                    regs[instr.dest] = instr.value
                elif kind is ir.Move:
                    regs[instr.dest] = regs[instr.src]
                elif kind is ir.BinOp:
                    regs[instr.dest] = self._binop(
                        instr.op, regs[instr.lhs], regs[instr.rhs], instr.loc
                    )
                elif kind is ir.UnOp:
                    regs[instr.dest] = self._unop(instr.op, regs[instr.src], instr.loc)
                elif kind is ir.GetField:
                    regs[instr.dest] = self._get_field(
                        regs[instr.obj], instr.field_name, instr.loc
                    )
                elif kind is ir.SetField:
                    self._set_field(
                        regs[instr.obj], instr.field_name, regs[instr.src], instr.loc
                    )
                elif kind is ir.GetFieldIndexed:
                    regs[instr.dest] = self._get_field_indexed(
                        regs[instr.obj],
                        instr.base_field,
                        instr.length,
                        regs[instr.index],
                        instr.loc,
                    )
                elif kind is ir.SetFieldIndexed:
                    self._set_field_indexed(
                        regs[instr.obj],
                        instr.base_field,
                        instr.length,
                        regs[instr.index],
                        regs[instr.src],
                        instr.loc,
                    )
                elif kind is ir.GetIndex:
                    regs[instr.dest] = self._get_index(
                        regs[instr.array], regs[instr.index], instr.loc
                    )
                elif kind is ir.SetIndex:
                    self._set_index(
                        regs[instr.array], regs[instr.index], regs[instr.src], instr.loc
                    )
                elif kind is ir.ArrayLen:
                    array = regs[instr.array]
                    if not isinstance(array, ArrayRef):
                        raise ReproRuntimeError(
                            f"len() of non-array {format_value(array)}", instr.loc
                        )
                    regs[instr.dest] = array.length
                elif kind is ir.New:
                    regs[instr.dest] = self._new_object(
                        instr.class_name,
                        [regs[a] for a in instr.args],
                        instr.loc,
                        instr.on_stack,
                        instr.skip_init,
                        instr.frame_local,
                    )
                elif kind is ir.NewArray:
                    regs[instr.dest] = self._new_array(
                        regs[instr.size],
                        instr.inline_layout,
                        instr.parallel_layout,
                        instr.loc,
                        instr.elem_class,
                    )
                elif kind is ir.MakeView:
                    regs[instr.dest] = self._make_view(
                        regs[instr.array], regs[instr.index], instr.class_name, instr.loc
                    )
                elif kind is ir.CallMethod:
                    regs[instr.dest] = self._send(
                        regs[instr.recv],
                        instr.method_name,
                        [regs[a] for a in instr.args],
                        instr.loc,
                    )
                elif kind is ir.CallStatic:
                    regs[instr.dest] = self._call_static(
                        regs[instr.recv],
                        instr.class_name,
                        instr.method_name,
                        [regs[a] for a in instr.args],
                        instr.loc,
                    )
                elif kind is ir.CallFunction:
                    fn = self.program.functions.get(instr.func_name)
                    if fn is None:
                        raise ReproRuntimeError(
                            f"unknown function {instr.func_name!r}", instr.loc
                        )
                    stats.static_calls += 1
                    regs[instr.dest] = self._call(fn, [regs[a] for a in instr.args])
                elif kind is ir.CallBuiltin:
                    stats.builtin_calls += 1
                    try:
                        regs[instr.dest] = call_builtin(
                            instr.builtin_name,
                            [regs[a] for a in instr.args],
                            self.output,
                        )
                    except BuiltinError as exc:
                        raise ReproRuntimeError(str(exc), instr.loc) from exc
                elif kind is ir.GetGlobal:
                    regs[instr.dest] = self.globals[instr.name]
                elif kind is ir.SetGlobal:
                    self.globals[instr.name] = regs[instr.src]
                elif kind is ir.Jump:
                    block_index = instr.target
                    break
                elif kind is ir.Branch:
                    block_index = (
                        instr.then_target
                        if is_truthy(regs[instr.cond])
                        else instr.else_target
                    )
                    break
                elif kind is ir.Return:
                    return None if instr.src is None else regs[instr.src]
                else:
                    raise ReproRuntimeError(
                        f"unhandled instruction {kind.__name__}", instr.loc
                    )
            else:
                raise ReproRuntimeError(f"{callable_.name}: fell off block B{block_index}")

    # ------------------------------------------------------------------
    # Heap operations.

    def _check_heap_budget(self, loc: SourceLocation | None) -> None:
        if (
            self._max_heap_cells is not None
            and self.stats.allocated_slots > self._max_heap_cells
        ):
            raise HeapLimitExceeded(
                f"exceeded {self._max_heap_cells} heap cells", loc
            )

    @staticmethod
    def _site(loc: SourceLocation | None) -> str:
        """Attribution label for an allocation site (``file:line``)."""
        if loc is None or not loc.line:
            return "<synthetic>"
        return f"{loc.filename}:{loc.line}"

    def _new_object(
        self,
        class_name: str,
        args: list[Value],
        loc: SourceLocation,
        on_stack: bool = False,
        skip_init: bool = False,
        frame_local: bool = False,
    ) -> Value:
        cls = self.program.classes.get(class_name)
        if cls is None:
            raise ReproRuntimeError(f"unknown class {class_name!r}", loc)
        layout = tuple(self.program.layout(class_name))
        site = self._site(loc) if self._locality is not None else None
        ref = self.heap.alloc_object(
            class_name, layout, on_stack, alloc_site=site, frame_local=frame_local
        )
        if frame_local:
            # Proven non-escaping by the escape analysis: carved out of the
            # frame region, reclaimed at return.  The frame lines are
            # simulated (unlike the legacy stack region) so the heatmap can
            # show the same bytes being reused frame after frame.
            self.stats.frame_allocations += 1
            if self._locality is None:
                self.cache.touch_range(ref.address, 8 + len(layout) * 8, is_write=True)
            else:
                self.cache.touch_range(
                    ref.address,
                    8 + len(layout) * 8,
                    is_write=True,
                    label=("frame-alloc", class_name, None, site),
                )
        elif on_stack:
            # Proven non-escaping by assignment specialization: charged as a
            # stack allocation; the (hot) stack lines are not simulated.
            self.stats.stack_allocations += 1
        else:
            self.stats.allocations += 1
            self.stats.allocated_slots += len(layout) + 1  # +1 for the header
            self.stats.allocated_bytes += 8 + len(layout) * 8
            self._check_heap_budget(loc)
            if self._locality is None:
                self.cache.touch_range(ref.address, 8 + len(layout) * 8, is_write=True)
            else:
                self.cache.touch_range(
                    ref.address,
                    8 + len(layout) * 8,
                    is_write=True,
                    label=("alloc", class_name, None, site),
                )

        if skip_init:
            return ref
        resolved = self.program.resolve_method(class_name, "init")
        if resolved is None:
            if args:
                raise ReproRuntimeError(
                    f"class {class_name!r} has no init but got constructor args", loc
                )
            return ref
        _, init = resolved
        self.stats.static_calls += 1  # constructor calls are statically bound
        self._call(init, [ref, *args])
        return ref

    def _new_array(
        self,
        size: Value,
        inline_layout: str | None,
        parallel: bool,
        loc: SourceLocation,
        elem_class: str | None = None,
    ) -> Value:
        if isinstance(size, bool) or not isinstance(size, int):
            raise ReproRuntimeError(f"array size must be an int, got {format_value(size)}", loc)
        if size < 0:
            raise ReproRuntimeError(f"negative array size {size}", loc)
        inline_fields: tuple[str, ...] = ()
        if inline_layout is not None:
            if inline_layout not in self.program.classes:
                raise ReproRuntimeError(f"unknown inline class {inline_layout!r}", loc)
            inline_fields = tuple(self.program.layout(inline_layout))
        site = self._site(loc) if self._locality is not None else None
        ref = self.heap.alloc_array(
            size,
            inline_layout,
            inline_fields,
            parallel,
            alloc_site=site,
            elem_class=elem_class,
        )
        slots = size * (len(inline_fields) if inline_layout else 1)
        self.stats.allocations += 1
        self.stats.allocated_slots += slots + 2  # +2 for the array header
        self.stats.allocated_bytes += 16 + slots * 8
        self._check_heap_budget(loc)
        if self._locality is None:
            self.cache.touch_range(ref.address, 16 + slots * 8, is_write=True)
        else:
            # Prefer the concrete element class where one is known: the
            # inline layout class, else the analysis-declared element
            # class, else the generic <array>.
            known = inline_layout or elem_class
            class_label = f"{known}[]" if known else "<array>"
            self.cache.touch_range(
                ref.address,
                16 + slots * 8,
                is_write=True,
                label=("alloc", class_label, None, site),
            )
        return ref

    def _make_view(
        self, array: Value, index: Value, class_name: str, loc: SourceLocation
    ) -> Value:
        if not isinstance(array, ArrayRef) or array.inline_layout is None:
            raise ReproRuntimeError(
                f"view into non-inline array {format_value(array)}", loc
            )
        if isinstance(index, bool) or not isinstance(index, int):
            raise ReproRuntimeError(f"view index must be an int", loc)
        if not (0 <= index < array.length):
            raise ReproRuntimeError(
                f"view index {index} out of range [0, {array.length})", loc
            )
        return ViewRef(array, index, class_name)

    def _get_field(self, obj: Value, field_name: str, loc: SourceLocation) -> Value:
        self.stats.heap_reads += 1
        try:
            if isinstance(obj, ObjectRef):
                value, address = self.heap.read_field(obj, field_name)
                kind = "field"
            elif isinstance(obj, ViewRef):
                value, address = self.heap.read_inline_field(
                    obj.array, obj.index, field_name
                )
                kind = "inline_field"
            else:
                raise ReproRuntimeError(
                    f"field access .{field_name} on non-object {format_value(obj)}", loc
                )
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=False)
        else:
            self.cache.access(
                address,
                False,
                (kind, obj.class_name, field_name, self.heap.site_of(obj)),
            )
        return value

    def _set_field(
        self, obj: Value, field_name: str, value: Value, loc: SourceLocation
    ) -> None:
        self.stats.heap_writes += 1
        try:
            if isinstance(obj, ObjectRef):
                address = self.heap.write_field(obj, field_name, value)
                kind = "field"
            elif isinstance(obj, ViewRef):
                address = self.heap.write_inline_field(
                    obj.array, obj.index, field_name, value
                )
                kind = "inline_field"
            else:
                raise ReproRuntimeError(
                    f"field store .{field_name} on non-object {format_value(obj)}", loc
                )
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=True)
        else:
            self.cache.access(
                address,
                True,
                (kind, obj.class_name, field_name, self.heap.site_of(obj)),
            )

    def _get_field_indexed(
        self, obj: Value, base_field: str, length: int, index: Value, loc: SourceLocation
    ) -> Value:
        if not isinstance(obj, ObjectRef):
            raise ReproRuntimeError(
                f"indexed field access on non-object {format_value(obj)}", loc
            )
        self.stats.heap_reads += 1
        try:
            value, address = self.heap.read_field_indexed(obj, base_field, length, index)
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=False)
        else:
            self.cache.access(
                address,
                False,
                ("field", obj.class_name, base_field, self.heap.site_of(obj)),
            )
        return value

    def _set_field_indexed(
        self,
        obj: Value,
        base_field: str,
        length: int,
        index: Value,
        value: Value,
        loc: SourceLocation,
    ) -> None:
        if not isinstance(obj, ObjectRef):
            raise ReproRuntimeError(
                f"indexed field store on non-object {format_value(obj)}", loc
            )
        self.stats.heap_writes += 1
        try:
            address = self.heap.write_field_indexed(obj, base_field, length, index, value)
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=True)
        else:
            self.cache.access(
                address,
                True,
                ("field", obj.class_name, base_field, self.heap.site_of(obj)),
            )

    def _array_class(self, array: ArrayRef) -> str:
        """Locality class of an array's elements: the declared element
        class where the analysis proved one, else the generic ``<array>``."""
        return self.heap.elem_class_of(array) or "<array>"

    def _get_index(self, array: Value, index: Value, loc: SourceLocation) -> Value:
        if not isinstance(array, ArrayRef):
            raise ReproRuntimeError(f"indexing non-array {format_value(array)}", loc)
        self.stats.heap_reads += 1
        try:
            value, address = self.heap.read_element(array, index)
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=False)
        else:
            self.cache.access(
                address, False, ("element", self._array_class(array), None,
                                 self.heap.site_of(array))
            )
        return value

    def _set_index(
        self, array: Value, index: Value, value: Value, loc: SourceLocation
    ) -> None:
        if not isinstance(array, ArrayRef):
            raise ReproRuntimeError(f"indexing non-array {format_value(array)}", loc)
        self.stats.heap_writes += 1
        try:
            address = self.heap.write_element(array, index, value)
        except HeapError as exc:
            raise ReproRuntimeError(str(exc), loc) from exc
        if self._locality is None:
            self.cache.access(address, is_write=True)
        else:
            self.cache.access(
                address, True, ("element", self._array_class(array), None,
                                self.heap.site_of(array))
            )

    # ------------------------------------------------------------------
    # Calls.

    def _receiver_class(self, recv: Value, loc: SourceLocation) -> str:
        if isinstance(recv, (ObjectRef, ViewRef)):
            return recv.class_name
        raise ReproRuntimeError(
            f"message send to non-object {format_value(recv)}", loc
        )

    def _send(
        self, recv: Value, method_name: str, args: list[Value], loc: SourceLocation
    ) -> Value:
        class_name = self._receiver_class(recv, loc)
        resolved = self.program.resolve_method(class_name, method_name)
        if resolved is None:
            raise ReproRuntimeError(
                f"class {class_name!r} does not understand {method_name!r}", loc
            )
        self.stats.dynamic_dispatches += 1
        _, method = resolved
        return self._call(method, [recv, *args])

    def _call_static(
        self,
        recv: Value,
        class_name: str,
        method_name: str,
        args: list[Value],
        loc: SourceLocation,
    ) -> Value:
        resolved = self.program.resolve_method(class_name, method_name)
        if resolved is None:
            raise ReproRuntimeError(
                f"no method {class_name}::{method_name}", loc
            )
        self.stats.static_calls += 1
        _, method = resolved
        return self._call(method, [recv, *args])

    # ------------------------------------------------------------------
    # Operators.

    @staticmethod
    def _is_number(value: Value) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def _binop(self, op: str, lhs: Value, rhs: Value, loc: SourceLocation) -> Value:
        if op == "==":
            return self._equal(lhs, rhs)
        if op == "!=":
            return not self._equal(lhs, rhs)

        both_numbers = self._is_number(lhs) and self._is_number(rhs)
        if op == "+":
            if isinstance(lhs, str) and isinstance(rhs, str):
                return lhs + rhs
            if both_numbers:
                return lhs + rhs
        elif op == "-" and both_numbers:
            return lhs - rhs
        elif op == "*" and both_numbers:
            return lhs * rhs
        elif op == "/" and both_numbers:
            if rhs == 0:
                raise ReproRuntimeError("division by zero", loc)
            if isinstance(lhs, int) and isinstance(rhs, int):
                # C-style truncating integer division.
                quotient = abs(lhs) // abs(rhs)
                return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            return lhs / rhs
        elif op == "%" and both_numbers:
            if rhs == 0:
                raise ReproRuntimeError("modulo by zero", loc)
            if isinstance(lhs, int) and isinstance(rhs, int):
                # C-style: remainder takes the dividend's sign.
                remainder = abs(lhs) % abs(rhs)
                return remainder if lhs >= 0 else -remainder
            import math

            return math.fmod(lhs, rhs)
        elif op in ("<", "<=", ">", ">="):
            if both_numbers or (isinstance(lhs, str) and isinstance(rhs, str)):
                if op == "<":
                    return lhs < rhs
                if op == "<=":
                    return lhs <= rhs
                if op == ">":
                    return lhs > rhs
                return lhs >= rhs
        raise ReproRuntimeError(
            f"invalid operands for {op!r}: {format_value(lhs)}, {format_value(rhs)}", loc
        )

    @staticmethod
    def _equal(lhs: Value, rhs: Value) -> bool:
        if lhs is None or rhs is None:
            return lhs is None and rhs is None
        if isinstance(lhs, bool) or isinstance(rhs, bool):
            return isinstance(lhs, bool) and isinstance(rhs, bool) and lhs == rhs
        if isinstance(lhs, (int, float)) and isinstance(rhs, (int, float)):
            return lhs == rhs
        if isinstance(lhs, str) and isinstance(rhs, str):
            return lhs == rhs
        # Reference identity for objects/arrays/views (frozen dataclass
        # equality compares address/index/class, which is identity here).
        if type(lhs) is type(rhs):
            return lhs == rhs
        return False

    def _unop(self, op: str, operand: Value, loc: SourceLocation) -> Value:
        if op == "-":
            if self._is_number(operand):
                return -operand
            raise ReproRuntimeError(
                f"unary '-' on non-number {format_value(operand)}", loc
            )
        if op == "!":
            return not is_truthy(operand)
        raise ReproRuntimeError(f"unknown unary operator {op!r}", loc)


def run_program(
    program: ir.IRProgram,
    cache_config: CacheConfig | None = None,
    max_steps: int = 500_000_000,
    tracer=NULL_TRACER,
    attribute_locality: bool = False,
    locality_bucket_lines: int = 64,
    max_heap_cells: int | None = None,
) -> RunResult:
    """Convenience wrapper: interpret ``program`` from ``main``.

    ``tracer`` receives a ``run`` span plus the VM statistics as a
    ``run.stats`` event and ``run.*`` counters when the run completes.
    With ``attribute_locality=True`` every heap access is additionally
    attributed to a ``(kind, class, field, alloc_site)`` label and an
    address bucket, surfaced as ``run.locality`` / ``run.heatmap`` events
    and on ``RunResult.stats.locality``.
    """
    interpreter = Interpreter(
        program,
        cache_config,
        max_steps,
        tracer,
        attribute_locality=attribute_locality,
        locality_bucket_lines=locality_bucket_lines,
        max_heap_cells=max_heap_cells,
    )
    with tracer.span("run"):
        return interpreter.run()
