"""Simulated heap.

Objects and arrays live at real (simulated) addresses handed out by a bump
allocator, so that field and element accesses produce a realistic address
trace for the cache simulator.  Slot size is 8 bytes; objects carry an
8-byte header, arrays a 16-byte header.

Inline arrays use the parallel-array layout the paper describes for OOPACK:
field ``j`` of element ``i`` lives at ``base + header + (j*n + i) * 8``,
so iterating one field across elements is unit-stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .values import ArrayRef, ObjectRef, Value, ViewRef

SLOT_SIZE = 8
OBJECT_HEADER = 8
ARRAY_HEADER = 16
#: Heap allocations model a real allocator: an 8-byte malloc header per
#: block and bin rounding to 16 bytes.  Stack allocations skip both.
MALLOC_HEADER = 8
MALLOC_ALIGN = 16


class HeapError(Exception):
    """Raised on invalid heap accesses (VM-level type errors)."""


@dataclass(slots=True)
class _ObjectRecord:
    class_name: str
    layout: tuple[str, ...]  # field order, inherited first
    slots: list[Value]
    #: Source position of the allocating instruction; only populated when
    #: the interpreter runs with locality attribution enabled.
    alloc_site: str | None = None

    def slot_index(self, field_name: str) -> int:
        try:
            return self.layout.index(field_name)
        except ValueError:
            raise HeapError(
                f"object of class {self.class_name!r} has no field {field_name!r}"
            ) from None


@dataclass(slots=True)
class _ArrayRecord:
    length: int
    inline_layout: str | None
    inline_fields: tuple[str, ...]  # element class layout for inline arrays
    parallel: bool  # SoA (field-major) if True, AoS (element-major) if False
    slots: list[Value]
    #: See :attr:`_ObjectRecord.alloc_site`.
    alloc_site: str | None = None
    #: Declared element class (analysis-proven, reference arrays only);
    #: sharpens locality labels from ``<array>`` to ``Cls[]``.
    elem_class: str | None = None


@dataclass(slots=True)
class HeapStats:
    """Allocation statistics, queried by the cost model and benchmarks."""

    objects_allocated: int = 0
    arrays_allocated: int = 0
    bytes_allocated: int = 0
    allocations_by_class: dict[str, int] = field(default_factory=dict)


class Heap:
    """Bump-allocated simulated heap holding objects and arrays."""

    #: Base of the simulated stack region, far from the heap so frame
    #: temporaries do not dilute heap locality.  The region only grows:
    #: stack-like objects produced by the inlining transformation may be
    #: copied by value into containers that outlive the allocating frame.
    STACK_BASE = 1 << 40
    #: Base of the *frame* region for escape-proven allocations.  Unlike
    #: ``STACK_BASE`` it is a real stack: :meth:`push_frame` /
    #: :meth:`pop_frame` bracket each activation, the bump pointer rewinds
    #: on pop, and popped records are deleted — a dangling reference (which
    #: the escape analysis must make impossible) fails loudly instead of
    #: silently reading stale state.
    FRAME_BASE = 1 << 41

    def __init__(self, base_address: int = 0x10000) -> None:
        self._next_address = base_address
        self._next_stack_address = self.STACK_BASE
        self._next_frame_address = self.FRAME_BASE
        #: Addresses allocated by each open frame; the outermost list is a
        #: root region for frame allocations made outside any bracket.
        self._frame_allocs: list[list[int]] = [[]]
        self._objects: dict[int, _ObjectRecord] = {}
        self._arrays: dict[int, _ArrayRecord] = {}
        self.stats = HeapStats()

    # ------------------------------------------------------------------
    # Frame region.

    def push_frame(self) -> int:
        """Open a frame; returns the marker to hand back to pop_frame."""
        self._frame_allocs.append([])
        return self._next_frame_address

    def pop_frame(self, marker: int) -> None:
        """Reclaim every frame allocation made since the matching push."""
        for address in self._frame_allocs.pop():
            self._objects.pop(address, None)
        self._next_frame_address = marker

    @property
    def frame_depth(self) -> int:
        """Open frame regions including the root region.

        A balanced run ends at depth 1: every ``push_frame`` saw its
        matching ``pop_frame``.  The fuzz oracle asserts this on every
        build's final heap.
        """
        return len(self._frame_allocs)

    # ------------------------------------------------------------------
    # Allocation.

    def _bump(self, size: int, on_stack: bool = False) -> int:
        if on_stack:
            aligned = (size + SLOT_SIZE - 1) // SLOT_SIZE * SLOT_SIZE
            address = self._next_stack_address
            self._next_stack_address += aligned
            return address
        block = size + MALLOC_HEADER
        aligned = (block + MALLOC_ALIGN - 1) // MALLOC_ALIGN * MALLOC_ALIGN
        address = self._next_address + MALLOC_HEADER
        self._next_address += aligned
        return address

    def _bump_frame(self, size: int) -> int:
        aligned = (size + SLOT_SIZE - 1) // SLOT_SIZE * SLOT_SIZE
        address = self._next_frame_address
        self._next_frame_address += aligned
        self._frame_allocs[-1].append(address)
        return address

    def alloc_object(
        self,
        class_name: str,
        layout: tuple[str, ...],
        on_stack: bool = False,
        alloc_site: str | None = None,
        frame_local: bool = False,
    ) -> ObjectRef:
        size = OBJECT_HEADER + len(layout) * SLOT_SIZE
        if frame_local:
            address = self._bump_frame(size)
        else:
            address = self._bump(size, on_stack)
        self._objects[address] = _ObjectRecord(
            class_name=class_name,
            layout=layout,
            slots=[None] * len(layout),
            alloc_site=alloc_site,
        )
        self.stats.objects_allocated += 1
        self.stats.bytes_allocated += size
        by_class = self.stats.allocations_by_class
        by_class[class_name] = by_class.get(class_name, 0) + 1
        return ObjectRef(address, class_name)

    def alloc_array(
        self,
        length: int,
        inline_layout: str | None = None,
        inline_fields: tuple[str, ...] = (),
        parallel: bool = False,
        alloc_site: str | None = None,
        elem_class: str | None = None,
    ) -> ArrayRef:
        if length < 0:
            raise HeapError(f"negative array length {length}")
        slots_per_elem = len(inline_fields) if inline_layout else 1
        size = ARRAY_HEADER + length * slots_per_elem * SLOT_SIZE
        address = self._bump(size)
        self._arrays[address] = _ArrayRecord(
            length=length,
            inline_layout=inline_layout,
            inline_fields=inline_fields,
            parallel=parallel,
            slots=[None] * (length * slots_per_elem),
            alloc_site=alloc_site,
            elem_class=elem_class,
        )
        self.stats.arrays_allocated += 1
        self.stats.bytes_allocated += size
        return ArrayRef(address, length, inline_layout)

    # ------------------------------------------------------------------
    # Object access.  Each accessor returns (value-or-None, address) so the
    # interpreter can feed the address to the cache simulator.

    def _object(self, ref: ObjectRef) -> _ObjectRecord:
        record = self._objects.get(ref.address)
        if record is None:
            raise HeapError(f"dangling object reference {ref!r}")
        return record

    def field_address(self, ref: ObjectRef, field_name: str) -> int:
        record = self._object(ref)
        return ref.address + OBJECT_HEADER + record.slot_index(field_name) * SLOT_SIZE

    def read_field(self, ref: ObjectRef, field_name: str) -> tuple[Value, int]:
        record = self._object(ref)
        index = record.slot_index(field_name)
        return record.slots[index], ref.address + OBJECT_HEADER + index * SLOT_SIZE

    def write_field(self, ref: ObjectRef, field_name: str, value: Value) -> int:
        record = self._object(ref)
        index = record.slot_index(field_name)
        record.slots[index] = value
        return ref.address + OBJECT_HEADER + index * SLOT_SIZE

    def read_field_indexed(
        self, ref: ObjectRef, base_field: str, length: int, offset: int
    ) -> tuple[Value, int]:
        record = self._object(ref)
        if not isinstance(offset, int) or isinstance(offset, bool):
            raise HeapError(f"indexed field offset must be an int, got {offset!r}")
        if not (0 <= offset < length):
            raise HeapError(f"indexed field offset {offset} out of range [0, {length})")
        index = record.slot_index(base_field) + offset
        if index >= len(record.slots):
            raise HeapError(f"indexed field slot {index} beyond object layout")
        return record.slots[index], ref.address + OBJECT_HEADER + index * SLOT_SIZE

    def write_field_indexed(
        self, ref: ObjectRef, base_field: str, length: int, offset: int, value: Value
    ) -> int:
        record = self._object(ref)
        if not isinstance(offset, int) or isinstance(offset, bool):
            raise HeapError(f"indexed field offset must be an int, got {offset!r}")
        if not (0 <= offset < length):
            raise HeapError(f"indexed field offset {offset} out of range [0, {length})")
        index = record.slot_index(base_field) + offset
        if index >= len(record.slots):
            raise HeapError(f"indexed field slot {index} beyond object layout")
        record.slots[index] = value
        return ref.address + OBJECT_HEADER + index * SLOT_SIZE

    def object_layout(self, ref: ObjectRef) -> tuple[str, ...]:
        return self._object(ref).layout

    def site_of(self, ref: Value) -> str | None:
        """The allocation site recorded for ``ref``'s backing block.

        Views resolve to their underlying inline array.  Returns ``None``
        for non-heap values, dangling references, or allocations made
        without attribution enabled.
        """
        if isinstance(ref, ObjectRef):
            record = self._objects.get(ref.address)
        elif isinstance(ref, ArrayRef):
            record = self._arrays.get(ref.address)
        elif isinstance(ref, ViewRef):
            record = self._arrays.get(ref.array.address)
        else:
            return None
        return record.alloc_site if record is not None else None

    def elem_class_of(self, ref: Value) -> str | None:
        """The declared element class of an array, if one was recorded."""
        if isinstance(ref, ArrayRef):
            record = self._arrays.get(ref.address)
            return record.elem_class if record is not None else None
        return None

    # ------------------------------------------------------------------
    # Array access.

    def _array(self, ref: ArrayRef) -> _ArrayRecord:
        record = self._arrays.get(ref.address)
        if record is None:
            raise HeapError(f"dangling array reference {ref!r}")
        return record

    def _check_index(self, record: _ArrayRecord, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise HeapError(f"array index must be an int, got {index!r}")
        if not (0 <= index < record.length):
            raise HeapError(f"array index {index} out of range [0, {record.length})")

    def read_element(self, ref: ArrayRef, index: int) -> tuple[Value, int]:
        record = self._array(ref)
        self._check_index(record, index)
        if record.inline_layout is not None:
            raise HeapError("read_element on inline array; use element views")
        return record.slots[index], ref.address + ARRAY_HEADER + index * SLOT_SIZE

    def write_element(self, ref: ArrayRef, index: int, value: Value) -> int:
        record = self._array(ref)
        self._check_index(record, index)
        if record.inline_layout is not None:
            raise HeapError("write_element on inline array; use element views")
        record.slots[index] = value
        return ref.address + ARRAY_HEADER + index * SLOT_SIZE

    # -- inline (parallel-array) element state --------------------------

    def _inline_slot(self, record: _ArrayRecord, index: int, field_name: str) -> int:
        try:
            field_index = record.inline_fields.index(field_name)
        except ValueError:
            raise HeapError(
                f"inline array of {record.inline_layout!r} has no field {field_name!r}"
            ) from None
        if record.parallel:
            return field_index * record.length + index
        return index * len(record.inline_fields) + field_index

    def read_inline_field(
        self, ref: ArrayRef, index: int, field_name: str
    ) -> tuple[Value, int]:
        record = self._array(ref)
        self._check_index(record, index)
        slot = self._inline_slot(record, index, field_name)
        return record.slots[slot], ref.address + ARRAY_HEADER + slot * SLOT_SIZE

    def write_inline_field(
        self, ref: ArrayRef, index: int, field_name: str, value: Value
    ) -> int:
        record = self._array(ref)
        self._check_index(record, index)
        slot = self._inline_slot(record, index, field_name)
        record.slots[slot] = value
        return ref.address + ARRAY_HEADER + slot * SLOT_SIZE

    def array_length(self, ref: ArrayRef) -> int:
        return self._array(ref).length

    @property
    def high_water_mark(self) -> int:
        """Total bytes handed out so far."""
        return self._next_address
