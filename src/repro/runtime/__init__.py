"""The VM substrate: simulated heap, cache simulator, cost model, interpreter."""

from .builtins import BuiltinError, call_builtin
from .cache import CacheConfig, CacheSimulator, CacheStats, LabelStats, LocalityStats
from .costmodel import CostModel, ExecutionStats
from .heap import ARRAY_HEADER, Heap, HeapError, HeapStats, OBJECT_HEADER, SLOT_SIZE
from .interp import (
    HeapLimitExceeded,
    Interpreter,
    ReproRuntimeError,
    ResourceLimitError,
    RunResult,
    StepLimitExceeded,
    run_program,
)
from .profiler import CallableProfile, ProfileReport, ProfilingInterpreter, profile_program
from .values import ArrayRef, ObjectRef, Value, ViewRef, format_value, is_truthy

__all__ = [
    "ARRAY_HEADER",
    "ArrayRef",
    "BuiltinError",
    "CacheConfig",
    "CacheSimulator",
    "CacheStats",
    "CallableProfile",
    "profile_program",
    "ProfileReport",
    "ProfilingInterpreter",
    "call_builtin",
    "CostModel",
    "ExecutionStats",
    "format_value",
    "Heap",
    "HeapError",
    "HeapLimitExceeded",
    "HeapStats",
    "Interpreter",
    "is_truthy",
    "LabelStats",
    "LocalityStats",
    "OBJECT_HEADER",
    "ObjectRef",
    "ReproRuntimeError",
    "ResourceLimitError",
    "RunResult",
    "run_program",
    "SLOT_SIZE",
    "StepLimitExceeded",
    "Value",
    "ViewRef",
]
