"""Set-associative data-cache simulator.

The VM feeds every heap access (field/element read and write, allocation
touch) through one of these.  The default geometry approximates the L1
data cache of the paper's SparcStation-class machine: 16 KiB, 32-byte
lines, 4-way, LRU.

Only hit/miss counting is modelled (no write buffers, no prefetch); that
is enough to expose the locality effects object inlining produces —
fewer distinct lines touched per logical access and unit-stride parallel
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of a simulated cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("size must be a multiple of line_bytes * associativity")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(slots=True)
class CacheStats:
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class CacheSimulator:
    """LRU set-associative cache with allocate-on-write-miss policy."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        # Each set is an ordered list of tags; index 0 is most recent.
        self._sets: list[list[int]] = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return self._sets[set_index], tag

    def access(self, address: int, is_write: bool = False) -> bool:
        """Touch ``address``; returns True on hit."""
        ways, tag = self._locate(address)
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            ways.pop()
        return False

    def touch_range(self, address: int, size: int, is_write: bool = False) -> int:
        """Touch every line in [address, address+size); returns miss count."""
        if size <= 0:
            return 0
        line = self.config.line_bytes
        start = address // line * line
        misses = 0
        for line_addr in range(start, address + size, line):
            if not self.access(line_addr, is_write):
                misses += 1
        return misses

    def flush(self) -> None:
        """Empty the cache (used between benchmark phases)."""
        self._sets = [[] for _ in range(self.config.num_sets)]
